//! Benchmarks for replica placement (Figure 8's grid and the §6.2
//! "2.55 ms vs 0.81 ms per block" microbenchmark).

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_cluster::{Datacenter, ServerId};
use harvest_dfs::grid::Grid2D;
use harvest_dfs::placement::{PlacementPolicy, Placer};
use harvest_dfs::store::BlockStore;
use harvest_sim::rng::stream_rng;
use harvest_trace::datacenter::DatacenterProfile;
use rand::RngExt;
use std::hint::black_box;

fn bench_placement(c: &mut Criterion) {
    let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.05), 42);

    // Figure 8: building the 3x3 grid.
    c.bench_function("fig8_grid_build", |b| {
        b.iter(|| black_box(Grid2D::build(black_box(&dc))))
    });

    // §6.2: per-block placement cost, HDFS-H vs HDFS-Stock (the paper
    // measures 2.55 ms vs 0.81 ms on its NameNode).
    let mut group = c.benchmark_group("micro_place_block_r3");
    for policy in [PlacementPolicy::Stock, PlacementPolicy::History] {
        group.bench_function(policy.label(), |b| {
            let placer = Placer::new(&dc, policy);
            let store = BlockStore::new(&dc);
            let mut rng = stream_rng(1, "bench-place");
            b.iter(|| {
                let writer = ServerId(rng.random_range(0..dc.n_servers()) as u32);
                black_box(placer.place_new(&mut rng, &store, writer, 3, None))
            })
        });
    }
    group.finish();

    // Reimage processing: destroying and re-indexing a loaded server.
    c.bench_function("store_reimage_loaded_server", |b| {
        let placer = Placer::new(&dc, PlacementPolicy::History);
        let mut rng = stream_rng(2, "bench-reimage-store");
        b.iter_batched(
            || {
                let mut store = BlockStore::new(&dc);
                for _ in 0..2_000 {
                    let writer = ServerId(rng.random_range(0..dc.n_servers()) as u32);
                    if let Some(p) = placer.place_new(&mut rng, &store, writer, 3, None) {
                        store.create_block(&p.servers);
                    }
                }
                store
            },
            |mut store| black_box(store.reimage_server(ServerId(0))),
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_placement
}
criterion_main!(benches);
