//! Server capacity and the primary-tenant resource reserve.
//!
//! §6.1: "our testbed is a 102-server setup, where each server has 12
//! cores and 32GB of memory. We reserve 4 cores (33%) and 10GB (31%) of
//! memory for primary tenants to burst into." The primary's measured
//! usage is rounded *up* to whole cores/MBs (§5.3), and harvested
//! containers are killed whenever free resources dip below the reserve.
//!
//! For storage, a server is "busy" — denying harvested data accesses —
//! once primary CPU exceeds `1 - reserve = 2/3` (§6.4: "accesses cannot
//! proceed if CPU utilization is higher than 66%").

use crate::resources::Resources;

/// Per-server hardware capacity (12 cores, 32 GB).
pub const SERVER_CAPACITY: Resources = Resources {
    cores: 12,
    memory_mb: 32_768,
};

/// The reserve kept free for primary bursts (4 cores, 10 GB).
pub const RESERVE: Resources = Resources {
    cores: 4,
    memory_mb: 10_240,
};

/// CPU utilization above which a server denies harvested storage accesses.
pub const BUSY_CPU_THRESHOLD: f64 = 1.0 - RESERVE.cores as f64 / SERVER_CAPACITY.cores as f64;

/// Rounds a primary tenant's CPU utilization up to whole cores (§5.3:
/// "round them up to the next integer number of cores").
pub fn primary_cores(cpu_util: f64) -> u32 {
    let cores = (cpu_util.clamp(0.0, 1.0) * SERVER_CAPACITY.cores as f64).ceil() as u32;
    cores.min(SERVER_CAPACITY.cores)
}

/// The primary tenant's rounded-up resource usage at a given CPU
/// utilization.
///
/// Memory is modelled as tracking CPU (the paper's evaluation focuses on
/// CPU; this keeps the memory dimension consistent without a second
/// trace).
pub fn primary_usage(cpu_util: f64) -> Resources {
    let frac = cpu_util.clamp(0.0, 1.0);
    Resources {
        cores: primary_cores(frac),
        memory_mb: ((frac * SERVER_CAPACITY.memory_mb as f64).ceil() as u32)
            .min(SERVER_CAPACITY.memory_mb),
    }
}

/// Resources a server may hand to secondary tenants at the given primary
/// CPU utilization: capacity minus the reserve minus the primary's
/// rounded-up usage.
pub fn secondary_capacity(cpu_util: f64) -> Resources {
    SERVER_CAPACITY
        .saturating_sub(RESERVE)
        .saturating_sub(primary_usage(cpu_util))
}

/// Whether a server must deny harvested storage accesses at the given
/// primary CPU utilization.
pub fn is_busy(cpu_util: f64) -> bool {
    cpu_util > BUSY_CPU_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_matches_paper_percentages() {
        // 4/12 = 33% of cores, 10/32 = 31% of memory.
        assert!((RESERVE.cores as f64 / SERVER_CAPACITY.cores as f64 - 0.333).abs() < 0.01);
        assert!(
            (RESERVE.memory_mb as f64 / SERVER_CAPACITY.memory_mb as f64 - 0.3125).abs() < 0.01
        );
    }

    #[test]
    fn primary_cores_round_up() {
        assert_eq!(primary_cores(0.0), 0);
        assert_eq!(primary_cores(0.01), 1);
        assert_eq!(primary_cores(1.0 / 12.0), 1);
        assert_eq!(primary_cores(1.01 / 12.0), 2);
        assert_eq!(primary_cores(1.0), 12);
        assert_eq!(primary_cores(5.0), 12); // clamped
    }

    #[test]
    fn secondary_capacity_shrinks_with_primary_load() {
        let idle = secondary_capacity(0.0);
        assert_eq!(idle.cores, 8);
        let half = secondary_capacity(0.5);
        assert_eq!(half.cores, 2);
        let busy = secondary_capacity(0.9);
        assert_eq!(busy.cores, 0);
    }

    #[test]
    fn busy_threshold_is_two_thirds() {
        assert!((BUSY_CPU_THRESHOLD - 2.0 / 3.0).abs() < 1e-12);
        assert!(!is_busy(0.66));
        assert!(is_busy(0.67));
    }

    #[test]
    fn memory_tracks_cpu() {
        let u = primary_usage(0.5);
        assert_eq!(u.memory_mb, 16_384);
        assert_eq!(primary_usage(0.0), Resources::ZERO);
    }
}
