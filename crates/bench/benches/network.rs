//! Benchmarks for the harvest-net fabric: max-min re-sharing under
//! contention, and the bandwidth-constrained repair storm.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_cluster::{Datacenter, ServerId};
use harvest_dfs::repair::{simulate_reimage_storm, StormConfig};
use harvest_net::{Fabric, NetworkConfig};
use harvest_sim::SimTime;
use harvest_trace::datacenter::DatacenterProfile;
use std::hint::black_box;

const MB: u64 = 1024 * 1024;

fn bench_network(c: &mut Criterion) {
    let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 42);

    // A convoy of flows across the fabric: exercises start, progressive
    // filling, and stale-event handling end to end.
    c.bench_function("fabric_200_flow_convoy", |b| {
        b.iter(|| {
            let mut f = Fabric::from_datacenter(&dc, &NetworkConfig::datacenter());
            let n = dc.n_servers();
            for i in 0..200u64 {
                let src = ServerId((i as usize * 7 % n) as u32);
                let dst = ServerId((i as usize * 13 + 1) as u32 % n as u32);
                f.schedule_flow(SimTime::from_millis(i * 11), src, dst, 64 * MB, i);
            }
            black_box(f.drain().len())
        })
    });

    // The §7 lesson-2 scenario: a tenant-wide reimage whose recovery is
    // bandwidth-constrained.
    let mut group = c.benchmark_group("reimage_storm");
    group.sample_size(10);
    let tenant = dc
        .tenants
        .iter()
        .max_by_key(|t| t.n_servers())
        .expect("dc has tenants")
        .id;
    for (label, network) in [
        ("network_off", None),
        ("network_on", Some(NetworkConfig::datacenter())),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = StormConfig::new(tenant, 7);
                cfg.fill_fraction = 0.2;
                cfg.network = network;
                black_box(simulate_reimage_storm(black_box(&dc), &cfg))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_network
}
criterion_main!(benches);
