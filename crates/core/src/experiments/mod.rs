//! One module per reproduced figure.

pub mod availability;
pub mod characterization;
pub mod dag;
pub mod durability;
pub mod grid;
pub mod micro;
pub mod sched_sim;
pub mod testbed;
