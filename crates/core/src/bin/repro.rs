//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--full] [--net] [--disk] [--sharing MODE] [--full-sweep]
//!       [--faults PROFILE] [--jobs N] [--seed N] [--trace-out FILE]
//!       [--metrics-out FILE] [--checkpoint FILE] [--resume FILE]
//!       [--task-deadline SECS] [--explain] [EXPERIMENT...]
//! repro analyze TRACE.json
//!
//!   EXPERIMENT    fig1..fig8, fig10..fig16, micro, or "all" (default)
//!   --full        bigger clusters, the paper's five runs per data point
//!                 (slower, tighter bands)
//!   --net         run over the harvest-net fabric (repair, remote
//!                 reads, and shuffles pay for bandwidth)
//!   --disk        run over the harvest-disk model (the same bytes pay
//!                 for platter bandwidth too; composes with --net)
//!   --sharing MODE  fair-sharing engine for the fabric and the disk
//!                 pools: auto (default — single-bottleneck components
//!                 and channels ride the analytic O(log n) fast path,
//!                 everything else falls back to progressive filling),
//!                 analytic (same selection, named for A/B runs), or
//!                 filling (pin the reference progressive-filling
//!                 tier). Experiment results are identical across
//!                 modes; only wall-clock and the transfer-model
//!                 churn diagnostics change
//!   --full-sweep  run the scheduling simulations with full-fleet tick
//!                 sweeps instead of the change-driven default — the
//!                 bitwise-identical reference mode (slower; for
//!                 validation)
//!   --faults PROFILE  arm a deterministic fault plan (rack power loss,
//!                 uplink flaps, disk failures and brown-outs) in the
//!                 experiments that take one — fig15 (durability) and
//!                 fig16 (availability). Profiles: rack-loss,
//!                 link-flap, disk-rot, correlated-storm. Without the
//!                 flag every report is byte-identical to a build
//!                 without the fault machinery
//!   --jobs N      worker threads for the sweep matrices (default: all
//!                 available cores; 1 = the sequential reference path;
//!                 reports are byte-identical for any N)
//!   --seed N      master seed (default 42)
//!   --trace-out FILE    write a Chrome-trace/Perfetto JSON of the run
//!   --metrics-out FILE  write a machine-readable metrics report (JSON)
//!   --checkpoint FILE   append each completed sweep task to a crash-safe
//!                 journal (checksummed lines, batched fsync)
//!   --resume FILE       restore completed sweep tasks from a journal and
//!                 compute only the remainder; combine with
//!                 `--checkpoint FILE` (same path is fine) to keep
//!                 journaling. Stdout is byte-identical to an
//!                 uninterrupted run
//!   --task-deadline SECS  flag sweep tasks running longer than SECS as
//!                 stragglers and cancel them cooperatively
//!   --explain     print a per-experiment blame table (wait-state and
//!                 critical-path attribution) to stderr
//! ```
//!
//! # Surviving failures
//!
//! Every sweep runs under a supervisor: a panicking task is retried on
//! a jittered backoff and, if it keeps failing, quarantined — its table
//! cell degrades while every other result stays bitwise identical to a
//! clean run, and the report gains a note naming the quarantined task.
//! `--checkpoint`/`--resume` make long sweeps crash-safe: kill the
//! process at any point, resume, and the final stdout is byte-identical
//! to the run that was never killed (the determinism oracle pins this).
//! A torn final journal line (from a crash mid-write) is detected by
//! its length/checksum header and dropped; corruption anywhere else is
//! a hard error.
//!
//! # Inspecting a run
//!
//! `--trace-out` and `--metrics-out` turn the observability layer on:
//! recording-aware experiments (currently `micro`) replay instrumented
//! runs whose sim-time spans, counters, gauges, and latency sketches
//! land in the files, and the harness adds one wall-time span per
//! experiment. Load the trace file in `chrome://tracing` or
//! <https://ui.perfetto.dev>; the metrics file is plain JSON (see
//! `harvest_sim::obs`). Recording never touches stdout — reports stay
//! byte-identical with it on or off.
//!
//! `repro analyze TRACE.json` turns an exported trace into "where did
//! the time go": per-track busy time and critical path, and — for the
//! wait-state tracks — a per-state blame breakdown with an exact
//! conservation check (every entity's states tile its lifetime; see
//! `harvest_sim::obs::analyze`). `--explain` computes the same tables
//! in-process per experiment and prints them to stderr, so stdout stays
//! byte-comparable.
//!
//! Reports go to stdout; per-experiment wall-clock timings (which vary
//! run to run) go to stderr as a closing table, so stdout stays
//! byte-for-byte comparable across runs and `--jobs` settings.

use std::process::ExitCode;
use std::sync::Arc;

use harvest_core::{run_experiment_recorded, Checkpoint, Scale, SweepSnapshot, ALL_EXPERIMENTS};
use harvest_sim::fault::FaultProfile;
use harvest_sim::obs::Recorder;

/// One experiment's sweep outcomes as a short stderr summary, e.g.
/// `"3 restored, 1 quarantined"`. Empty when nothing noteworthy
/// happened (the overwhelmingly common case).
fn snapshot_summary(snap: &SweepSnapshot) -> String {
    let mut parts = Vec::new();
    for (n, what) in [
        (snap.restored, "restored"),
        (snap.journaled, "journaled"),
        (snap.retries, "retries"),
        (snap.quarantined, "quarantined"),
    ] {
        if n > 0 {
            parts.push(format!("{n} {what}"));
        }
    }
    if snap.stragglers > 0 {
        if snap.cancelled > 0 {
            parts.push(format!(
                "{} stragglers ({} cancelled)",
                snap.stragglers, snap.cancelled
            ));
        } else {
            parts.push(format!("{} stragglers", snap.stragglers));
        }
    }
    parts.join(", ")
}

/// The valid `--faults` names, space-separated, for error messages.
fn profile_names() -> String {
    FaultProfile::ALL
        .iter()
        .map(|p| p.name())
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() -> ExitCode {
    // Collect flags first, apply them to the scale afterwards, so flag
    // order never matters (`--seed 7 --full` must keep seed 7).
    let mut full = false;
    let mut net = false;
    let mut disk = false;
    let mut full_sweep = false;
    let mut explain = false;
    let mut sharing = None;
    let mut faults = None;
    let mut seed = None;
    let mut jobs = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut checkpoint_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut task_deadline: Option<u64> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--net" => net = true,
            "--disk" => disk = true,
            "--full-sweep" => full_sweep = true,
            "--explain" => explain = true,
            "--sharing" => match args
                .next()
                .as_deref()
                .and_then(harvest_net::SharingMode::parse)
            {
                Some(mode) => sharing = Some(mode),
                None => {
                    eprintln!("--sharing requires one of: auto analytic filling");
                    return ExitCode::FAILURE;
                }
            },
            "--faults" => match args.next() {
                Some(name) => match FaultProfile::parse(&name) {
                    Some(p) => faults = Some(p),
                    None => {
                        eprintln!("error: unknown fault profile '{name}'");
                        eprintln!("valid profiles: {}", profile_names());
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--faults requires a profile name ({})", profile_names());
                    return ExitCode::FAILURE;
                }
            },
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(path),
                None => {
                    eprintln!("--metrics-out requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = Some(s),
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs requires an integer >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint" => match args.next() {
                Some(path) => checkpoint_path = Some(path),
                None => {
                    eprintln!("--checkpoint requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--resume" => match args.next() {
                Some(path) => resume_path = Some(path),
                None => {
                    eprintln!("--resume requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--task-deadline" => match args.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(secs) if secs >= 1 => task_deadline = Some(secs),
                _ => {
                    eprintln!("--task-deadline requires an integer number of seconds >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: repro [--full] [--net] [--disk] [--sharing MODE] \
                     [--full-sweep] [--faults PROFILE] [--jobs N] [--seed N] \
                     [--trace-out FILE] [--metrics-out FILE] [--checkpoint FILE] \
                     [--resume FILE] [--task-deadline SECS] [--explain] \
                     [EXPERIMENT...]"
                );
                println!("       repro analyze TRACE.json");
                println!("experiments: {} all", ALL_EXPERIMENTS.join(" "));
                println!(
                    "--full runs the paper's five runs per sweep point; --jobs N sets \
                     the sweep worker count (default: all cores, 1 = sequential \
                     reference; output is byte-identical for any N)"
                );
                println!(
                    "--sharing MODE picks the fair-sharing engine for the fabric and \
                     disk pools: auto (default; single-bottleneck components and \
                     channels ride the analytic O(log n) fast path, the rest uses \
                     progressive filling), analytic (same selection, named for A/B \
                     runs), or filling (pin the reference tier). Experiment \
                     results are identical across modes; only wall-clock and \
                     the transfer-model churn diagnostics change"
                );
                println!();
                println!("inspecting a run:");
                println!(
                    "  --trace-out FILE    write a Chrome-trace/Perfetto JSON of the run \
                     (open in chrome://tracing or ui.perfetto.dev): sim-time tracks per \
                     subsystem (sched ticks, fabric flows, disk streams, dfs repairs) \
                     plus wall-time tracks for the harness and parallel workers"
                );
                println!(
                    "  --metrics-out FILE  write a machine-readable JSON report: counters, \
                     gauge envelopes, and latency-sketch quantiles (p50/p90/p99)"
                );
                println!(
                    "  either flag turns recording on (the `micro` experiment then replays \
                     instrumented runs); stdout stays byte-identical with recording on or off"
                );
                println!(
                    "  analyze TRACE.json  turn an exported trace into blame tables: \
                     per-track busy time, critical path, and per-state wait breakdowns \
                     with an exact conservation check (states tile each entity's lifetime)"
                );
                println!(
                    "  --explain           compute the same blame tables in-process for \
                     each experiment and print them to stderr (stdout is untouched)"
                );
                println!();
                println!("injecting faults:");
                println!(
                    "  --faults PROFILE    arm a deterministic fault plan — rack power \
                     loss, uplink flaps, disk failures and brown-outs — drawn from the \
                     seed on a dedicated RNG stream and injected through the shared \
                     event queue. fig15 (durability) and fig16 (availability) react: \
                     heartbeat failure detection, repair retry with exponential \
                     backoff, and bounded retry budgets whose exhaustion is counted \
                     as permanent loss. Each armed report gains a fault-accounting \
                     note; without the flag every report is byte-identical to a \
                     build without the fault machinery"
                );
                println!("  profiles: {}", profile_names());
                println!();
                println!("surviving failures:");
                println!(
                    "  every sweep task runs under a supervisor: a panicking task is \
                     retried on a jittered backoff and, if it keeps failing, \
                     quarantined — its table cell degrades while every other result \
                     stays bitwise identical to a clean run, and the report notes \
                     the quarantined task"
                );
                println!(
                    "  --checkpoint FILE   append each completed sweep task to a \
                     crash-safe journal (checksummed lines, batched fsync); kill the \
                     process at any point and resume without losing finished work"
                );
                println!(
                    "  --resume FILE       restore completed tasks from a journal and \
                     compute only the remainder; stdout is byte-identical to an \
                     uninterrupted run at any --jobs. Pass the same path to both \
                     flags to keep journaling into the same file; a torn final line \
                     (crash mid-write) is detected and dropped"
                );
                println!(
                    "  --task-deadline SECS  flag sweep tasks running longer than \
                     SECS as stragglers and cancel them cooperatively; cancelled \
                     tasks degrade like quarantined ones. Without the flag, tasks \
                     8x slower than the running median are flagged (never \
                     cancelled) in the stderr timing table"
                );
                return ExitCode::SUCCESS;
            }
            other => experiments.push(other.to_string()),
        }
    }
    // `repro analyze TRACE.json` is a pure post-processing mode: no
    // experiments run, the blame tables go to stdout.
    if experiments.first().is_some_and(|e| e == "analyze") {
        if experiments.len() != 2 {
            eprintln!("usage: repro analyze TRACE.json");
            return ExitCode::FAILURE;
        }
        let path = &experiments[1];
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match harvest_sim::obs::analyze::analyze_trace_text(&text) {
            Ok(analysis) => {
                print!("{}", analysis.render());
                if !analysis.conserved() {
                    eprintln!("warning: some entities failed the state-conservation check");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {path} is not an analyzable trace: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut scale = if full { Scale::full() } else { Scale::quick() };
    if net {
        scale.network = Some(harvest_net::NetworkConfig::datacenter());
    }
    if disk {
        scale.disk = Some(harvest_disk::DiskConfig::datacenter());
    }
    if full_sweep {
        scale.tick_sweep = harvest_sched::TickSweep::Full;
    }
    if let Some(mode) = sharing {
        scale.sharing = mode;
    }
    scale.faults = faults;
    if let Some(jobs) = jobs {
        scale.jobs = jobs;
    }
    if let Some(seed) = seed {
        scale.seed = seed;
    }
    // Open the journal before any experiment runs: an unreadable or
    // corrupt resume file must fail fast, not after an hour of sweeps.
    let checkpoint = match Checkpoint::open(checkpoint_path.as_deref(), resume_path.as_deref()) {
        Ok(cp) => cp.map(|(cp, torn, restored)| {
            if resume_path.is_some() {
                if torn > 0 {
                    eprintln!("[resume: {restored} results restored, {torn} torn lines dropped]");
                } else {
                    eprintln!("[resume: {restored} results restored]");
                }
            }
            Arc::new(cp)
        }),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    scale.harness.checkpoint = checkpoint.clone();
    scale.harness.deadline = task_deadline.map(std::time::Duration::from_secs);
    let mut rec = if trace_out.is_some() || metrics_out.is_some() || explain {
        Recorder::new("repro")
    } else {
        Recorder::off()
    };
    scale.record = rec.is_on();
    // Validate every experiment name before expanding "all" or running
    // anything: a typo anywhere in the list (including a mistyped flag,
    // which parses as a name) must not cost the hour of experiments
    // around it.
    let unknown: Vec<&String> = experiments
        .iter()
        .filter(|e| *e != "all" && !ALL_EXPERIMENTS.contains(&e.as_str()))
        .collect();
    if !unknown.is_empty() {
        for e in unknown {
            eprintln!("error: unknown experiment '{e}'");
        }
        eprintln!("valid experiments: {} all", ALL_EXPERIMENTS.join(" "));
        return ExitCode::FAILURE;
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    // (experiment id, wall seconds, sweep outcomes) for the closing
    // timing table.
    let mut timings: Vec<(String, f64, SweepSnapshot)> = Vec::with_capacity(experiments.len());
    let suite_started = std::time::Instant::now();
    // Suite-level perf visibility without a profiler: per-experiment
    // wall clock plus the total, on stderr so stdout stays
    // byte-identical across runs and `--jobs` settings. Printed even
    // after a mid-suite error — the completed timings are still useful.
    let timing_table = |timings: &[(String, f64, SweepSnapshot)], total: f64| {
        eprintln!("timing ({} workers):", scale.jobs);
        for (id, secs, snap) in timings {
            let suffix = snapshot_summary(snap);
            let suffix = if suffix.is_empty() {
                String::new()
            } else {
                format!("  [{suffix}]")
            };
            eprintln!("  {id:<8} {secs:>8.1}s{suffix}");
        }
        eprintln!("  {:<8} {total:>8.1}s", "total");
    };
    for id in &experiments {
        let started = std::time::Instant::now();
        let t0_us = suite_started.elapsed().as_micros() as u64;
        // With --explain each experiment records into its own child so
        // its blame tables cover exactly this experiment's runs; the
        // child is absorbed back, so exports still see everything.
        let result = if explain {
            let mut erec = rec.child();
            let r = run_experiment_recorded(id, &scale, &mut erec);
            if r.is_ok() {
                match harvest_sim::obs::analyze::analyze_recorder(&erec) {
                    Ok(analysis) => {
                        eprintln!("[{id} blame]");
                        eprint!("{}", analysis.render());
                    }
                    Err(e) => eprintln!("[{id} blame unavailable: {e}]"),
                }
                // Sharing-engine classification: which fair-sharing tier
                // served this experiment's transfers. Only printed when
                // a transfer model ran (the counters exist).
                let cv = |name| erec.counter_value(name).unwrap_or(0);
                let net_analytic = cv("net/analytic_events");
                let disk_analytic = cv("disk/analytic_events");
                if erec.counter_value("net/analytic_components").is_some()
                    || erec.counter_value("disk/analytic_channels").is_some()
                {
                    eprintln!(
                        "[{id} sharing: {} fabric components promoted to the analytic \
                         tier ({} completions served in O(log n), {} migrated back to \
                         progressive filling); {} disk channels promoted ({} analytic \
                         completions)]",
                        cv("net/analytic_components"),
                        net_analytic,
                        cv("net/fallback_migrations"),
                        cv("disk/analytic_channels"),
                        disk_analytic,
                    );
                }
            }
            rec.absorb(erec);
            r
        } else {
            run_experiment_recorded(id, &scale, &mut rec)
        };
        match result {
            Ok(report) => {
                println!("{report}");
                let secs = started.elapsed().as_secs_f64();
                rec.wall_span(
                    "harness",
                    id,
                    t0_us,
                    suite_started.elapsed().as_micros() as u64,
                );
                // Drain this experiment's sweep outcomes so the next
                // experiment's snapshot starts clean.
                let snap = scale.harness.stats.take();
                if snap.any() {
                    eprintln!("[{id} harness: {}]", snapshot_summary(&snap));
                }
                if rec.is_on() {
                    for (name, v) in [
                        ("harness/restored", snap.restored),
                        ("harness/journaled", snap.journaled),
                        ("harness/retries", snap.retries),
                        ("harness/quarantined", snap.quarantined),
                        ("harness/stragglers", snap.stragglers),
                        ("harness/cancelled", snap.cancelled),
                    ] {
                        if v > 0 {
                            let c = rec.counter(name);
                            rec.add(c, v);
                        }
                    }
                }
                // Live progress for long suites; the table recaps.
                eprintln!("[{id} took {secs:.1}s]");
                timings.push((id.clone(), secs, snap));
            }
            Err(e) => {
                eprintln!("error: {e}");
                timing_table(&timings, suite_started.elapsed().as_secs_f64());
                return ExitCode::FAILURE;
            }
        }
    }
    timing_table(&timings, suite_started.elapsed().as_secs_f64());
    // Seal the journal: the final fsync and any latched write error.
    if let Some(cp) = &checkpoint {
        if let Err(e) = cp.flush() {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Exports last, after the timing table: on stderr either way, and
    // a write failure fails the run.
    if let Some(path) = trace_out {
        if let Err(e) = std::fs::write(&path, rec.chrome_trace_json()) {
            eprintln!("error: cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[trace written to {path}]");
    }
    if let Some(path) = metrics_out {
        if let Err(e) = std::fs::write(&path, rec.metrics_json()) {
            eprintln!("error: cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[metrics written to {path}]");
    }
    ExitCode::SUCCESS
}
