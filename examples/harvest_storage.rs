//! Harvest spare disk space durably: place replicated blocks with
//! Algorithm 2 and watch what a year of disk reimages does to them,
//! compared against stock HDFS placement.
//!
//! ```sh
//! cargo run --release --example harvest_storage
//! ```

use harvest::cluster::Datacenter;
use harvest::dfs::durability::{simulate_durability, DurabilityConfig};
use harvest::dfs::grid::Grid2D;
use harvest::dfs::placement::PlacementPolicy;
use harvest::prelude::DatacenterProfile;

fn main() {
    let seed = 42;
    // DC-3 has the paper's highest reimage rate — the hardest case.
    let profile = DatacenterProfile::dc(3).scaled(0.04);
    let dc = Datacenter::generate(&profile, seed);
    println!(
        "{}: {} tenants, {} servers, {:.1}M harvestable blocks\n",
        dc.name,
        dc.n_tenants(),
        dc.n_servers(),
        dc.total_harvest_blocks() as f64 / 1e6,
    );

    // The 3x3 grid Algorithm 2 places against.
    let grid = Grid2D::build(&dc);
    println!("Algorithm 2's 3x3 grid (reimage frequency x peak utilization):");
    for row in 0..3u8 {
        let cells: Vec<String> = (0..3u8)
            .map(|col| {
                let cell = harvest::dfs::grid::Cell { col, row };
                format!(
                    "{:>2} tenants / {:>7} blocks",
                    grid.members(cell).len(),
                    grid.space(cell)
                )
            })
            .collect();
        println!("  row {row}: [{}]", cells.join(" | "));
    }

    println!("\nsimulating one year of reimages, 3-way replication:");
    for policy in [PlacementPolicy::Stock, PlacementPolicy::History] {
        let cfg = DurabilityConfig::paper(policy, 3, seed);
        let result = simulate_durability(&dc, &cfg);
        println!(
            "  {:<11} {:>8} blocks, {:>6} reimages, {:>8} repairs -> lost {:>6} ({:.2e}%)",
            policy.to_string(),
            result.n_blocks,
            result.reimages,
            result.repairs,
            result.lost_blocks,
            result.lost_percent,
        );
    }
    println!("\n(the paper: HDFS-H cuts losses by over two orders of magnitude at R=3");
    println!(" and eliminates them entirely at R=4 — try changing the replication.)");
}
