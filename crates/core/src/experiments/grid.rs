//! Figure 8: the two-dimensional clustering scheme.

use harvest_cluster::Datacenter;
use harvest_dfs::grid::Grid2D;
use harvest_trace::datacenter::DatacenterProfile;

use crate::checkpoint::sweep_plain;
use crate::report::{num, Table};
use crate::scale::Scale;

/// Figure 8: the 3×3 (reimages × peak utilization) clustering of DC-9's
/// tenants, with per-cell space and statistic ranges.
pub fn fig8(scale: &Scale) -> String {
    let profile = DatacenterProfile::dc(9).scaled(scale.dc_scale.max(0.1));
    let dc = Datacenter::generate(&profile, scale.seed);
    let grid = Grid2D::build(&dc);

    let mut table = Table::new(
        "Figure 8: two-dimensional clustering scheme (DC-9)",
        &[
            "cell (col,row)",
            "tenants",
            "space (blocks)",
            "reimage rate range",
            "peak util range",
        ],
    );
    // Each cell's member scan is independent; fan the nine cells out
    // and emit the rows in cell order.
    let cells: Vec<_> = Grid2D::cells().collect();
    let swept = sweep_plain(
        scale,
        "fig8",
        &cells,
        |cell| format!("c{}r{}", cell.col, cell.row),
        |&cell, _cancel| {
            let members = grid.members(cell);
            let mut rate_lo = f64::MAX;
            let mut rate_hi = f64::MIN;
            let mut peak_lo = f64::MAX;
            let mut peak_hi = f64::MIN;
            for &tid in members {
                let t = dc.tenant(tid);
                let rate = t.reimage.expected_monthly_rate();
                rate_lo = rate_lo.min(rate);
                rate_hi = rate_hi.max(rate);
                peak_lo = peak_lo.min(t.trace.peak());
                peak_hi = peak_hi.max(t.trace.peak());
            }
            let ranges = if members.is_empty() {
                ("-".to_string(), "-".to_string())
            } else {
                (
                    format!("{}..{}", num(rate_lo, 2), num(rate_hi, 2)),
                    format!("{}..{}", num(peak_lo, 2), num(peak_hi, 2)),
                )
            };
            [
                format!("({}, {})", cell.col, cell.row),
                members.len().to_string(),
                grid.space(cell).to_string(),
                ranges.0,
                ranges.1,
            ]
        },
    );
    for (cell, row) in cells.iter().zip(&swept.results) {
        match row {
            Some(row) => table.row(row),
            None => table.row(&[
                format!("({}, {})", cell.col, cell.row),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        };
    }
    if let Some(note) = swept.note {
        table.note(note);
    }
    table.note(format!(
        "space imbalance (max/min cell): {}; the paper splits so every cell holds S/9 — rows do not align across columns because each column is split by space, not by peak value",
        num(grid.space_imbalance(), 2)
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_dfs::grid::Cell;

    #[test]
    fn fig8_reports_nine_cells() {
        let out = fig8(&Scale::quick());
        // Nine cells: (0,0) through (2,2).
        for col in 0..3 {
            for row in 0..3 {
                assert!(
                    out.contains(&format!("({col}, {row})")),
                    "missing cell {col},{row}"
                );
            }
        }
    }

    #[test]
    fn fig8_cell_of_is_consistent() {
        let scale = Scale::quick();
        let profile = DatacenterProfile::dc(9).scaled(0.1);
        let dc = Datacenter::generate(&profile, scale.seed);
        let grid = Grid2D::build(&dc);
        for t in &dc.tenants {
            let cell: Cell = grid.cell_of(t.id);
            assert!(grid.members(cell).contains(&t.id));
        }
    }
}
