//! Deterministic order-preserving parallel map.
//!
//! The experiment harness is an embarrassingly-parallel matrix: every
//! `(sweep point × run)` is an independent simulation whose inputs are a
//! task descriptor plus shared read-only state (a [`crate::rng`] seed
//! stream per task keeps the random streams decorrelated no matter which
//! worker executes it). [`par_map`] fans such a matrix out over
//! `std::thread::scope` workers pulling indices from one atomic cursor
//! (work stealing without queues), and writes each result into its
//! input slot of a pre-sized `Vec<Option<R>>`.
//!
//! # Determinism contract
//!
//! `par_map(jobs, tasks, f)` returns *the same bytes* as
//! `tasks.iter().map(f)` for any `jobs`, provided `f` is a pure function
//! of its task (and of shared *immutable* state). Thread count and
//! scheduling only decide *who* computes a slot, never *what* goes in it
//! or where: results are placed by input index, and every aggregation a
//! caller performs over the returned `Vec` happens on the calling thread
//! in input order, so even float reduction order is unchanged. That is
//! why determinism is free — there is no reduction tree whose shape
//! depends on `jobs`. `jobs == 1` short-circuits to a plain sequential
//! loop with no threads spawned: the reference path (`repro --jobs 1`).
//!
//! # Cost model
//!
//! * Task granularity: one claim is one `fetch_add` (~nanoseconds), so
//!   tasks of ≥ tens of microseconds amortize it fully. The harness's
//!   tasks are whole simulations (milliseconds to minutes); per-tenant
//!   classification tasks (~100 µs) still amortize ~10⁴×.
//! * Imbalance: the atomic cursor is claim-by-one, so a convoy of cheap
//!   tasks behind one expensive task costs at most
//!   `max(task) + total/jobs` wall clock — no static partitioning
//!   cliffs. Put the expensive axis (runs, tenants) in the task list
//!   rather than inside one task when possible.
//! * Memory: results are buffered per worker as `(index, R)` pairs and
//!   merged after the join, so `R` should be a summary (statistics, a
//!   report row), not a trace. Workers share nothing mutable; per-worker
//!   scratch comes from [`par_map_with`]'s `init`, which runs once per
//!   worker, not once per task.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The default worker count for parallel sweeps: every core the OS
/// grants us, or 1 if that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `tasks` on up to `jobs` worker threads, returning the
/// results in input order — byte-identical to the sequential map for
/// any `jobs` (see the module docs for the contract).
pub fn par_map<T, R, F>(jobs: usize, tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(jobs, tasks, || (), |(), t| f(t))
}

/// [`par_map`] with per-worker scratch state: `init` runs once on each
/// worker (and once total on the sequential path) and the resulting
/// scratch is threaded through every task that worker claims.
///
/// This is how allocation-heavy inner loops (e.g. FFT spectra in tenant
/// classification) reuse buffers without sharing anything mutable
/// across threads. The scratch must not carry information between tasks
/// that changes results, or the determinism contract breaks.
pub fn par_map_with<T, R, S, I, F>(jobs: usize, tasks: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(tasks.len().max(1));
    if jobs == 1 {
        let mut scratch = init();
        return tasks.iter().map(|t| f(&mut scratch, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    // Last task index each worker claimed, so a panicking worker's join
    // failure can name the task it died on (see `join_named`).
    let current: Vec<AtomicUsize> = (0..jobs).map(|_| AtomicUsize::new(usize::MAX)).collect();
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let (cursor, current, init, f) = (&cursor, &current, &init, &f);
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                scope.spawn(move || {
                    let mut scratch = init();
                    let mut claimed = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        current[w].store(i, Ordering::Relaxed);
                        claimed.push((i, f(&mut scratch, task)));
                    }
                    claimed
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(w, h)| join_named(w, current, h))
            .collect()
    });

    // Pre-sized output; placement by input index makes order free.
    let mut out: Vec<Option<R>> = Vec::with_capacity(tasks.len());
    out.resize_with(tasks.len(), || None);
    for bucket in buckets {
        for (i, r) in bucket {
            debug_assert!(out[i].is_none(), "slot {i} claimed twice");
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("par_map left a slot unclaimed"))
        .collect()
}

/// Joins one worker, converting a worker panic into a panic that names
/// the worker and the task it was executing — `par_map` itself does not
/// isolate panics (that is [`crate::supervise`]'s job), but it must not
/// hide *where* a sweep died.
fn join_named<B>(w: usize, current: &[AtomicUsize], h: std::thread::ScopedJoinHandle<'_, B>) -> B {
    match h.join() {
        Ok(bucket) => bucket,
        Err(payload) => {
            let task = current[w].load(Ordering::Relaxed);
            let on = if task == usize::MAX {
                "before claiming any task".to_string()
            } else {
                format!("on task {task}")
            };
            panic!(
                "par_map worker {w} panicked {on}: {}",
                crate::supervise::panic_message(&*payload)
            )
        }
    }
}

/// Wall-clock timing of one claimed task, as offsets from the
/// [`par_map_profiled`] call's entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskTiming {
    /// Input index of the task.
    pub task: usize,
    /// Start offset in microseconds.
    pub start_us: u64,
    /// End offset in microseconds.
    pub end_us: u64,
}

/// Everything one worker did during a [`par_map_profiled`] call: which
/// tasks it claimed and when. Gaps between consecutive spans are idle
/// time (waiting on the claim cursor or starved of work).
#[derive(Debug, Clone, Default)]
pub struct WorkerProfile {
    /// Worker index in `0..jobs`.
    pub worker: usize,
    /// Claimed tasks in claim order.
    pub tasks: Vec<TaskTiming>,
}

impl WorkerProfile {
    /// Total microseconds this worker spent inside task closures.
    pub fn busy_us(&self) -> u64 {
        self.tasks.iter().map(|t| t.end_us - t.start_us).sum()
    }
}

/// [`par_map`] plus per-worker profiling: returns the same results (the
/// determinism contract is unchanged — profiling only *observes* the
/// schedule) along with one [`WorkerProfile`] per worker, suitable for
/// [`crate::obs::Recorder::record_worker_profiles`].
///
/// The profiling clock is wall time, not sim time; timings vary run to
/// run even though results never do.
pub fn par_map_profiled<T, R, F>(jobs: usize, tasks: &[T], f: F) -> (Vec<R>, Vec<WorkerProfile>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let epoch = Instant::now();
    let stamp = |epoch: &Instant| epoch.elapsed().as_micros() as u64;
    let jobs = jobs.max(1).min(tasks.len().max(1));
    if jobs == 1 {
        let mut profile = WorkerProfile {
            worker: 0,
            tasks: Vec::with_capacity(tasks.len()),
        };
        let out = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let start_us = stamp(&epoch);
                let r = f(t);
                profile.tasks.push(TaskTiming {
                    task: i,
                    start_us,
                    end_us: stamp(&epoch),
                });
                r
            })
            .collect();
        return (out, vec![profile]);
    }

    let cursor = AtomicUsize::new(0);
    let current: Vec<AtomicUsize> = (0..jobs).map(|_| AtomicUsize::new(usize::MAX)).collect();
    let buckets: Vec<(Vec<(usize, R)>, WorkerProfile)> = std::thread::scope(|scope| {
        let (f, cursor, epoch, current) = (&f, &cursor, &epoch, &current);
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                scope.spawn(move || {
                    let mut claimed = Vec::new();
                    let mut profile = WorkerProfile {
                        worker: w,
                        tasks: Vec::new(),
                    };
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        current[w].store(i, Ordering::Relaxed);
                        let start_us = stamp(epoch);
                        claimed.push((i, f(task)));
                        profile.tasks.push(TaskTiming {
                            task: i,
                            start_us,
                            end_us: stamp(epoch),
                        });
                    }
                    (claimed, profile)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(w, h)| join_named(w, current, h))
            .collect()
    });

    let mut out: Vec<Option<R>> = Vec::with_capacity(tasks.len());
    out.resize_with(tasks.len(), || None);
    let mut profiles = Vec::with_capacity(jobs);
    for (bucket, profile) in buckets {
        for (i, r) in bucket {
            debug_assert!(out[i].is_none(), "slot {i} claimed twice");
            out[i] = Some(r);
        }
        profiles.push(profile);
    }
    let out = out
        .into_iter()
        .map(|r| r.expect("par_map left a slot unclaimed"))
        .collect();
    (out, profiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u64> = par_map(8, &[], |x: &u64| x + 1);
        assert!(none.is_empty());
        assert_eq!(par_map(8, &[41u64], |x| x + 1), vec![42]);
    }

    #[test]
    fn order_preserved_under_contention_with_unbalanced_costs() {
        // 64 tasks with deliberately unbalanced costs (task i spins
        // proportionally to a sawtooth of i, so early tasks are the
        // expensive ones and late claimers finish first) on more
        // workers than cores — maximum claim contention. The output
        // must still be exactly the input order.
        let tasks: Vec<u64> = (0..64).collect();
        let expect: Vec<u64> = tasks.iter().map(|&i| i * i + 1).collect();
        for jobs in [2, 3, 7, 16] {
            let got = par_map(jobs, &tasks, |&i| {
                let spin = (64 - i % 64) * 500;
                let mut acc = 0u64;
                for k in 0..spin {
                    acc = acc.wrapping_add(k ^ i);
                }
                std::hint::black_box(acc);
                i * i + 1
            });
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn matches_sequential_reference_bytewise() {
        // Float results: parallel must reproduce the sequential bits.
        let tasks: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let f = |x: &f64| (x.sin() * 1e9).sqrt();
        let seq: Vec<f64> = tasks.iter().map(f).collect();
        let par = par_map(5, &tasks, f);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        static HITS: AtomicUsize = AtomicUsize::new(0);
        let tasks: Vec<usize> = (0..100).collect();
        let out = par_map(4, &tasks, |&i| {
            HITS.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(HITS.load(Ordering::Relaxed), 100);
        assert_eq!(out, tasks);
    }

    #[test]
    fn per_worker_scratch_is_reused_not_shared() {
        // Each worker's scratch counts the tasks it claimed; the counts
        // must sum to the task count (every init is a fresh scratch).
        let tasks: Vec<usize> = (0..64).collect();
        let out = par_map_with(
            4,
            &tasks,
            || 0usize,
            |claimed, &i| {
                *claimed += 1;
                (i, *claimed)
            },
        );
        // Input order preserved on the task ids.
        assert_eq!(out.iter().map(|&(i, _)| i).collect::<Vec<_>>(), tasks);
        // Scratch is per worker, not per task: with 64 tasks over at
        // most 4 workers, pigeonhole forces some worker's scratch to
        // count at least 16 claims — an init-per-task regression would
        // leave every count at 1.
        let max_claims = out.iter().map(|&(_, c)| c).max().unwrap();
        assert!(max_claims >= 16, "max scratch count {max_claims} < 16");
        assert!(out.iter().all(|&(_, c)| (1..=64).contains(&c)));
    }

    #[test]
    fn jobs_one_never_spawns() {
        // The sequential reference path must run on the calling thread.
        let caller = std::thread::current().id();
        let tasks = [1, 2, 3];
        let out = par_map(1, &tasks, |&x| {
            assert_eq!(std::thread::current().id(), caller);
            x * 2
        });
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn worker_panic_names_worker_and_task() {
        let tasks: Vec<u64> = (0..8).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map(2, &tasks, |&i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
        });
        let payload = caught.expect_err("worker panic must propagate");
        let msg = crate::supervise::panic_message(&*payload);
        assert!(msg.contains("par_map worker"), "message: {msg}");
        assert!(msg.contains("on task 3"), "message: {msg}");
        assert!(msg.contains("boom"), "message: {msg}");
    }

    #[test]
    fn profiled_worker_panic_names_worker_and_task() {
        let tasks: Vec<u64> = (0..8).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map_profiled(2, &tasks, |&i| {
                if i == 5 {
                    panic!("boom-profiled");
                }
                i
            })
        });
        let payload = caught.expect_err("worker panic must propagate");
        let msg = crate::supervise::panic_message(&*payload);
        assert!(msg.contains("on task 5"), "message: {msg}");
        assert!(msg.contains("boom-profiled"), "message: {msg}");
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn profiled_matches_unprofiled_results() {
        let tasks: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let f = |x: &f64| (x.sin() * 1e9).sqrt();
        let plain = par_map(5, &tasks, f);
        let (profiled, profiles) = par_map_profiled(5, &tasks, f);
        for (a, b) in plain.iter().zip(&profiled) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(profiles.len(), 5);
        // Every task timed exactly once, across all workers.
        let mut seen: Vec<usize> = profiles
            .iter()
            .flat_map(|p| p.tasks.iter().map(|t| t.task))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..tasks.len()).collect::<Vec<_>>());
        for p in &profiles {
            for t in &p.tasks {
                assert!(t.end_us >= t.start_us);
            }
        }
    }

    #[test]
    fn profiled_sequential_path_runs_on_caller() {
        let caller = std::thread::current().id();
        let tasks = [1, 2, 3];
        let (out, profiles) = par_map_profiled(1, &tasks, |&x| {
            assert_eq!(std::thread::current().id(), caller);
            x * 2
        });
        assert_eq!(out, vec![2, 4, 6]);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].tasks.len(), 3);
        assert!(profiles[0].busy_us() <= profiles[0].tasks.last().unwrap().end_us);
    }
}
