//! Validate the files `repro --trace-out` / `--metrics-out` wrote.
//!
//! ```sh
//! cargo run --release --bin repro -- micro --net --disk \
//!     --trace-out /tmp/trace.json --metrics-out /tmp/metrics.json
//! cargo run --release --example validate_obs /tmp/trace.json /tmp/metrics.json
//! ```
//!
//! Parses both exports with the in-repo JSON parser and checks the
//! shape the viewers rely on: the trace has events, at least one
//! sim-time complete span (pid 1) and one wall-time event (pid 2), and
//! the metrics report has a counters object. Exits non-zero (with the
//! reason on stderr) on any failure, so CI can smoke the export path.

use std::process::ExitCode;

use harvest::sim::obs::json::{self, Value};

fn check(trace_text: &str, metrics_text: &str) -> Result<(), String> {
    let trace = json::parse(trace_text).map_err(|e| format!("trace does not parse: {e}"))?;
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("trace lacks a traceEvents array")?;
    if events.is_empty() {
        return Err("trace has no events".into());
    }
    let pid = |e: &Value| e.get("pid").and_then(Value::as_f64).unwrap_or(0.0) as i64;
    let ph = |e: &Value| {
        e.get("ph")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string()
    };
    let sim_spans = events
        .iter()
        .filter(|e| pid(e) == 1 && (ph(e) == "X" || ph(e) == "i"))
        .count();
    if sim_spans == 0 {
        return Err("trace has no sim-time spans (pid 1, ph X/i)".into());
    }
    let wall_events = events.iter().filter(|e| pid(e) == 2).count();
    if wall_events == 0 {
        return Err("trace has no wall-time events (pid 2)".into());
    }

    let metrics = json::parse(metrics_text).map_err(|e| format!("metrics do not parse: {e}"))?;
    let counters = metrics
        .get("counters")
        .and_then(Value::as_obj)
        .ok_or("metrics report lacks a counters object")?;
    if counters.is_empty() {
        return Err("metrics report has no counters".into());
    }
    eprintln!(
        "ok: {} trace events ({} sim-time spans, {} wall-time events), {} counters",
        events.len(),
        sim_spans,
        wall_events,
        counters.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [trace_path, metrics_path] = args.as_slice() else {
        eprintln!("usage: validate_obs TRACE.json METRICS.json");
        return ExitCode::FAILURE;
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let result = read(trace_path)
        .and_then(|t| read(metrics_path).map(|m| (t, m)))
        .and_then(|(t, m)| check(&t, &m));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("validate_obs: {e}");
            ExitCode::FAILURE
        }
    }
}
