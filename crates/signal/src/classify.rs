//! The three-way utilization-pattern classifier.
//!
//! §3.2 of the paper: "We identify three main classes of primary tenants:
//! periodic, unpredictable, and (roughly) constant." User-facing tenants
//! tend to be periodic (diurnal), crawlers/scrubbers roughly constant, and
//! development/testing tenants unpredictable.

use crate::spectrum::{periodicity_strength_with, SpectrumScratch};

/// A primary tenant's utilization trend class (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UtilizationPattern {
    /// Utilization repeats on a (typically diurnal) cycle — user-facing
    /// services with daytime peaks and nighttime valleys.
    Periodic,
    /// Utilization is roughly flat over time — crawlers, data scrubbers,
    /// always-on pipelines.
    Constant,
    /// Utilization moves with no repeating structure — development,
    /// testing, bursty internal workloads.
    Unpredictable,
}

impl UtilizationPattern {
    /// All patterns, in the paper's presentation order.
    pub const ALL: [UtilizationPattern; 3] = [
        UtilizationPattern::Periodic,
        UtilizationPattern::Constant,
        UtilizationPattern::Unpredictable,
    ];

    /// A short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            UtilizationPattern::Periodic => "periodic",
            UtilizationPattern::Constant => "constant",
            UtilizationPattern::Unpredictable => "unpredictable",
        }
    }
}

impl std::fmt::Display for UtilizationPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Thresholds for the pattern classifier.
#[derive(Debug, Clone, Copy)]
pub struct ClassifierConfig {
    /// Coefficient of variation at or below which a trace is *constant*.
    pub constant_cv_max: f64,
    /// Periodicity strength at or above which a non-constant trace is
    /// *periodic* (fraction of non-DC power at the fundamental and
    /// harmonics; see [`periodicity_strength`]).
    pub periodic_strength_min: f64,
    /// The candidate period, in samples (720 for a diurnal cycle sampled
    /// every two minutes).
    pub period_samples: f64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            constant_cv_max: 0.10,
            periodic_strength_min: 0.15,
            period_samples: 720.0,
        }
    }
}

/// Classifies a utilization trace into its pattern.
///
/// The decision mirrors §3.2/§4.1: traces whose variation is negligible
/// relative to their level are *constant*; otherwise the FFT decides
/// between *periodic* (strong signal at the diurnal frequency, as in
/// Figure 1b) and *unpredictable* (energy spread across low frequencies,
/// as in Figure 1d).
pub fn classify(values: &[f64], config: &ClassifierConfig) -> UtilizationPattern {
    classify_with(values, config, &mut SpectrumScratch::new())
}

/// [`classify`] with caller-owned FFT scratch buffers, so a sweep over
/// thousands of tenant traces reuses one spectrum allocation per worker
/// instead of allocating per trace. Results are identical to
/// [`classify`] bit for bit.
pub fn classify_with(
    values: &[f64],
    config: &ClassifierConfig,
    scratch: &mut SpectrumScratch,
) -> UtilizationPattern {
    if values.len() < 8 {
        return UtilizationPattern::Unpredictable;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    let std = var.sqrt();
    // An all-idle tenant is trivially constant; guard the division.
    let cv = if mean.abs() < 1e-9 { 0.0 } else { std / mean };
    if cv <= config.constant_cv_max {
        return UtilizationPattern::Constant;
    }
    let strength = periodicity_strength_with(values, config.period_samples, scratch);
    if strength >= config.periodic_strength_min {
        UtilizationPattern::Periodic
    } else {
        UtilizationPattern::Unpredictable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPD: usize = 720; // samples per day at two-minute resolution

    fn cfg() -> ClassifierConfig {
        ClassifierConfig::default()
    }

    fn noise(i: usize) -> f64 {
        ((i as f64 * 12.9898).sin() * 43_758.547).fract() - 0.5
    }

    #[test]
    fn flat_trace_is_constant() {
        let trace: Vec<f64> = (0..30 * SPD).map(|i| 0.45 + 0.01 * noise(i)).collect();
        assert_eq!(classify(&trace, &cfg()), UtilizationPattern::Constant);
    }

    #[test]
    fn idle_trace_is_constant() {
        let trace = vec![0.0; 30 * SPD];
        assert_eq!(classify(&trace, &cfg()), UtilizationPattern::Constant);
    }

    #[test]
    fn diurnal_trace_is_periodic() {
        let trace: Vec<f64> = (0..30 * SPD)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * i as f64 / SPD as f64;
                0.4 + 0.25 * phase.sin() + 0.03 * noise(i)
            })
            .collect();
        assert_eq!(classify(&trace, &cfg()), UtilizationPattern::Periodic);
    }

    #[test]
    fn random_walk_is_unpredictable() {
        let mut level = 0.5f64;
        let trace: Vec<f64> = (0..30 * SPD)
            .map(|i| {
                level = (level + 0.02 * noise(i * 7 + 3)).clamp(0.05, 0.95);
                level
            })
            .collect();
        assert_eq!(classify(&trace, &cfg()), UtilizationPattern::Unpredictable);
    }

    #[test]
    fn short_trace_falls_back_to_unpredictable() {
        assert_eq!(
            classify(&[0.1, 0.2], &cfg()),
            UtilizationPattern::Unpredictable
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(UtilizationPattern::Periodic.label(), "periodic");
        assert_eq!(UtilizationPattern::Constant.to_string(), "constant");
        assert_eq!(UtilizationPattern::ALL.len(), 3);
    }
}
