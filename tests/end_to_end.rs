//! End-to-end integration tests spanning the whole workspace: profile →
//! datacenter → clustering → scheduling / placement → paper-shape checks.

use harvest::cluster::{Datacenter, UtilizationView};
use harvest::dfs::availability::{simulate_availability, AvailabilityConfig};
use harvest::dfs::durability::{simulate_durability, DurabilityConfig};
use harvest::dfs::placement::PlacementPolicy;
use harvest::jobs::tpcds::tpcds_suite;
use harvest::jobs::workload::Workload;
use harvest::prelude::*;
use harvest::sched::sim::{SchedSim, SchedSimConfig};
use harvest::sim::rng::stream_rng;
use harvest::sim::SimDuration;
use harvest::trace::scaling::{calibrate, ScalingKind};

fn small_dc(dc_id: usize, seed: u64) -> Datacenter {
    Datacenter::generate(&DatacenterProfile::dc(dc_id).scaled(0.03), seed)
}

#[test]
fn full_scheduling_pipeline_runs_and_harvests() {
    let dc = small_dc(9, 1);
    let view = UtilizationView::unscaled(&dc);
    let mut rng = stream_rng(1, "e2e-wl");
    let workload = Workload::poisson(
        &mut rng,
        tpcds_suite(),
        SimDuration::from_secs(200),
        SimDuration::from_hours(2),
    );
    let mut cfg = SchedSimConfig::testbed(SchedPolicy::History, 1);
    cfg.horizon = SimDuration::from_hours(2);
    cfg.drain = SimDuration::from_hours(4);
    let stats = SchedSim::new(&dc, &view, &workload, cfg).run();

    assert!(stats.completed_jobs() > 0, "no jobs completed");
    assert!(
        stats.avg_total_utilization > stats.avg_primary_utilization,
        "harvesting added no utilization"
    );
    // Every completed job's execution time is at least its critical path.
    for job in &stats.jobs {
        if let Some(t) = job.execution_time {
            let cp = tpcds_suite()[job.query].critical_path();
            assert!(
                t >= cp,
                "job {} finished in {t} < critical path {cp}",
                job.name
            );
        }
    }
}

#[test]
fn durability_shape_stock_vs_history() {
    // DC-3: the highest-reimage datacenter. One year, R=3.
    let dc = small_dc(3, 2);
    let run = |policy| {
        let mut cfg = DurabilityConfig::paper(policy, 3, 5);
        cfg.months = 12;
        simulate_durability(&dc, &cfg)
    };
    let stock = run(PlacementPolicy::Stock);
    let hist = run(PlacementPolicy::History);
    assert!(stock.lost_blocks > 0, "Stock lost nothing in DC-3");
    // Paper: two orders of magnitude; assert at least one.
    assert!(
        hist.lost_blocks * 10 <= stock.lost_blocks,
        "H lost {} vs Stock {}",
        hist.lost_blocks,
        stock.lost_blocks
    );
}

#[test]
fn four_way_history_replication_eliminates_loss() {
    let dc = small_dc(3, 3);
    let mut cfg = DurabilityConfig::paper(PlacementPolicy::History, 4, 5);
    cfg.months = 12;
    let result = simulate_durability(&dc, &cfg);
    assert_eq!(
        result.lost_blocks, 0,
        "paper: HDFS-H at R=4 loses nothing anywhere"
    );
}

#[test]
fn availability_shape_across_utilization() {
    let dc = small_dc(9, 4);
    let traces: Vec<_> = dc.tenants.iter().map(|t| &t.trace).collect();
    let run = |policy, util: f64| {
        let factor = calibrate(&traces, ScalingKind::Linear, util);
        let view = UtilizationView::scaled(&dc, ScalingKind::Linear, factor);
        let mut cfg = AvailabilityConfig::paper(policy, 3, 7);
        cfg.span = SimDuration::from_days(2);
        simulate_availability(&dc, &view, &cfg).failed_percent
    };
    // Low utilization: no failures under either placement.
    assert_eq!(run(PlacementPolicy::History, 0.3), 0.0);
    // High utilization: History dominates Stock.
    let stock = run(PlacementPolicy::Stock, 0.6);
    let hist = run(PlacementPolicy::History, 0.6);
    assert!(
        hist <= stock,
        "HDFS-H failed {hist}% vs Stock {stock}% at 60%"
    );
}

#[test]
fn clustering_service_covers_every_server() {
    let dc = small_dc(6, 5);
    let svc = ClusteringService::build(&dc, 5);
    let covered: usize = svc.classes().iter().map(|c| c.n_servers()).sum();
    assert_eq!(covered, dc.n_servers());
}

#[test]
fn experiments_render_deterministically() {
    use harvest::core::{run_experiment, Scale};
    let mut scale = Scale::quick();
    scale.dc_scale = 0.02;
    for id in ["fig7", "fig8"] {
        let a = run_experiment(id, &scale).expect("experiment runs");
        let b = run_experiment(id, &scale).expect("experiment runs");
        assert_eq!(a, b, "{id} not deterministic");
        assert!(a.contains("Figure"), "{id} missing title");
    }
}

#[test]
fn umbrella_prelude_is_usable() {
    // The doc-comment quickstart, as a real test.
    let profile = DatacenterProfile::dc(9).scaled(0.02);
    let dc = Datacenter::generate(&profile, 42);
    let svc = ClusteringService::build(&dc, 42);
    assert!(svc.class_count() > 0);
    let ts: &TimeSeries = &dc.tenants[0].trace;
    assert!(!ts.is_empty());
}
