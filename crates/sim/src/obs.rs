//! Zero-cost-when-off observability: counters, gauges, histograms, and
//! sim-time spans, with Chrome-trace and machine-readable exporters.
//!
//! Every engine in the workspace (fabric, disk pool, scheduler, DFS
//! repair, the parallel harness) reports into a [`Recorder`]. The
//! recorder is a facade over an `Option<Box<Inner>>`:
//! [`Recorder::off`] is the default everywhere, and engines built
//! without one behave exactly as before.
//!
//! # Cost model
//!
//! **Off** (the default): every record method starts with one branch on
//! a niche-optimized `Option<Box<_>>` (a null-pointer check) and
//! returns. No allocation, no formatting, no syscalls — the only cost
//! an instrumented hot loop pays is that one predictable branch per
//! site, plus engines short-circuit whole instrumentation blocks behind
//! a single `Option<ObsIds>` check. `benches/obs.rs` pins the off-mode
//! overhead on the scheduler tick workload at ≤ 5%.
//!
//! **On**, per event:
//! * counter `add`/`counter_set` — one bounds-checked vector write;
//! * gauge sample — min/max/count update plus (amortized) one point
//!   appended to a bounded series: the series holds at most
//!   [`SERIES_CAP`] points and decimates itself (keep-every-other,
//!   recording stride doubles) when full, so month-scale horizons keep
//!   bounded memory;
//! * histogram `observe` — amortized O(1) into a fixed-size
//!   [`QuantileSketch`] (bounded levels of 256 slots; an occasional
//!   sort of one full level);
//! * span — one fixed-size record (name pointer, two timestamps, up to
//!   two inline key/value args; no per-span allocation), capped at
//!   [`MAX_SPANS`] recorder-wide with drops counted in the exported
//!   `obs/spans_dropped` counter — never silently truncated.
//!
//! # Determinism
//!
//! Recording is pure observation: no RNG, no reordering, no stdout.
//! Every simulation trajectory is bitwise identical with recording on
//! and off (`crates/core/tests/determinism.rs` pins `repro` stdout
//! byte-for-byte across the two). Exporters write only to the strings
//! they return; where they land on disk is the caller's business.
//!
//! # Composition
//!
//! Engines own a child recorder ([`Recorder::child`], on iff the
//! parent is on) for the duration of a run and hand it back through
//! [`Recorder::absorb`], which merges by metric name: counters sum,
//! gauges merge, histogram sketches merge, span tracks concatenate.
//! Subsystems namespace their metrics themselves
//! (`"fabric/reshares"`, `"disk/parks"`, …).
//!
//! # Exporters
//!
//! * [`Recorder::chrome_trace_json`] — the Chrome Trace Event format
//!   (loads in Perfetto / `chrome://tracing`): sim-time span tracks per
//!   subsystem on pid 1 (sim milliseconds mapped to trace
//!   microseconds), gauge series as counter tracks, and wall-time
//!   worker/harness tracks on pid 2.
//! * [`Recorder::metrics_json`] — a machine-readable run report
//!   (counters, gauge envelopes, histogram quantiles), parseable with
//!   the no-dependency [`json`] module below.

use std::collections::HashMap;

use crate::metrics::QuantileSketch;
use crate::par::WorkerProfile;
use crate::time::SimTime;

/// Gauge series point budget; a full series decimates keep-every-other
/// and doubles its recording stride.
pub const SERIES_CAP: usize = 4_096;

/// Recorder-wide span budget across all sim-time tracks; spans past it
/// are counted in the exported `obs/spans_dropped` counter.
pub const MAX_SPANS: usize = 1_000_000;

/// Inline key/value slots per span (changed/occupied is the widest
/// annotation any engine records).
const SPAN_ARGS: usize = 2;

/// Sentinel id handed out by an off recorder; every record method
/// ignores it.
const OFF: u32 = u32::MAX;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a registered histogram (quantile sketch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

/// Handle to a registered sim-time span track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(u32);

/// One sim-time span: `[start_ms, end_ms]` with up to two inline args.
/// `end == start` exports as an instant event.
#[derive(Debug, Clone, Copy)]
struct Span {
    name: &'static str,
    start_ms: u64,
    end_ms: u64,
    args: [(&'static str, f64); SPAN_ARGS],
    n_args: u8,
}

/// A named lane of sim-time spans (one Perfetto thread on pid 1).
#[derive(Debug, Default)]
struct Track {
    spans: Vec<Span>,
}

/// A bounded gauge time series: stride-doubling decimation keeps at
/// most [`SERIES_CAP`] points however long the run.
#[derive(Debug, Clone)]
struct Series {
    points: Vec<(u64, f64)>,
    stride: u64,
    seen: u64,
}

impl Series {
    fn new() -> Self {
        Series {
            points: Vec::new(),
            stride: 1,
            seen: 0,
        }
    }

    fn push(&mut self, t_ms: u64, v: f64) {
        let keep = self.seen.is_multiple_of(self.stride);
        self.seen += 1;
        if !keep {
            return;
        }
        self.points.push((t_ms, v));
        if self.points.len() >= SERIES_CAP {
            self.decimate();
        }
    }

    fn decimate(&mut self) {
        let mut i = 0usize;
        self.points.retain(|_| {
            let keep = i.is_multiple_of(2);
            i += 1;
            keep
        });
        self.stride *= 2;
    }
}

/// Last/min/max/count envelope plus the bounded series.
#[derive(Debug, Clone)]
struct Gauge {
    last: f64,
    min: f64,
    max: f64,
    count: u64,
    series: Series,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            last: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
            series: Series::new(),
        }
    }

    fn set(&mut self, t_ms: u64, v: f64) {
        self.last = v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
        self.series.push(t_ms, v);
    }
}

/// One wall-time span (µs from an arbitrary per-run epoch).
#[derive(Debug, Clone)]
struct WallSpan {
    label: String,
    start_us: u64,
    end_us: u64,
}

/// A named wall-time lane (one Perfetto thread on pid 2): a par_map
/// worker, or the harness's per-experiment lane.
#[derive(Debug)]
struct WallTrack {
    name: String,
    spans: Vec<WallSpan>,
}

/// Name-interned storage shared by every metric kind.
#[derive(Debug)]
struct Registry<T> {
    names: Vec<String>,
    items: Vec<T>,
    index: HashMap<String, u32>,
}

impl<T> Registry<T> {
    fn new() -> Self {
        Registry {
            names: Vec::new(),
            items: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn intern(&mut self, name: &str, make: impl FnOnce() -> T) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.items.len() as u32;
        self.names.push(name.to_string());
        self.items.push(make());
        self.index.insert(name.to_string(), id);
        id
    }

    fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        self.items.get_mut(id as usize)
    }

    /// `(name, item)` pairs in ascending name order (deterministic
    /// export regardless of registration order).
    fn sorted(&self) -> Vec<(&str, &T)> {
        let mut v: Vec<(&str, &T)> = self
            .names
            .iter()
            .map(String::as_str)
            .zip(self.items.iter())
            .collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }
}

#[derive(Debug)]
struct Inner {
    name: String,
    counters: Registry<u64>,
    gauges: Registry<Gauge>,
    hists: Registry<QuantileSketch>,
    tracks: Registry<Track>,
    wall: Vec<WallTrack>,
    spans_total: usize,
    spans_dropped: u64,
}

impl Inner {
    fn new(name: &str) -> Self {
        Inner {
            name: name.to_string(),
            counters: Registry::new(),
            gauges: Registry::new(),
            hists: Registry::new(),
            tracks: Registry::new(),
            wall: Vec::new(),
            spans_total: 0,
            spans_dropped: 0,
        }
    }

    fn wall_track_mut(&mut self, name: &str) -> &mut WallTrack {
        if let Some(i) = self.wall.iter().position(|t| t.name == name) {
            return &mut self.wall[i];
        }
        self.wall.push(WallTrack {
            name: name.to_string(),
            spans: Vec::new(),
        });
        self.wall.last_mut().expect("just pushed")
    }
}

/// The observability facade. See the module docs for the cost model.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Option<Box<Inner>>,
}

impl Recorder {
    /// The no-op recorder: every method is one branch and a return.
    pub fn off() -> Self {
        Recorder { inner: None }
    }

    /// An active recorder named `name` (the name heads the metrics
    /// report).
    pub fn new(name: &str) -> Self {
        Recorder {
            inner: Some(Box::new(Inner::new(name))),
        }
    }

    /// Whether this recorder is recording.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// A child recorder for an engine to own during a run: on iff
    /// `self` is on. Hand it back through [`Recorder::absorb`].
    pub fn child(&self) -> Recorder {
        if self.is_on() {
            Recorder::new("")
        } else {
            Recorder::off()
        }
    }

    /// Merges a child recorder's contents: counters add, gauges merge,
    /// histogram sketches merge, tracks concatenate, all by name.
    pub fn absorb(&mut self, child: Recorder) {
        let Some(inner) = &mut self.inner else { return };
        let Some(c) = child.inner else { return };
        for (name, value) in c.counters.names.iter().zip(&c.counters.items) {
            let id = inner.counters.intern(name, || 0);
            *inner.counters.get_mut(id).expect("interned") += value;
        }
        for (name, g) in c.gauges.names.iter().zip(&c.gauges.items) {
            let id = inner.gauges.intern(name, Gauge::new);
            let dst = inner.gauges.get_mut(id).expect("interned");
            if g.count > 0 {
                dst.last = g.last;
                dst.min = dst.min.min(g.min);
                dst.max = dst.max.max(g.max);
                dst.count += g.count;
                dst.series.points.extend_from_slice(&g.series.points);
                dst.series.points.sort_by_key(|&(t, _)| t);
                while dst.series.points.len() >= SERIES_CAP {
                    dst.series.decimate();
                }
            }
        }
        for (name, h) in c.hists.names.iter().zip(&c.hists.items) {
            let id = inner.hists.intern(name, QuantileSketch::new);
            inner.hists.get_mut(id).expect("interned").merge(h);
        }
        for (name, t) in c.tracks.names.iter().zip(&c.tracks.items) {
            let id = inner.tracks.intern(name, Track::default);
            inner
                .tracks
                .get_mut(id)
                .expect("interned")
                .spans
                .extend_from_slice(&t.spans);
        }
        for t in c.wall {
            inner.wall_track_mut(&t.name).spans.extend(t.spans);
        }
        inner.spans_total += c.spans_total;
        inner.spans_dropped += c.spans_dropped;
    }

    /// Registers (or finds) a counter. Returns a dummy id when off.
    pub fn counter(&mut self, name: &str) -> CounterId {
        match &mut self.inner {
            Some(i) => CounterId(i.counters.intern(name, || 0)),
            None => CounterId(OFF),
        }
    }

    /// Registers (or finds) a gauge. Returns a dummy id when off.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        match &mut self.inner {
            Some(i) => GaugeId(i.gauges.intern(name, Gauge::new)),
            None => GaugeId(OFF),
        }
    }

    /// Registers (or finds) a histogram. Returns a dummy id when off.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        match &mut self.inner {
            Some(i) => HistogramId(i.hists.intern(name, QuantileSketch::new)),
            None => HistogramId(OFF),
        }
    }

    /// Registers (or finds) a sim-time span track. Returns a dummy id
    /// when off.
    pub fn track(&mut self, name: &str) -> TrackId {
        match &mut self.inner {
            Some(i) => TrackId(i.tracks.intern(name, Track::default)),
            None => TrackId(OFF),
        }
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(c) = inner.counters.get_mut(id.0) {
            *c += delta;
        }
    }

    /// Sets a counter to an absolute value (for mirroring an engine's
    /// final totals).
    #[inline]
    pub fn counter_set(&mut self, id: CounterId, value: u64) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(c) = inner.counters.get_mut(id.0) {
            *c = value;
        }
    }

    /// Samples a gauge at a sim-time instant.
    #[inline]
    pub fn gauge_at(&mut self, id: GaugeId, at: SimTime, value: f64) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(g) = inner.gauges.get_mut(id.0) {
            g.set(at.as_millis(), value);
        }
    }

    /// Adds one observation to a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(h) = inner.hists.get_mut(id.0) {
            h.push(value);
        }
    }

    /// Records a sim-time span on a track.
    #[inline]
    pub fn span(&mut self, id: TrackId, name: &'static str, start: SimTime, end: SimTime) {
        self.span_args(id, name, start, end, &[]);
    }

    /// Records a sim-time span with up to [`SPAN_ARGS`] inline
    /// key/value annotations (extras are dropped).
    #[inline]
    pub fn span_args(
        &mut self,
        id: TrackId,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        args: &[(&'static str, f64)],
    ) {
        let Some(inner) = &mut self.inner else { return };
        if inner.spans_total >= MAX_SPANS {
            inner.spans_dropped += 1;
            return;
        }
        let Some(t) = inner.tracks.get_mut(id.0) else {
            return;
        };
        let mut inline = [("", 0.0); SPAN_ARGS];
        let n = args.len().min(SPAN_ARGS);
        inline[..n].copy_from_slice(&args[..n]);
        t.spans.push(Span {
            name,
            start_ms: start.as_millis(),
            end_ms: end.as_millis(),
            args: inline,
            n_args: n as u8,
        });
        inner.spans_total += 1;
    }

    /// Records an instant event (a zero-length span) on a track.
    #[inline]
    pub fn instant(&mut self, id: TrackId, name: &'static str, at: SimTime) {
        self.span_args(id, name, at, at, &[]);
    }

    /// Records one wall-time span on the named wall track (µs from any
    /// fixed per-run epoch).
    pub fn wall_span(&mut self, track: &str, label: &str, start_us: u64, end_us: u64) {
        let Some(inner) = &mut self.inner else { return };
        inner.wall_track_mut(track).spans.push(WallSpan {
            label: label.to_string(),
            start_us,
            end_us,
        });
    }

    /// Records [`crate::par::par_map_profiled`] worker profiles as one
    /// wall track per worker (`{label}/w{worker}`), one span per task.
    pub fn record_worker_profiles(&mut self, label: &str, profiles: &[WorkerProfile]) {
        if self.inner.is_none() {
            return;
        }
        for p in profiles {
            let track = format!("{label}/w{}", p.worker);
            for t in &p.tasks {
                self.wall_span(&track, &format!("task {}", t.task), t.start_us, t.end_us);
            }
        }
    }

    /// The current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let &id = inner.counters.index.get(name)?;
        inner.counters.items.get(id as usize).copied()
    }

    /// Serializes everything as Chrome Trace Event JSON (see the
    /// module docs for the track layout). Off recorders export an
    /// empty-but-valid trace.
    pub fn chrome_trace_json(&self) -> String {
        let mut ev: Vec<String> = Vec::new();
        ev.push(meta_event(1, 0, "process_name", "sim-time"));
        if let Some(inner) = &self.inner {
            for (tid0, (name, track)) in inner.tracks.sorted().into_iter().enumerate() {
                let tid = tid0 as u64 + 1;
                ev.push(meta_event(1, tid, "thread_name", name));
                for s in &track.spans {
                    ev.push(span_event(1, tid, s));
                }
            }
            // Gauge series as Perfetto counter tracks on the sim-time
            // process.
            for (name, g) in inner.gauges.sorted() {
                for &(t_ms, v) in &g.series.points {
                    ev.push(format!(
                        "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":{},\"ts\":{},\"args\":{{\"value\":{}}}}}",
                        jstr(name),
                        t_ms * 1_000,
                        jnum(v)
                    ));
                }
            }
            ev.push(meta_event(2, 0, "process_name", "wall-time"));
            for (tid0, track) in inner.wall.iter().enumerate() {
                let tid = tid0 as u64 + 1;
                ev.push(meta_event(2, tid, "thread_name", &track.name));
                for s in &track.spans {
                    ev.push(format!(
                        "{{\"ph\":\"X\",\"pid\":2,\"tid\":{},\"name\":{},\"ts\":{},\"dur\":{}}}",
                        tid,
                        jstr(&s.label),
                        s.start_us,
                        s.end_us.saturating_sub(s.start_us).max(1)
                    ));
                }
            }
        }
        format!("{{\"traceEvents\":[\n{}\n]}}\n", ev.join(",\n"))
    }

    /// Serializes counters, gauge envelopes, and histogram summaries as
    /// a machine-readable JSON report (keys in sorted order), parseable
    /// with [`json::parse`]. Off recorders export an empty report.
    pub fn metrics_json(&self) -> String {
        let Some(inner) = &self.inner else {
            return "{\"name\":\"off\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n"
                .to_string();
        };
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"name\": {},\n", jstr(&inner.name)));
        out.push_str(&format!(
            "  \"spans_recorded\": {},\n  \"spans_dropped\": {},\n",
            inner.spans_total, inner.spans_dropped
        ));

        let counters: Vec<String> = inner
            .counters
            .sorted()
            .into_iter()
            .map(|(n, v)| format!("    {}: {}", jstr(n), v))
            .collect();
        out.push_str(&format!(
            "  \"counters\": {{\n{}\n  }},\n",
            counters.join(",\n")
        ));

        let gauges: Vec<String> = inner
            .gauges
            .sorted()
            .into_iter()
            .map(|(n, g)| {
                format!(
                    "    {}: {{ \"last\": {}, \"min\": {}, \"max\": {}, \"count\": {} }}",
                    jstr(n),
                    jnum(g.last),
                    jnum(if g.count == 0 { 0.0 } else { g.min }),
                    jnum(if g.count == 0 { 0.0 } else { g.max }),
                    g.count
                )
            })
            .collect();
        out.push_str(&format!(
            "  \"gauges\": {{\n{}\n  }},\n",
            gauges.join(",\n")
        ));

        let hists: Vec<String> = inner
            .hists
            .sorted()
            .into_iter()
            .map(|(n, h)| {
                format!(
                    "    {}: {{ \"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
                     \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
                    jstr(n),
                    h.count(),
                    jnum(h.min().unwrap_or(0.0)),
                    jnum(h.max().unwrap_or(0.0)),
                    jnum(h.mean().unwrap_or(0.0)),
                    jnum(h.quantile(0.50).unwrap_or(0.0)),
                    jnum(h.quantile(0.90).unwrap_or(0.0)),
                    jnum(h.quantile(0.99).unwrap_or(0.0)),
                )
            })
            .collect();
        out.push_str(&format!(
            "  \"histograms\": {{\n{}\n  }},\n",
            hists.join(",\n")
        ));

        let tracks: Vec<String> = inner
            .tracks
            .sorted()
            .into_iter()
            .map(|(n, t)| format!("    {}: {}", jstr(n), t.spans.len()))
            .collect();
        out.push_str(&format!(
            "  \"tracks\": {{\n{}\n  }}\n}}\n",
            tracks.join(",\n")
        ));
        out
    }
}

fn meta_event(pid: u64, tid: u64, kind: &str, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"args\":{{\"name\":{}}}}}",
        jstr(kind),
        jstr(name)
    )
}

fn span_event(pid: u64, tid: u64, s: &Span) -> String {
    let ts = s.start_ms * 1_000;
    if s.end_ms == s.start_ms {
        return format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"ts\":{ts},\"s\":\"t\"}}",
            jstr(s.name)
        );
    }
    let dur = (s.end_ms - s.start_ms) * 1_000;
    let mut args = String::new();
    for (i, (k, v)) in s.args[..s.n_args as usize].iter().enumerate() {
        if i > 0 {
            args.push(',');
        }
        args.push_str(&format!("{}:{}", jstr(k), jnum(*v)));
    }
    format!(
        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"ts\":{ts},\"dur\":{dur},\"args\":{{{args}}}}}",
        jstr(s.name)
    )
}

/// JSON string literal (quotes + escapes).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal; non-finite values (which no engine should
/// produce) serialize as 0 to keep the document valid.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

pub mod json {
    //! A minimal JSON parser for validating the exporters' output in
    //! tests, benches, and `examples/validate_obs.rs` — not a general
    //! JSON library (no serde in this workspace).

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (parsed as `f64`).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object member by key.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The number, if this is one.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The string, if this is one.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }

        /// The members, if this is an object.
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'{') => parse_obj(b, pos),
            Some(b'[') => parse_arr(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_num(b, pos),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = b
                        .get(*pos..*pos + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| format!("bad utf-8 at byte {pos}"))?;
                    out.push_str(chunk);
                    *pos += len;
                }
            }
        }
    }

    fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut members = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            members.push((key, parse_value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn off_recorder_is_inert() {
        let mut r = Recorder::off();
        assert!(!r.is_on());
        let c = r.counter("x");
        let g = r.gauge("y");
        let h = r.histogram("z");
        let t = r.track("w");
        r.add(c, 5);
        r.gauge_at(g, SimTime::from_secs(1), 2.0);
        r.observe(h, 3.0);
        r.span(t, "s", SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(r.counter_value("x"), None);
        assert!(!r.child().is_on());
        // Exporters still emit valid documents.
        json::parse(&r.chrome_trace_json()).expect("off trace parses");
        json::parse(&r.metrics_json()).expect("off metrics parse");
    }

    #[test]
    fn counters_gauges_histograms_record() {
        let mut r = Recorder::new("t");
        let c = r.counter("a/count");
        r.add(c, 2);
        r.add(c, 3);
        assert_eq!(r.counter_value("a/count"), Some(5));
        let c2 = r.counter("a/count");
        assert_eq!(c, c2, "re-registration must return the same id");
        let g = r.gauge("a/depth");
        for i in 0..10 {
            r.gauge_at(g, SimTime::from_secs(i), i as f64);
        }
        let h = r.histogram("a/lat");
        for i in 1..=100 {
            r.observe(h, i as f64);
        }
        let doc = json::parse(&r.metrics_json()).expect("parses");
        let depth = doc.get("gauges").and_then(|g| g.get("a/depth")).unwrap();
        assert_eq!(depth.get("min").unwrap().as_f64(), Some(0.0));
        assert_eq!(depth.get("max").unwrap().as_f64(), Some(9.0));
        assert_eq!(depth.get("last").unwrap().as_f64(), Some(9.0));
        let lat = doc.get("histograms").and_then(|h| h.get("a/lat")).unwrap();
        assert_eq!(lat.get("count").unwrap().as_f64(), Some(100.0));
        let p50 = lat.get("p50").unwrap().as_f64().unwrap();
        assert!((45.0..=55.0).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn absorb_merges_by_name() {
        let mut parent = Recorder::new("p");
        let pc = parent.counter("fabric/reshares");
        parent.add(pc, 10);
        let mut child = parent.child();
        assert!(child.is_on());
        let cc = child.counter("fabric/reshares");
        child.add(cc, 7);
        let ch = child.histogram("fabric/flow_secs");
        child.observe(ch, 1.0);
        let ct = child.track("fabric");
        child.span(ct, "flow", SimTime::ZERO, SimTime::from_secs(1));
        parent.absorb(child);
        assert_eq!(parent.counter_value("fabric/reshares"), Some(17));
        let doc = json::parse(&parent.metrics_json()).expect("parses");
        let flows = doc.get("tracks").and_then(|t| t.get("fabric")).unwrap();
        assert_eq!(flows.as_f64(), Some(1.0));
    }

    #[test]
    fn gauge_series_memory_is_bounded() {
        let mut r = Recorder::new("b");
        let g = r.gauge("q");
        // A month of two-minute samples is ~21 600 points; push far
        // more and check the stored series stayed under the cap.
        for i in 0..200_000u64 {
            r.gauge_at(g, SimTime::from_secs(i), (i % 97) as f64);
        }
        let inner = r.inner.as_ref().unwrap();
        let series = &inner.gauges.items[0].series;
        assert!(series.points.len() < SERIES_CAP, "{}", series.points.len());
        assert!(series.stride > 1, "never decimated");
        assert_eq!(inner.gauges.items[0].count, 200_000);
    }

    #[test]
    fn span_cap_drops_are_counted() {
        let mut r = Recorder::new("cap");
        let t = r.track("x");
        for i in 0..(MAX_SPANS + 10) as u64 {
            r.span(t, "s", SimTime::from_millis(i), SimTime::from_millis(i + 1));
        }
        let inner = r.inner.as_ref().unwrap();
        assert_eq!(inner.spans_total, MAX_SPANS);
        assert_eq!(inner.spans_dropped, 10);
        let doc = json::parse(&r.metrics_json()).expect("parses");
        assert_eq!(doc.get("spans_dropped").unwrap().as_f64(), Some(10.0));
    }

    #[test]
    fn chrome_trace_round_trips() {
        let mut r = Recorder::new("rt");
        let t = r.track("fabric");
        r.span_args(
            t,
            "flow",
            SimTime::from_millis(5),
            SimTime::from_millis(17),
            &[("bytes", 1024.0)],
        );
        r.instant(t, "park", SimTime::from_millis(20));
        let g = r.gauge("fabric/queue_len");
        r.gauge_at(g, SimTime::from_millis(5), 3.0);
        r.wall_span("workers/w0", "task 0", 100, 250);
        let doc = json::parse(&r.chrome_trace_json()).expect("trace parses");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let find = |ph: &str, name: &str| -> &Value {
            events
                .iter()
                .find(|e| {
                    e.get("ph").and_then(Value::as_str) == Some(ph)
                        && e.get("name").and_then(Value::as_str) == Some(name)
                })
                .unwrap_or_else(|| panic!("no {ph} event named {name}"))
        };
        let flow = find("X", "flow");
        assert_eq!(flow.get("ts").unwrap().as_f64(), Some(5_000.0));
        assert_eq!(flow.get("dur").unwrap().as_f64(), Some(12_000.0));
        assert_eq!(flow.get("pid").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            flow.get("args")
                .and_then(|a| a.get("bytes"))
                .unwrap()
                .as_f64(),
            Some(1024.0)
        );
        find("i", "park");
        let ctr = find("C", "fabric/queue_len");
        assert_eq!(
            ctr.get("args")
                .and_then(|a| a.get("value"))
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
        let task = find("X", "task 0");
        assert_eq!(task.get("pid").unwrap().as_f64(), Some(2.0));
        assert_eq!(task.get("ts").unwrap().as_f64(), Some(100.0));
        // Track naming metadata present for both processes.
        find("M", "process_name");
        find("M", "thread_name");
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let doc = json::parse("{\"a\\n\": [1, -2.5e3, true, null, \"x\\u0041\\\"\"], \"b\": {}}")
            .expect("parses");
        let arr = doc.get("a\n").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2], Value::Bool(true));
        assert_eq!(arr[3], Value::Null);
        assert_eq!(arr[4].as_str(), Some("xA\""));
        assert!(doc.get("b").unwrap().as_obj().unwrap().is_empty());
        assert!(json::parse("{\"a\": }").is_err());
        assert!(json::parse("[1, 2").is_err());
        assert!(json::parse("{} trailing").is_err());
    }

    #[test]
    fn span_times_survive_sim_durations() {
        let mut r = Recorder::new("t");
        let t = r.track("x");
        let start = SimTime::ZERO + SimDuration::from_hours(3);
        let end = start + SimDuration::from_mins(2);
        r.span(t, "tick", start, end);
        let doc = json::parse(&r.chrome_trace_json()).expect("parses");
        let ev = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let tick = ev
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("tick"))
            .unwrap();
        assert_eq!(tick.get("dur").unwrap().as_f64(), Some(120_000_000.0));
    }
}
