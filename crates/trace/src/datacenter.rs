//! Profiles of the ten characterized datacenters (DC-0 … DC-9).
//!
//! Each profile encodes the distributional facts §3 reports, per
//! datacenter:
//!
//! * tenant-pattern mix — constant tenants are "the vast majority" of
//!   tenants (Figure 2) while periodic tenants hold ≈ 40% of servers
//!   (Figure 3), so periodic tenants are far larger on average;
//! * temporal-variation level — DC-0 and DC-2 "exhibit the least amount
//!   of primary tenant utilization variation over time", DC-1 and DC-4
//!   the most (Figure 14's discussion);
//! * reimage-rate distribution — most DCs have medians ≈ 0.2–0.3
//!   reimages/server/month with a heavy tail, while "three datacenters
//!   show substantially lower reimaging rates per server" (Figure 4).
//!
//! [`DatacenterProfile::sample_tenants`] turns a profile into concrete
//! [`TenantSpec`]s deterministically from a seed.

use harvest_signal::classify::UtilizationPattern;
use harvest_sim::dist;
use harvest_sim::rng::indexed_rng;
use rand::{Rng, RngExt};

use crate::gen::{ConstantGen, PeriodicGen, UnpredictableGen, UtilGen};
use crate::reimage::TenantReimageModel;

/// Fractions of tenants in each utilization pattern. Must sum to ≈ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternMix {
    /// Fraction of tenants that are periodic (user-facing).
    pub periodic: f64,
    /// Fraction of tenants that are roughly constant.
    pub constant: f64,
    /// Fraction of tenants that are unpredictable.
    pub unpredictable: f64,
}

impl PatternMix {
    fn validate(&self) {
        let sum = self.periodic + self.constant + self.unpredictable;
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "pattern mix must sum to 1, got {sum}"
        );
    }
}

/// A synthetic stand-in for one production datacenter.
#[derive(Debug, Clone, PartialEq)]
pub struct DatacenterProfile {
    /// Index 0–9 (`DC-<id>` in the paper's figures).
    pub id: usize,
    /// Number of primary tenants ("a few hundred to a few thousand").
    pub n_tenants: usize,
    /// Tenant-pattern mix (Figure 2).
    pub tenant_mix: PatternMix,
    /// Mean servers per tenant for [periodic, constant, unpredictable]
    /// tenants. Periodic tenants are much larger so that they hold ≈ 40%
    /// of servers (Figure 3) despite being a small minority of tenants.
    pub servers_per_tenant: [f64; 3],
    /// Temporal-variation level in `[0, 1]`: scales diurnal amplitude,
    /// random-walk volatility, and load spikes. DC-0/DC-2 low, DC-1/DC-4
    /// high.
    pub variation: f64,
    /// Median independent reimages/server/month across tenants.
    pub reimage_median: f64,
    /// Log-normal sigma of the per-tenant reimage-rate distribution
    /// (controls the heavy tail in Figures 4–5).
    pub reimage_sigma: f64,
    /// Expected tenant-wide redeployment sweeps per month for a tenant
    /// with the median reimage rate (scales with the tenant's rate).
    pub redeploy_rate: f64,
    /// Sigma of month-over-month drift in tenant reimage rates
    /// (calibrated so ≥ 80% of tenants change frequency group ≤ 8 times
    /// in 35 transitions, Figure 6).
    pub rate_drift_sigma: f64,
}

/// One primary tenant: its size, environment, utilization generator, and
/// reimage model. Equivalent to the paper's `<environment, machine
/// function>` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name, e.g. `"dc9-t042"`.
    pub name: String,
    /// Environment the tenant belongs to. Multiple tenants (machine
    /// functions) can share an environment; Algorithm 2 refuses to put
    /// two replicas in the same environment.
    pub environment: usize,
    /// Number of servers the tenant owns.
    pub n_servers: usize,
    /// Utilization behaviour.
    pub util: UtilGen,
    /// Reimage behaviour.
    pub reimage: TenantReimageModel,
}

impl TenantSpec {
    /// The tenant's intended utilization pattern.
    pub fn pattern(&self) -> UtilizationPattern {
        self.util.intended_pattern()
    }
}

impl DatacenterProfile {
    /// The profile of datacenter `id` (0–9).
    ///
    /// # Panics
    ///
    /// Panics if `id > 9`.
    pub fn dc(id: usize) -> Self {
        assert!(id <= 9, "datacenter ids are 0-9, got {id}");
        // Per-DC knobs. Ordering facts from the paper:
        //  - variation: DC-0, DC-2 lowest; DC-1, DC-4 highest;
        //  - reimage rates: three DCs substantially lower (0, 5, 7);
        //  - sizes vary from a few hundred to a few thousand tenants.
        let n_tenants = [700, 450, 600, 550, 500, 350, 800, 400, 650, 520][id];
        let variation = [0.15, 0.95, 0.20, 0.55, 0.90, 0.45, 0.60, 0.40, 0.50, 0.65][id];
        let reimage_median = [0.03, 0.15, 0.11, 0.20, 0.14, 0.025, 0.12, 0.04, 0.15, 0.13][id];
        let periodic_frac = [0.10, 0.14, 0.09, 0.12, 0.15, 0.11, 0.10, 0.13, 0.12, 0.12][id];
        let unpred_frac = [0.20, 0.30, 0.22, 0.26, 0.32, 0.24, 0.22, 0.21, 0.25, 0.26][id];
        DatacenterProfile {
            id,
            n_tenants,
            tenant_mix: PatternMix {
                periodic: periodic_frac,
                constant: 1.0 - periodic_frac - unpred_frac,
                unpredictable: unpred_frac,
            },
            // Sized so periodic tenants hold ~40% of servers.
            servers_per_tenant: [90.0, 15.0, 25.0],
            variation,
            reimage_median,
            reimage_sigma: 1.0,
            redeploy_rate: 0.20,
            rate_drift_sigma: 0.15,
        }
    }

    /// All ten datacenter profiles.
    pub fn all() -> Vec<DatacenterProfile> {
        (0..10).map(DatacenterProfile::dc).collect()
    }

    /// The datacenter's display name (`"DC-3"`).
    pub fn name(&self) -> String {
        format!("DC-{}", self.id)
    }

    /// Returns a copy with the tenant count multiplied by `factor`
    /// (minimum 3 tenants), for fast tests and scaled-down simulations.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.n_tenants = ((self.n_tenants as f64 * factor).round() as usize).max(3);
        self
    }

    /// Expected total number of servers under this profile.
    pub fn expected_servers(&self) -> usize {
        self.tenant_mix.validate();
        let per_tenant = self.tenant_mix.periodic * self.servers_per_tenant[0]
            + self.tenant_mix.constant * self.servers_per_tenant[1]
            + self.tenant_mix.unpredictable * self.servers_per_tenant[2];
        (self.n_tenants as f64 * per_tenant).round() as usize
    }

    /// Samples the concrete tenants of this datacenter, deterministically
    /// from `seed`.
    pub fn sample_tenants(&self, seed: u64) -> Vec<TenantSpec> {
        self.tenant_mix.validate();
        let mut rng = indexed_rng(seed, "dc-tenants", self.id as u64);
        let mut tenants = Vec::with_capacity(self.n_tenants);

        // Assign patterns by exact quota (largest remainder) so small
        // scaled-down datacenters keep the intended mix.
        let quotas = pattern_quotas(self.n_tenants, &self.tenant_mix);
        let mut patterns = Vec::with_capacity(self.n_tenants);
        for (pattern, quota) in [
            (UtilizationPattern::Periodic, quotas[0]),
            (UtilizationPattern::Constant, quotas[1]),
            (UtilizationPattern::Unpredictable, quotas[2]),
        ] {
            patterns.extend(std::iter::repeat_n(pattern, quota));
        }
        dist::shuffle(&mut rng, &mut patterns);

        // Environments hold 1-4 tenants (machine functions) each.
        let mut environment = 0usize;
        let mut env_left = 0usize;

        for (i, &pattern) in patterns.iter().enumerate() {
            if env_left == 0 {
                environment += 1;
                env_left = rng.random_range(1..=4);
            }
            env_left -= 1;

            let mean_servers = match pattern {
                UtilizationPattern::Periodic => self.servers_per_tenant[0],
                UtilizationPattern::Constant => self.servers_per_tenant[1],
                UtilizationPattern::Unpredictable => self.servers_per_tenant[2],
            };
            let n_servers = dist::log_normal_mean_std(&mut rng, mean_servers, mean_servers * 0.6)
                .round()
                .max(2.0) as usize;

            let util = self.sample_util(&mut rng, pattern);
            let reimage = self.sample_reimage(&mut rng);

            tenants.push(TenantSpec {
                name: format!("dc{}-t{:03}", self.id, i),
                environment,
                n_servers,
                util,
                reimage,
            });
        }
        tenants
    }

    fn sample_util<R: Rng + ?Sized>(&self, rng: &mut R, pattern: UtilizationPattern) -> UtilGen {
        let v = self.variation;
        match pattern {
            // Periodic tenants are *predictable*: their variation is the
            // diurnal cycle itself, with only small, rare spikes. This is
            // the premise behind Algorithm 1's rankings — history tells
            // the scheduler what a periodic tenant will do.
            UtilizationPattern::Periodic => UtilGen::Periodic(PeriodicGen {
                base: dist::uniform(rng, 0.25, 0.45),
                amplitude: dist::uniform(rng, 0.10, 0.15 + 0.20 * v),
                phase: dist::uniform(rng, 0.0, 720.0),
                weekend_factor: dist::uniform(rng, 0.5, 0.9),
                noise_std: 0.01 + 0.01 * v,
                spikes_per_day: dist::uniform(rng, 0.0, 0.5 * v),
                spike_magnitude: dist::uniform(rng, 0.03, 0.08),
            }),
            UtilizationPattern::Constant => UtilGen::Constant(ConstantGen {
                level: dist::uniform(rng, 0.15, 0.55),
                noise_std: dist::uniform(rng, 0.002, 0.008),
            }),
            UtilizationPattern::Unpredictable => UtilGen::Unpredictable(UnpredictableGen {
                mean: dist::uniform(rng, 0.15, 0.50),
                reversion: dist::uniform(rng, 0.002, 0.008),
                volatility: 0.008 + 0.015 * v,
                jumps_per_day: dist::uniform(rng, 0.5, 1.0 + 3.0 * v),
                jump_max: 0.15 + 0.25 * v,
            }),
        }
    }

    fn sample_reimage<R: Rng + ?Sized>(&self, rng: &mut R) -> TenantReimageModel {
        // Log-normal around the DC median gives the Figure 4/5 tails.
        let base_rate = self.reimage_median * dist::log_normal(rng, 0.0, self.reimage_sigma);
        let base_rate = base_rate.min(4.0);
        // Tenants that reimage more also redeploy more (same engineers).
        let redeploys = self.redeploy_rate
            * (base_rate / self.reimage_median).min(3.0)
            * dist::uniform(rng, 0.5, 1.5);
        TenantReimageModel {
            base_rate,
            redeploys_per_month: redeploys,
            redeploy_fraction: (0.3, 0.9),
            rate_drift_sigma: self.rate_drift_sigma,
        }
    }

    /// The 21-tenant, 102-server scale-down of DC-9 used on the paper's
    /// experimental testbed (§6.1: 13 periodic, 3 constant, and 5
    /// unpredictable primary tenants).
    pub fn testbed_dc9(seed: u64) -> Vec<TenantSpec> {
        let profile = DatacenterProfile::dc(9);
        let mut rng = indexed_rng(seed, "testbed-dc9", 9);
        let mut tenants = Vec::with_capacity(21);
        let plan: [(UtilizationPattern, usize, usize); 3] = [
            (UtilizationPattern::Periodic, 13, 5),     // 65 servers
            (UtilizationPattern::Constant, 3, 5),      // 15 servers
            (UtilizationPattern::Unpredictable, 5, 0), // 22 servers, sized below
        ];
        let unpred_sizes = [4usize, 4, 4, 5, 5];
        let mut idx = 0usize;
        for (pattern, count, servers) in plan {
            #[allow(clippy::needless_range_loop)] // `j` indexes only the unpredictable row
            for j in 0..count {
                let n_servers = if servers > 0 {
                    servers
                } else {
                    unpred_sizes[j]
                };
                let util = profile.sample_util(&mut rng, pattern);
                let reimage = profile.sample_reimage(&mut rng);
                tenants.push(TenantSpec {
                    name: format!("testbed-t{idx:02}"),
                    environment: idx, // scale-down: one tenant per environment
                    n_servers,
                    util,
                    reimage,
                });
                idx += 1;
            }
        }
        debug_assert_eq!(tenants.iter().map(|t| t.n_servers).sum::<usize>(), 102);
        tenants
    }
}

fn pattern_quotas(n: usize, mix: &PatternMix) -> [usize; 3] {
    let raw = [
        n as f64 * mix.periodic,
        n as f64 * mix.constant,
        n as f64 * mix.unpredictable,
    ];
    let mut quotas = [raw[0] as usize, raw[1] as usize, raw[2] as usize];
    let mut remainder: Vec<(usize, f64)> = raw
        .iter()
        .enumerate()
        .map(|(i, &r)| (i, r - r.floor()))
        .collect();
    remainder.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN quota"));
    let mut assigned: usize = quotas.iter().sum();
    let mut i = 0;
    while assigned < n {
        quotas[remainder[i % 3].0] += 1;
        assigned += 1;
        i += 1;
    }
    quotas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_profiles_exist() {
        let all = DatacenterProfile::all();
        assert_eq!(all.len(), 10);
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.id, i);
            assert_eq!(p.name(), format!("DC-{i}"));
            p.tenant_mix.validate();
        }
    }

    #[test]
    fn variation_ordering_matches_paper() {
        // DC-0 and DC-2 lowest variation; DC-1 and DC-4 highest.
        let v: Vec<f64> = DatacenterProfile::all()
            .iter()
            .map(|p| p.variation)
            .collect();
        for i in 0..10 {
            if i != 0 && i != 2 {
                assert!(v[i] > v[0].max(v[2]), "DC-{i} should vary more than DC-0/2");
            }
            if i != 1 && i != 4 {
                assert!(v[i] < v[1].min(v[4]), "DC-{i} should vary less than DC-1/4");
            }
        }
    }

    #[test]
    fn three_dcs_have_low_reimage_rates() {
        let rates: Vec<f64> = DatacenterProfile::all()
            .iter()
            .map(|p| p.reimage_median)
            .collect();
        let low = rates.iter().filter(|&&r| r < 0.1).count();
        assert_eq!(low, 3, "paper: three DCs show substantially lower rates");
    }

    #[test]
    fn sampled_tenants_match_mix() {
        let p = DatacenterProfile::dc(9);
        let tenants = p.sample_tenants(42);
        assert_eq!(tenants.len(), p.n_tenants);
        let count = |pat: UtilizationPattern| {
            tenants.iter().filter(|t| t.pattern() == pat).count() as f64 / tenants.len() as f64
        };
        assert!((count(UtilizationPattern::Periodic) - p.tenant_mix.periodic).abs() < 0.01);
        assert!((count(UtilizationPattern::Constant) - p.tenant_mix.constant).abs() < 0.01);
    }

    #[test]
    fn periodic_tenants_hold_about_forty_percent_of_servers() {
        let p = DatacenterProfile::dc(6);
        let tenants = p.sample_tenants(7);
        let total: usize = tenants.iter().map(|t| t.n_servers).sum();
        let periodic: usize = tenants
            .iter()
            .filter(|t| t.pattern() == UtilizationPattern::Periodic)
            .map(|t| t.n_servers)
            .sum();
        let frac = periodic as f64 / total as f64;
        assert!(
            (0.28..=0.52).contains(&frac),
            "periodic server share {frac} outside Figure 3 band"
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let p = DatacenterProfile::dc(3);
        assert_eq!(p.sample_tenants(5), p.sample_tenants(5));
        assert_ne!(p.sample_tenants(5), p.sample_tenants(6));
    }

    #[test]
    fn scaled_shrinks_tenant_count() {
        let p = DatacenterProfile::dc(0).scaled(0.01);
        assert_eq!(p.n_tenants, 7);
        let tiny = DatacenterProfile::dc(0).scaled(1e-9);
        assert_eq!(tiny.n_tenants, 3);
    }

    #[test]
    fn environments_group_small_tenant_sets() {
        let tenants = DatacenterProfile::dc(2).sample_tenants(11);
        let mut sizes = std::collections::HashMap::new();
        for t in &tenants {
            *sizes.entry(t.environment).or_insert(0usize) += 1;
        }
        assert!(sizes.values().all(|&s| (1..=4).contains(&s)));
        assert!(sizes.len() > tenants.len() / 4);
    }

    #[test]
    fn testbed_is_102_servers_21_tenants() {
        let tenants = DatacenterProfile::testbed_dc9(42);
        assert_eq!(tenants.len(), 21);
        assert_eq!(tenants.iter().map(|t| t.n_servers).sum::<usize>(), 102);
        let count = |pat: UtilizationPattern| tenants.iter().filter(|t| t.pattern() == pat).count();
        assert_eq!(count(UtilizationPattern::Periodic), 13);
        assert_eq!(count(UtilizationPattern::Constant), 3);
        assert_eq!(count(UtilizationPattern::Unpredictable), 5);
    }

    #[test]
    fn expected_servers_is_plausible() {
        let p = DatacenterProfile::dc(6);
        let expected = p.expected_servers();
        let actual: usize = p.sample_tenants(1).iter().map(|t| t.n_servers).sum();
        let ratio = actual as f64 / expected as f64;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn quotas_sum_to_n() {
        let mix = PatternMix {
            periodic: 0.1,
            constant: 0.65,
            unpredictable: 0.25,
        };
        for n in [3usize, 7, 10, 99, 1000] {
            let q = pattern_quotas(n, &mix);
            assert_eq!(q.iter().sum::<usize>(), n, "n={n}");
        }
    }
}
