//! The latency-critical primary-tenant service model.
//!
//! The paper's testbed runs "a copy of the Apache Lucene search engine"
//! on every server, "and uses more threads (up to 12) with higher load"
//! (§6.1). Figures 10 and 12 plot the fleet's per-minute average of
//! per-server 99th-percentile response times under each harvesting
//! system.
//!
//! We cannot run Lucene on Microsoft's testbed, so this crate provides:
//!
//! * [`latency`] — a calibrated analytic tail-latency model: a server's
//!   p99 as a function of its primary load and the cores harvested away
//!   from it (M/M/c-flavoured congestion term, calibrated to the paper's
//!   369–406 ms no-harvesting band);
//! * [`lucene`] — a discrete-event queueing simulator of a 12-thread
//!   search server, used to validate that the analytic model's shape
//!   (knee position, saturation behaviour) matches an actual queue.

pub mod latency;
pub mod lucene;

pub use latency::LatencyModel;
pub use lucene::SearchServer;
