//! Offline stand-in for the subset of [`criterion`] the workspace uses.
//!
//! Benches compile and run without a crates.io mirror: each
//! `bench_function` measures wall-clock time over a small, time-bounded
//! number of iterations and prints `name ... median time`. There is no
//! statistical analysis, HTML report, or outlier rejection — the goal is
//! that `cargo bench` gives usable relative numbers and that bench
//! targets stay compiling (they are part of tier-1 builds).

use std::time::{Duration, Instant};

/// Target measurement budget per benchmark.
const BUDGET: Duration = Duration::from_millis(300);

/// Hard cap on measured iterations per benchmark.
const MAX_ITERS: u64 = 50;

/// How batched inputs are sized (API-compatible shell; the stand-in
/// re-runs setup per iteration regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Per-iteration timing driver handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, repeating it until the time budget or iteration
    /// cap is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS && (iters == 0 || started.elapsed() < BUDGET) {
            let t = Instant::now();
            let out = routine();
            self.samples.push(t.elapsed());
            drop(out);
            iters += 1;
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS && (iters == 0 || started.elapsed() < BUDGET) {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            self.samples.push(t.elapsed());
            drop(out);
            iters += 1;
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort();
        s.get(s.len() / 2).copied().unwrap_or_default()
    }
}

fn report(name: &str, b: &Bencher) {
    println!(
        "bench {name:<48} {:>12.3?} median of {} iters",
        b.median(),
        b.samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the
    /// stand-in is time-budgeted instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Sets the default sample count (accepted for API compatibility).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Sets the default measurement time (accepted for API compatibility).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&id.to_string(), &b);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
