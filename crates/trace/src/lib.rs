//! Synthetic primary-tenant histories: utilization traces, disk-reimage
//! logs, and datacenter profiles.
//!
//! The paper characterizes ten production datacenters (DC-0 … DC-9) from
//! AutoPilot telemetry: CPU utilization sampled every two minutes (§3.2)
//! and three years of per-server disk-reimage records (§3.3). That data is
//! proprietary, so this crate generates synthetic equivalents tuned to
//! every distributional fact the paper reports:
//!
//! * three utilization patterns — *periodic* (diurnal user-facing
//!   services), *constant* (crawlers, scrubbers), *unpredictable*
//!   (development/testing) — with constant tenants the majority of
//!   tenants (Figure 2) but periodic tenants ≈ 40% of servers (Figure 3);
//! * per-tenant reimage rates with ≥ 90% of servers at ≤ 1 reimage/month
//!   and a heavy 10–20% tail (Figures 4–5), *correlated* mass-reimage
//!   events when tenants redeploy, and month-over-month rate drift that
//!   keeps tenants in the same relative frequency group (Figure 6);
//! * the linear and nth-root utilization scalings of §6.1 used to sweep
//!   average utilization in the simulations.
//!
//! Everything is deterministic given a seed.

pub mod datacenter;
pub mod gen;
pub mod reimage;
pub mod scaling;
pub mod timeseries;

pub use datacenter::{DatacenterProfile, TenantSpec};
pub use reimage::{ReimageEvent, ReimageKind};
pub use timeseries::TimeSeries;

/// Two-minute samples per day (the paper's AutoPilot sampling rate).
pub const SAMPLES_PER_DAY: usize = 720;

/// Days in the canonical characterization month.
pub const DAYS_PER_MONTH: usize = 30;

/// Two-minute samples in the canonical month.
pub const SAMPLES_PER_MONTH: usize = SAMPLES_PER_DAY * DAYS_PER_MONTH;

/// The sampling interval (two minutes), as a simulation duration.
pub const SAMPLE_INTERVAL: harvest_sim::SimDuration = harvest_sim::SimDuration::from_mins(2);
