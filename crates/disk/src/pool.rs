//! Event-driven shared-disk simulation with fair sharing and
//! primary-tenant contention.
//!
//! A [`DiskPool`] models one disk per server, each with independent
//! read and write channels. Secondary (harvested) streams on a channel
//! split its bandwidth equally — the max-min fair allocation for
//! single-resource flows — after the primary tenant's demand and the
//! [`crate::ThrottlePolicy`] have taken their cut. Whenever a channel's
//! stream set or its primary demand changes, the channel's rates are
//! re-divided and every affected stream's completion re-predicted;
//! stale completion events are recognized by version stamps exactly as
//! in `harvest_net::fabric`.
//!
//! Primary I/O is not simulated as individual operations: it is a
//! bandwidth reservation derived from the utilization playback through
//! [`crate::PrimaryIoModel`] (see [`DiskPool::set_primary_util`]), which
//! is how the paper's isolation manager perceives it too. A fully
//! throttled channel (zero secondary bandwidth) parks its streams on a
//! far-future completion; the re-share triggered when the primary's
//! demand drops rescues them — this is the mechanism behind the §7
//! lesson-2 heartbeat incident.
//!
//! # Cost model
//!
//! Sharing runs as a three-tier scheme, fastest tier first:
//!
//! * **Analytic** (the default, [`SharingMode::Auto`]) — each occupied
//!   channel is served by a [`FairShare`] engine: a virtual fair-work
//!   clock plus a completion-ordered heap, so a stream start, finish,
//!   or capacity change costs O(log n) in the channel's occupancy
//!   instead of re-predicting every stream. Disk channels are
//!   single-bottleneck *by construction* (every stream saturates
//!   exactly one channel), so unlike `harvest_net::fabric` no
//!   classifier is needed and the engine is adopted wholesale; fault
//!   capacity changes (brown-outs, throttle transitions) stay on the
//!   analytic path via [`FairShare::set_capacity`], and a fully parked
//!   channel keeps one far-future placeholder event (the filling
//!   tier's parked-completion idiom) until the restoring re-share
//!   rescues it. Per-stream rates are the very `capacity / n` division
//!   the filling tier performs, so rates agree **bitwise** with the
//!   tiers below; completion times re-associate the float arithmetic
//!   (see the `harvest_sim::fairshare` docs), which can drift by ulps —
//!   integer-millisecond time virtually never surfaces it, and the
//!   oracle tests pin rates bitwise and completion schedules at full
//!   `SimTime` resolution.
//! * **Channel filling** ([`SharingMode::Filling`]) — the reference
//!   equal-split recompute, linear in the touched channel's occupancy:
//!   only streams whose rate actually changes are advanced (lazily,
//!   from their own `last_update` stamp) and re-predicted; a superseded
//!   completion event is *cancelled* in the queue rather than left to
//!   fire stale, so the event heap stays O(active + scheduled) instead
//!   of O(re-shares × streams). Switching modes mid-run migrates the
//!   engine state back to per-stream predictions exactly.
//! * **Global reference** ([`ReshareScope::Global`]) — re-shares every
//!   channel on every event, and implies the filling tier (the global
//!   reference *is* progressive filling). Bitwise identical to
//!   channel-scoped filling (channels are independent resources),
//!   pinned by the oracle property tests.
//!
//! Everything is exact integer time plus deterministic `f64`
//! arithmetic over deterministically ordered collections, so a replay
//! is bit-identical for identical inputs.
//!
//! The pool also serves change-driven callers: [`DiskPool::active_servers`]
//! iterates (ascending) exactly the disks whose rates a primary-demand
//! change can currently move, and [`DiskPool::set_primary_util`]
//! early-outs a bitwise-unchanged utilization before the demand model
//! runs — so a utilization replay over a mostly-idle fleet costs
//! O(disks with in-flight streams) per tick, not O(fleet).

use std::collections::{BTreeMap, BTreeSet};

use harvest_cluster::ServerId;
use harvest_signal::classify::UtilizationPattern;
use harvest_sim::engine::{EventKey, EventQueue};
use harvest_sim::fairshare::{FairShare, SharingMode};
use harvest_sim::obs::{CounterId, GaugeId, HistogramId, Recorder, StateTrackId, TrackId};
use harvest_sim::{SimDuration, SimTime};

use crate::config::DiskConfig;

/// How much of the pool a re-share recomputes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReshareScope {
    /// Re-share only the channel the event landed on (the default).
    #[default]
    Channel,
    /// Re-share every channel on every event — the reference global
    /// recompute. Bitwise identical to `Channel` (channels share no
    /// state); kept for validation and benchmarking.
    Global,
}

/// Identifies a stream within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

/// Which channel of a disk an operation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IoDir {
    /// The read channel.
    Read,
    /// The write channel.
    Write,
}

/// A finished stream, as reported by [`DiskPool::pump`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamCompletion {
    /// The stream that finished.
    pub stream: StreamId,
    /// When its last byte was serviced.
    pub at: SimTime,
    /// The caller's tag, echoed back.
    pub tag: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// When the stream entered the pool.
    pub started: SimTime,
    /// The disk it ran on.
    pub server: ServerId,
    /// The channel it used.
    pub dir: IoDir,
}

/// One in-flight secondary I/O stream.
///
/// While the stream's channel is served by the analytic tier, the
/// channel's [`FairShare`] engine is the source of truth: `remaining`,
/// `rate` and `last_update` are stale (settled at promotion time),
/// `version` is frozen, and `pending` is `None` — the group holds the
/// channel's single completion event instead. Migrating back to the
/// filling tier rematerializes all of them exactly.
#[derive(Debug, Clone)]
struct Stream {
    tag: u64,
    bytes: u64,
    /// Bytes left as of `last_update` (plus the folded-in seek bytes).
    remaining: f64,
    /// Current allocation in bytes/s.
    rate: f64,
    /// Bumped whenever the rate changes; completion events carry the
    /// version they were predicted under.
    version: u64,
    /// When `remaining` was last advanced. Streams advance lazily —
    /// only at rate changes.
    last_update: SimTime,
    /// The stream's live completion event, cancelled when superseded.
    pending: Option<EventKey>,
    started: SimTime,
    chan: u32,
}

/// A stream waiting for its scheduled start time.
#[derive(Debug, Clone)]
struct PendingStream {
    server: ServerId,
    dir: IoDir,
    bytes: u64,
    tag: u64,
}

#[derive(Debug)]
enum DiskEvent {
    Start(StreamId),
    Complete(StreamId, u64),
}

/// One direction of one disk: its active streams.
#[derive(Debug, Clone, Default)]
struct Channel {
    /// Active stream ids in start order (deterministic iteration).
    streams: Vec<u64>,
}

/// Aggregate pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskStats {
    /// Streams completed.
    pub completed: u64,
    /// Bytes moved by completed streams.
    pub bytes_moved: u64,
    /// High-water mark of concurrently active streams, pool-wide.
    pub peak_active: usize,
    /// Channel re-share passes run.
    pub reshares: u64,
    /// Superseded completion events dropped — cancelled in the queue
    /// when a re-share re-predicted the stream, or (defensively)
    /// recognized stale by version at fire time, plus cancels that
    /// found nothing to cancel (fault-driven mass cancellation).
    pub stale_events_dropped: u64,
    /// Streams aborted by fault injection (disk death or a caller
    /// tearing down a doomed transfer) before completion.
    pub streams_aborted: u64,
    /// High-water mark of the event heap (including not-yet-collected
    /// tombstones).
    pub peak_queue_len: usize,
    /// Channels promoted onto the analytic sharing tier (counting
    /// re-promotions after a channel drains and refills).
    pub analytic_channels: u64,
    /// Completions served by the analytic engine in O(log n).
    pub analytic_events: u64,
}

/// How far in the future a starved stream's completion is parked by
/// the filling tier; a later re-share rescues it. (The analytic tier
/// parks by scheduling nothing at all — same rescue.)
const PARKED: SimDuration = SimDuration::from_days(365_000);

/// One channel's analytic sharing state: the [`FairShare`] engine plus
/// the channel's single live completion event (for the engine's next
/// finisher, carrying that stream's frozen version). `event` is `None`
/// while the channel is fully parked (zero secondary capacity).
#[derive(Debug)]
struct ChanGroup {
    engine: FairShare,
    event: Option<EventKey>,
}

/// The shared-disk simulator. See the module docs.
#[derive(Debug)]
pub struct DiskPool {
    config: DiskConfig,
    /// Per-server tenant class, for the util→demand mapping.
    patterns: Vec<UtilizationPattern>,
    /// Per-server primary demand as a fraction of channel capacity.
    primary_fraction: Vec<f64>,
    /// Last utilization each server's demand was derived from (NaN
    /// until the first update), so a bitwise-unchanged utilization
    /// replay costs one compare instead of a demand-model evaluation.
    primary_util: Vec<f64>,
    /// Fault state: a brown-out multiplier on each disk's secondary
    /// bandwidth (1.0 = healthy; 0.0 parks every stream). Multiplying
    /// by 1.0 is bitwise-exact, so fault-free runs are unaffected.
    degrade: Vec<f64>,
    /// Dead cancels already folded into `stats.stale_events_dropped`.
    dead_cancels_seen: u64,
    /// Active secondary streams per server, across both channels.
    streams_per_server: Vec<u32>,
    /// Servers with at least one active stream, ascending — the set a
    /// change-driven primary replay needs to touch.
    active_servers: BTreeSet<u32>,
    /// `2 * server + dir` — read and write channels of every disk.
    channels: Vec<Channel>,
    queue: EventQueue<DiskEvent>,
    pending: BTreeMap<u64, PendingStream>,
    active: BTreeMap<u64, Stream>,
    scope: ReshareScope,
    mode: SharingMode,
    /// Analytic engine per occupied channel — populated only while an
    /// analytic [`SharingMode`] is in force with channel scope.
    groups: BTreeMap<u32, ChanGroup>,
    /// High-water mark of simulation time the pool has been driven to;
    /// the "now" used by control-plane switches that take none.
    clock: SimTime,
    next_id: u64,
    stats: DiskStats,
    completions: Vec<StreamCompletion>,
    /// Observability sink ([`Recorder::off`] unless a caller attaches
    /// one); `obs` holds the registered ids iff recording is on, so a
    /// hot path pays exactly one `Option` check when off.
    rec: Recorder,
    obs: Option<DiskObs>,
}

/// Metric ids registered on [`DiskPool::set_recorder`].
#[derive(Debug)]
struct DiskObs {
    track: TrackId,
    stream_secs: HistogramId,
    reshare_streams: HistogramId,
    queue_len: GaugeId,
    tombstones: GaugeId,
    parks: CounterId,
    /// Wait-state track `disk/stream`: a stream is `running` from
    /// start to completion except while fully throttled, when it sits
    /// in `throttle_parked` until a re-share rescues it.
    states: StateTrackId,
}

impl DiskPool {
    /// A pool of `n_disks` identical disks with all-constant tenant
    /// classes (useful for benches and single-disk replays).
    ///
    /// # Panics
    ///
    /// Panics if `n_disks` is zero or the config is invalid.
    pub fn new(n_disks: usize, config: &DiskConfig) -> Self {
        Self::with_patterns(vec![UtilizationPattern::Constant; n_disks], config)
    }

    /// One disk per server of `dc`, each tagged with its primary
    /// tenant's utilization pattern.
    pub fn from_datacenter(dc: &harvest_cluster::Datacenter, config: &DiskConfig) -> Self {
        Self::with_patterns(
            dc.servers
                .iter()
                .map(|s| dc.tenant(s.tenant).pattern)
                .collect(),
            config,
        )
    }

    /// A pool with an explicit per-server tenant class.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty or the config is invalid.
    pub fn with_patterns(patterns: Vec<UtilizationPattern>, config: &DiskConfig) -> Self {
        config.validate();
        assert!(!patterns.is_empty(), "cannot build a pool of zero disks");
        let n = patterns.len();
        DiskPool {
            config: *config,
            patterns,
            primary_fraction: vec![0.0; n],
            primary_util: vec![f64::NAN; n],
            degrade: vec![1.0; n],
            dead_cancels_seen: 0,
            streams_per_server: vec![0; n],
            active_servers: BTreeSet::new(),
            channels: vec![Channel::default(); 2 * n],
            queue: EventQueue::new(),
            pending: BTreeMap::new(),
            active: BTreeMap::new(),
            scope: ReshareScope::Channel,
            mode: SharingMode::default(),
            groups: BTreeMap::new(),
            clock: SimTime::ZERO,
            next_id: 0,
            stats: DiskStats::default(),
            completions: Vec::new(),
            rec: Recorder::off(),
            obs: None,
        }
    }

    /// Attaches an observability recorder (typically a
    /// [`Recorder::child`] of the caller's). Recording never changes a
    /// trajectory: stream lifetimes land as spans on the `disk` track,
    /// durations in `disk/stream_secs`, per-re-share channel occupancy
    /// in `disk/reshare_streams`, throttle parks as `disk/parks` (with
    /// an instant event per park), and event-heap depth/tombstone
    /// gauges sampled at each re-share. Wait states land on the
    /// `disk/stream` state track: `running` from start to completion,
    /// interrupted by `throttle_parked` while fully throttled.
    pub fn set_recorder(&mut self, mut rec: Recorder) {
        self.obs = rec.is_on().then(|| DiskObs {
            track: rec.track("disk"),
            stream_secs: rec.histogram("disk/stream_secs"),
            reshare_streams: rec.histogram("disk/reshare_streams"),
            queue_len: rec.gauge("disk/queue_len"),
            tombstones: rec.gauge("disk/queue_tombstones"),
            parks: rec.counter("disk/parks"),
            states: rec.state_track("disk/stream"),
        });
        self.rec = rec;
    }

    /// Detaches and returns the recorder, mirroring the final
    /// [`DiskStats`] into `disk/*` counters first so the metrics report
    /// carries the same numbers as the struct.
    pub fn take_recorder(&mut self) -> Recorder {
        if self.rec.is_on() {
            let s = self.stats;
            for (name, v) in [
                ("disk/completed", s.completed),
                ("disk/bytes_moved", s.bytes_moved),
                ("disk/peak_active", s.peak_active as u64),
                ("disk/reshares", s.reshares),
                ("disk/stale_events_dropped", s.stale_events_dropped),
                ("disk/streams_aborted", s.streams_aborted),
                ("disk/peak_queue_len", s.peak_queue_len as u64),
                ("disk/analytic_channels", s.analytic_channels),
                ("disk/analytic_events", s.analytic_events),
            ] {
                let id = self.rec.counter(name);
                self.rec.counter_set(id, v);
            }
        }
        self.obs = None;
        std::mem::take(&mut self.rec)
    }

    /// The re-share scope in force.
    pub fn reshare_scope(&self) -> ReshareScope {
        self.scope
    }

    /// Switches the re-share scope. Safe at any point — the filling
    /// tiers produce bitwise-identical trajectories and the analytic
    /// tier matches them exactly — but `Global` exists for validation,
    /// not production use. `Global` implies the filling reference, so
    /// any analytic channel state is migrated back to per-stream
    /// predictions first.
    pub fn set_reshare_scope(&mut self, scope: ReshareScope) {
        if scope == self.scope {
            return;
        }
        self.scope = scope;
        if scope == ReshareScope::Global {
            self.dissolve_all();
        }
    }

    /// The sharing mode in force.
    pub fn sharing_mode(&self) -> SharingMode {
        self.mode
    }

    /// Switches the sharing engine. Leaving the analytic tier migrates
    /// every channel's engine state back to per-stream filling
    /// predictions exactly; entering it promotes channels lazily, each
    /// on its next event.
    pub fn set_sharing_mode(&mut self, mode: SharingMode) {
        if mode == self.mode {
            return;
        }
        self.mode = mode;
        if !mode.analytic_allowed() {
            self.dissolve_all();
        }
    }

    /// Whether the analytic tier may serve channels right now.
    fn analytic_on(&self) -> bool {
        self.mode.analytic_allowed() && self.scope == ReshareScope::Channel
    }

    /// Number of disks.
    pub fn n_disks(&self) -> usize {
        self.patterns.len()
    }

    /// The configuration the pool was built with.
    pub fn config(&self) -> &DiskConfig {
        &self.config
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Streams currently moving bytes.
    pub fn n_active(&self) -> usize {
        self.active.len()
    }

    /// Streams scheduled but not yet started.
    pub fn n_pending(&self) -> usize {
        self.pending.len()
    }

    /// The current rate of a stream in bytes/s, if it is active.
    pub fn stream_rate(&self, stream: StreamId) -> Option<f64> {
        self.active.get(&stream.0).map(|s| self.rate_of(s))
    }

    /// A stream's live allocation, whichever tier serves its channel.
    fn rate_of(&self, s: &Stream) -> f64 {
        match self.groups.get(&s.chan) {
            Some(g) => g.engine.rate(),
            None => s.rate,
        }
    }

    /// The re-prediction version of an active stream — bumped whenever
    /// a filling re-share changes its rate. Streams on untouched
    /// channels keep their version (and their scheduled completion
    /// event) across unrelated starts/finishes; tests pin that. While
    /// a channel is served by the analytic tier its streams' versions
    /// are *frozen* (the group's single event carries the next
    /// finisher's frozen version), so version-probing oracles pin
    /// [`SharingMode::Filling`].
    pub fn stream_version(&self, stream: StreamId) -> Option<u64> {
        self.active.get(&stream.0).map(|s| s.version)
    }

    /// Ids of the currently active streams, ascending.
    pub fn active_stream_ids(&self) -> Vec<StreamId> {
        self.active.keys().map(|&id| StreamId(id)).collect()
    }

    /// The disk and channel an active stream runs on.
    pub fn stream_channel(&self, stream: StreamId) -> Option<(ServerId, IoDir)> {
        self.active.get(&stream.0).map(|s| unchan(s.chan))
    }

    /// A channel's raw capacity in bytes/s.
    pub fn capacity(&self, dir: IoDir) -> f64 {
        match dir {
            IoDir::Read => self.config.read_bytes_per_sec(),
            IoDir::Write => self.config.write_bytes_per_sec(),
        }
    }

    /// The bandwidth currently available to secondary streams on a
    /// channel, after the primary's demand, the throttle policy, and
    /// any fault-injected brown-out factor.
    pub fn secondary_capacity(&self, server: ServerId, dir: IoDir) -> f64 {
        let share = self
            .config
            .throttle
            .secondary_fraction(self.primary_fraction[server.0 as usize]);
        self.capacity(dir) * share * self.degrade[server.0 as usize]
    }

    /// Sum of active secondary stream rates on a channel, in bytes/s.
    pub fn channel_load(&self, server: ServerId, dir: IoDir) -> f64 {
        self.channels[chan(server, dir) as usize]
            .streams
            .iter()
            .map(|id| self.rate_of(&self.active[id]))
            .sum()
    }

    /// Active secondary streams on a channel.
    pub fn channel_streams(&self, server: ServerId, dir: IoDir) -> usize {
        self.channels[chan(server, dir) as usize].streams.len()
    }

    /// The primary's current demand fraction on a server's disk.
    pub fn primary_fraction(&self, server: ServerId) -> f64 {
        self.primary_fraction[server.0 as usize]
    }

    /// Whether the isolation manager is currently suppressing secondary
    /// I/O on a server's disk below its fair share.
    pub fn is_throttled(&self, server: ServerId) -> bool {
        self.config
            .throttle
            .is_throttling(self.primary_fraction[server.0 as usize])
    }

    /// Updates a server's primary CPU utilization at `now`, mapping it
    /// to disk demand through the configured [`crate::PrimaryIoModel`]
    /// and re-sharing the disk's channels if the demand changed. A
    /// bitwise-unchanged utilization early-outs before the demand model
    /// runs (the NaN sentinel makes the very first update always
    /// apply), so replaying an idle sample grid costs one compare per
    /// touched server.
    ///
    /// The caller must have pumped the pool to `now` first (the pool
    /// never runs backwards); utilization playback naturally satisfies
    /// this by updating on its sample grid.
    pub fn set_primary_util(&mut self, now: SimTime, server: ServerId, util: f64) {
        self.clock = self.clock.max(now);
        if util == self.primary_util[server.0 as usize] {
            return;
        }
        debug_assert!(
            self.queue.peek_time().map(|t| t >= now).unwrap_or(true),
            "set_primary_util at {now} with unpumped events pending"
        );
        self.primary_util[server.0 as usize] = util;
        let fraction = self
            .config
            .primary
            .demand_fraction(self.patterns[server.0 as usize], util);
        if fraction == self.primary_fraction[server.0 as usize] {
            return;
        }
        self.primary_fraction[server.0 as usize] = fraction;
        for dir in [IoDir::Read, IoDir::Write] {
            self.reshare_scoped(chan(server, dir), now);
        }
    }

    /// Servers with at least one in-flight secondary stream, ascending —
    /// the only disks whose rates a primary-demand change can move
    /// *right now*, and therefore the only disks a change-driven
    /// utilization replay has to visit each tick.
    pub fn active_servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.active_servers.iter().map(|&s| ServerId(s))
    }

    /// Number of disks currently hosting at least one active stream.
    pub fn n_active_servers(&self) -> usize {
        self.active_servers.len()
    }

    /// Schedules a secondary stream of `bytes` on `server`'s `dir`
    /// channel, starting at `at`. Returns the stream's id; its
    /// completion will be reported by a later [`DiskPool::pump`].
    pub fn schedule_stream(
        &mut self,
        at: SimTime,
        server: ServerId,
        dir: IoDir,
        bytes: u64,
        tag: u64,
    ) -> StreamId {
        let id = StreamId(self.next_id);
        self.next_id += 1;
        self.pending.insert(
            id.0,
            PendingStream {
                server,
                dir,
                bytes,
                tag,
            },
        );
        self.queue.push(at, DiskEvent::Start(id));
        self.stats.peak_queue_len = self.stats.peak_queue_len.max(self.queue.len());
        id
    }

    /// The next instant anything can happen in the pool (`None` when it
    /// is idle). Superseded completion events are cancelled in the
    /// queue, so this is exact: the next event is a real stream start
    /// or a live predicted completion.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Advances the pool through every event at or before `until`,
    /// returning the streams that completed, in completion order.
    pub fn pump(&mut self, until: SimTime) -> Vec<StreamCompletion> {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            self.clock = self.clock.max(now);
            match ev {
                DiskEvent::Start(id) => self.on_start(id, now),
                DiskEvent::Complete(id, version) => self.on_complete(id, version, now),
            }
        }
        self.sync_dead_cancels();
        std::mem::take(&mut self.completions)
    }

    /// Folds the queue's dead-cancel count (cancels of already-fired
    /// keys — only fault-driven mass cancellation produces them) into
    /// `stale_events_dropped`. A no-op in fault-free runs.
    fn sync_dead_cancels(&mut self) {
        let d = self.queue.n_dead_cancels();
        self.stats.stale_events_dropped += d - self.dead_cancels_seen;
        self.dead_cancels_seen = d;
    }

    /// The fault-injected brown-out factor on a disk (1.0 = healthy).
    pub fn degrade_factor(&self, server: ServerId) -> f64 {
        self.degrade[server.0 as usize]
    }

    /// Sets a disk's brown-out factor and re-shares both its channels.
    /// `factor` multiplies the secondary bandwidth: 0.7 models a
    /// degraded replacement disk, 0.0 parks every stream until a later
    /// call restores it. Same pumped-to-`now` contract as
    /// [`DiskPool::set_primary_util`].
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn set_degrade(&mut self, now: SimTime, server: ServerId, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "degrade factor must be finite and non-negative, got {factor}"
        );
        self.clock = self.clock.max(now);
        if factor == self.degrade[server.0 as usize] {
            return;
        }
        self.degrade[server.0 as usize] = factor;
        for dir in [IoDir::Read, IoDir::Write] {
            self.reshare_scoped(chan(server, dir), now);
        }
    }

    /// Kills a disk: every stream on either channel — active, or
    /// scheduled but unstarted — aborts. Returns the aborted streams'
    /// tags. The disk itself stays usable for *new* streams (the
    /// replaced-disk model); combine with [`DiskPool::set_degrade`] to
    /// model a dead-until-restored disk.
    pub fn fail_server(&mut self, now: SimTime, server: ServerId) -> Vec<u64> {
        self.clock = self.clock.max(now);
        let mut ids: Vec<u64> = Vec::new();
        for dir in [IoDir::Read, IoDir::Write] {
            ids.extend(&self.channels[chan(server, dir) as usize].streams);
        }
        let mut tags = Vec::new();
        for id in ids {
            if let Some((tag, c)) = self.abort_active(StreamId(id), now) {
                tags.push(tag);
                self.reshare_scoped(c, now);
            }
        }
        let pend: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.server == server)
            .map(|(&id, _)| id)
            .collect();
        for id in pend {
            let p = self.pending.remove(&id).expect("collected above");
            self.stats.streams_aborted += 1;
            tags.push(p.tag);
        }
        self.sync_dead_cancels();
        tags
    }

    /// Aborts every stream (active or scheduled) whose tag is in `tags`
    /// — the fault path for "this transfer's purpose just died".
    /// Returns the number aborted.
    pub fn abort_streams_with_tags(
        &mut self,
        now: SimTime,
        tags: &std::collections::HashSet<u64>,
    ) -> usize {
        self.clock = self.clock.max(now);
        let ids: Vec<u64> = self
            .active
            .iter()
            .filter(|(_, s)| tags.contains(&s.tag))
            .map(|(&id, _)| id)
            .collect();
        let mut n = 0;
        for id in ids {
            if let Some((_, c)) = self.abort_active(StreamId(id), now) {
                n += 1;
                self.reshare_scoped(c, now);
            }
        }
        let pend: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| tags.contains(&p.tag))
            .map(|(&id, _)| id)
            .collect();
        for id in pend {
            self.pending.remove(&id);
            self.stats.streams_aborted += 1;
            n += 1;
        }
        self.sync_dead_cancels();
        n
    }

    /// Removes an active stream without completing it, mirroring
    /// `on_complete`'s bookkeeping (channel list, per-server counts,
    /// pending event, obs state). Returns the stream's tag and channel
    /// so the caller can re-share it.
    fn abort_active(&mut self, id: StreamId, now: SimTime) -> Option<(u64, u32)> {
        let stream = self.active.remove(&id.0)?;
        let c = stream.chan;
        if let Some(g) = self.groups.get_mut(&c) {
            g.engine.remove(now, id.0);
            // The group's one event may predict this very stream; the
            // caller's re-share re-predicts (or retires) the group.
            if let Some(key) = g.event.take() {
                if self.queue.cancel(key) {
                    self.stats.stale_events_dropped += 1;
                }
            }
        }
        let list = &mut self.channels[c as usize].streams;
        let pos = list.iter().position(|&s| s == id.0).expect("on channel");
        list.remove(pos);
        let (server, _) = unchan(c);
        let per_server = &mut self.streams_per_server[server.0 as usize];
        *per_server -= 1;
        if *per_server == 0 {
            self.active_servers.remove(&server.0);
        }
        if let Some(key) = stream.pending {
            if self.queue.cancel(key) {
                self.stats.stale_events_dropped += 1;
            }
        }
        self.stats.streams_aborted += 1;
        if let Some(obs) = &self.obs {
            self.rec.state_exit(obs.states, id.0, now);
        }
        Some((stream.tag, c))
    }

    /// Drains the pool to quiescence, returning all remaining
    /// completions. A fully throttled channel never quiesces on its own
    /// (its streams are parked); drain only a pool whose primary demand
    /// will not strand streams.
    pub fn drain(&mut self) -> Vec<StreamCompletion> {
        self.pump(SimTime::MAX)
    }

    fn on_start(&mut self, id: StreamId, now: SimTime) {
        let Some(p) = self.pending.remove(&id.0) else {
            return; // cancelled
        };
        let c = chan(p.server, p.dir);
        // Fold the per-op seek in as capacity-bytes, the same trick the
        // fabric uses for hop latency: a zero-byte stream still takes
        // one seek.
        let seek_bytes = self.config.seek_ms / 1_000.0 * self.capacity(p.dir);
        self.active.insert(
            id.0,
            Stream {
                tag: p.tag,
                bytes: p.bytes,
                remaining: p.bytes as f64 + seek_bytes,
                rate: 0.0,
                version: 0,
                last_update: now,
                pending: None,
                started: now,
                chan: c,
            },
        );
        self.channels[c as usize].streams.push(id.0);
        let per_server = &mut self.streams_per_server[p.server.0 as usize];
        *per_server += 1;
        if *per_server == 1 {
            self.active_servers.insert(p.server.0);
        }
        self.stats.peak_active = self.stats.peak_active.max(self.active.len());
        if let Some(obs) = &self.obs {
            self.rec.state_enter(obs.states, id.0, "running", now);
        }
        if self.analytic_on() {
            if self.groups.contains_key(&c) {
                self.enroll_one(c, id.0, now);
            } else {
                self.promote_channel(c, now);
            }
        } else {
            self.reshare_scoped(c, now);
        }
    }

    fn on_complete(&mut self, id: StreamId, version: u64, now: SimTime) {
        let stale = match self.active.get(&id.0) {
            Some(s) => s.version != version,
            None => true,
        };
        if stale {
            // Defensive: superseded events are cancelled at re-predict
            // time, so a stale fire indicates a missed cancellation.
            self.stats.stale_events_dropped += 1;
            return;
        }
        let c = self.active[&id.0].chan;
        if self.groups.contains_key(&c) {
            self.on_analytic_complete(id, now);
            return;
        }
        let stream = self.active.remove(&id.0).expect("checked above");
        let list = &mut self.channels[c as usize].streams;
        let pos = list.iter().position(|&s| s == id.0).expect("on channel");
        list.remove(pos);
        let (server, dir) = unchan(c);
        let per_server = &mut self.streams_per_server[server.0 as usize];
        *per_server -= 1;
        if *per_server == 0 {
            self.active_servers.remove(&server.0);
        }
        self.stats.completed += 1;
        self.stats.bytes_moved += stream.bytes;
        if let Some(obs) = &self.obs {
            self.rec
                .observe(obs.stream_secs, now.since(stream.started).as_secs_f64());
            self.rec.state_exit(obs.states, id.0, now);
            self.rec.span_args(
                obs.track,
                "stream",
                stream.started,
                now,
                &[("bytes", stream.bytes as f64)],
            );
        }
        self.completions.push(StreamCompletion {
            stream: id,
            at: now,
            tag: stream.tag,
            bytes: stream.bytes,
            started: stream.started,
            server,
            dir,
        });
        self.reshare_scoped(c, now);
    }

    /// Re-shares the touched channel through whichever tier serves it.
    /// Under an analytic mode (with channel scope) this syncs the
    /// channel's engine; otherwise it runs the filling recompute — for
    /// the touched channel, or under [`ReshareScope::Global`] every
    /// channel in index order (the reference recompute; untouched
    /// channels' rates come out bitwise unchanged and are skipped, so
    /// the trajectories are identical).
    fn reshare_scoped(&mut self, c: u32, now: SimTime) {
        if self.analytic_on() {
            self.sync_channel(c, now);
            return;
        }
        match self.scope {
            ReshareScope::Channel => self.reshare_channel(c, now),
            ReshareScope::Global => {
                for ch in 0..self.channels.len() as u32 {
                    self.reshare_channel(ch, now);
                }
            }
        }
    }

    /// Recomputes the channel's equal-share rates and re-predicts its
    /// streams' completions. Equal split of the secondary bandwidth is
    /// the max-min fair allocation here because every stream demands as
    /// much as it can get and touches exactly one channel.
    fn reshare_channel(&mut self, c: u32, now: SimTime) {
        if self.channels[c as usize].streams.is_empty() {
            // An empty channel has nothing to re-divide; skipping it
            // before the counter keeps `DiskStats.reshares` a count of
            // *allocation* passes, identical however many idle disks a
            // sweep policy happens to visit (the tick-sweep oracle
            // pins full vs. incremental sweeps bitwise, stats included).
            return;
        }
        self.stats.reshares += 1;
        let (server, dir) = unchan(c);
        let rate =
            self.secondary_capacity(server, dir) / self.channels[c as usize].streams.len() as f64;
        let channel = &self.channels[c as usize];
        let active = &mut self.active;
        let queue = &mut self.queue;
        let stats = &mut self.stats;
        let rec = &mut self.rec;
        let obs = self.obs.as_ref();
        if let Some(obs) = obs {
            rec.observe(obs.reshare_streams, channel.streams.len() as f64);
            rec.gauge_at(obs.queue_len, now, queue.len() as f64);
            rec.gauge_at(obs.tombstones, now, queue.n_stale() as f64);
        }
        for id in &channel.streams {
            let s = active.get_mut(id).expect("active");
            // A stream whose rate is bitwise-unchanged keeps its pending
            // Complete event: its `remaining` hasn't been advanced since
            // that event was predicted, so the predicted completion is
            // still exact. A changed stream is advanced lazily — one
            // multiply covering the whole span since its own last
            // change — and its superseded event is cancelled.
            if s.version > 0 && rate == s.rate {
                continue;
            }
            // Captured before the assignment below: the guard above
            // means reaching here with an old rate of zero is exactly
            // the throttled→running rescue transition.
            let was_parked = s.version > 0 && s.rate == 0.0;
            let dt = now.since(s.last_update).as_secs_f64();
            if dt > 0.0 {
                s.remaining = (s.remaining - s.rate * dt).max(0.0);
            }
            s.last_update = now;
            if let Some(key) = s.pending.take() {
                if queue.cancel(key) {
                    stats.stale_events_dropped += 1;
                }
            }
            s.rate = rate;
            s.version += 1;
            let eta = if s.rate > 0.0 {
                if let (true, Some(obs)) = (was_parked, obs) {
                    rec.state_enter(obs.states, *id, "running", now);
                }
                SimDuration::from_secs_f64(s.remaining / s.rate)
            } else {
                // Fully throttled: park the completion; the re-share
                // when the primary backs off rescues it.
                if let Some(obs) = obs {
                    rec.add(obs.parks, 1);
                    rec.instant(obs.track, "park", now);
                    rec.state_enter(obs.states, *id, "throttle_parked", now);
                }
                PARKED
            };
            s.pending =
                Some(queue.push_keyed(now + eta, DiskEvent::Complete(StreamId(*id), s.version)));
            stats.peak_queue_len = stats.peak_queue_len.max(queue.len());
        }
    }

    /// Enrolls a just-started stream into its channel's existing
    /// analytic engine — O(log n) instead of a full re-predict pass.
    fn enroll_one(&mut self, c: u32, id: u64, now: SimTime) {
        let remaining = self.active[&id].remaining;
        let g = self.groups.get_mut(&c).expect("caller checked");
        g.engine.insert(now, id, remaining);
        let n = g.engine.n();
        if g.engine.rate() == 0.0 {
            self.park_obs(id, now);
        }
        self.alloc_pass_obs(n, now);
        self.repredict_group(c, now);
    }

    /// Puts a channel on the analytic tier: cancels every stream's
    /// individual prediction, settles remaining work to `now`, and
    /// enrolls the channel into a fresh engine. The engine's uniform
    /// rate is the same `capacity / n` division the filling tier would
    /// compute, so promotion is invisible in the trajectory.
    fn promote_channel(&mut self, c: u32, now: SimTime) {
        let (server, dir) = unchan(c);
        let cap = self.secondary_capacity(server, dir);
        let mut engine = FairShare::new(cap, now);
        let ids = self.channels[c as usize].streams.clone();
        for &id in &ids {
            let s = self.active.get_mut(&id).expect("on channel");
            let dt = now.since(s.last_update).as_secs_f64();
            if dt > 0.0 {
                s.remaining = (s.remaining - s.rate * dt).max(0.0);
            }
            s.last_update = now;
            if let Some(key) = s.pending.take() {
                if self.queue.cancel(key) {
                    self.stats.stale_events_dropped += 1;
                }
            }
            engine.insert(now, id, s.remaining);
        }
        // Throttle transitions across the promotion itself: a stream
        // whose old filling rate disagrees with the engine's park state
        // changes obs state here. (A just-started stream has version 0
        // and no park on record yet.)
        let rate = engine.rate();
        for &id in &ids {
            let (version, old_rate) = {
                let s = &self.active[&id];
                (s.version, s.rate)
            };
            let was_parked = version > 0 && old_rate == 0.0;
            if rate == 0.0 && !was_parked {
                self.park_obs(id, now);
            } else if rate > 0.0 && was_parked {
                if let Some(obs) = &self.obs {
                    self.rec.state_enter(obs.states, id, "running", now);
                }
            }
        }
        self.groups.insert(
            c,
            ChanGroup {
                engine,
                event: None,
            },
        );
        self.stats.analytic_channels += 1;
        self.alloc_pass_obs(ids.len(), now);
        self.repredict_group(c, now);
    }

    /// Brings an analytic channel current after a membership or
    /// capacity change: refreshes the engine's capacity (throttle,
    /// brown-out), records park/rescue transitions, and re-predicts
    /// the group's single completion event. Promotes or retires the
    /// channel's engine as the channel fills or empties.
    fn sync_channel(&mut self, c: u32, now: SimTime) {
        if self.channels[c as usize].streams.is_empty() {
            if let Some(mut g) = self.groups.remove(&c) {
                if let Some(key) = g.event.take() {
                    if self.queue.cancel(key) {
                        self.stats.stale_events_dropped += 1;
                    }
                }
            }
            return;
        }
        if !self.groups.contains_key(&c) {
            self.promote_channel(c, now);
            return;
        }
        let (server, dir) = unchan(c);
        let cap = self.secondary_capacity(server, dir);
        let g = self.groups.get_mut(&c).expect("checked above");
        let was = g.engine.rate();
        g.engine.set_capacity(now, cap);
        let rate = g.engine.rate();
        let n = g.engine.n();
        if (was == 0.0) != (rate == 0.0) {
            let ids: Vec<u64> = g.engine.members().map(|(id, _)| id).collect();
            for id in ids {
                if rate == 0.0 {
                    self.park_obs(id, now);
                } else if let Some(obs) = &self.obs {
                    self.rec.state_enter(obs.states, id, "running", now);
                }
            }
        }
        self.alloc_pass_obs(n, now);
        self.repredict_group(c, now);
    }

    /// Re-predicts a group's single completion event from the engine's
    /// next finisher. A parked group (zero rate) keeps one far-future
    /// [`PARKED`] event on its lowest-id member — mirroring the filling
    /// tier, so [`DiskPool::next_event_time`] stays `Some` while any
    /// stream is in flight — until the capacity-restoring re-share
    /// rescues it (cancelling the placeholder like any superseded
    /// prediction).
    fn repredict_group(&mut self, c: u32, now: SimTime) {
        let g = self.groups.get_mut(&c).expect("group exists");
        if let Some(key) = g.event.take() {
            if self.queue.cancel(key) {
                self.stats.stale_events_dropped += 1;
            }
        }
        let (top, eta) = match g.engine.peek(now) {
            Some((top, eta)) => (top, SimDuration::from_secs_f64(eta)),
            None => match g.engine.members().map(|(id, _)| id).min() {
                Some(top) => (top, PARKED),
                None => return,
            },
        };
        let version = self.active[&top].version;
        g.event = Some(
            self.queue
                .push_keyed(now + eta, DiskEvent::Complete(StreamId(top), version)),
        );
        self.stats.peak_queue_len = self.stats.peak_queue_len.max(self.queue.len());
    }

    /// Completion served by the analytic tier in O(log n): pop the
    /// engine's finisher, book the completion, re-predict the group's
    /// next event.
    fn on_analytic_complete(&mut self, id: StreamId, now: SimTime) {
        let stream = self.active.remove(&id.0).expect("caller checked");
        let c = stream.chan;
        let g = self.groups.get_mut(&c).expect("caller checked");
        // This is the group's one live event firing; superseded group
        // events are cancelled at re-predict time, never left to fire.
        g.event = None;
        let removed = g.engine.remove(now, id.0);
        debug_assert!(removed.is_some(), "completed stream not enrolled");
        self.stats.analytic_events += 1;
        let list = &mut self.channels[c as usize].streams;
        let pos = list.iter().position(|&s| s == id.0).expect("on channel");
        list.remove(pos);
        let (server, dir) = unchan(c);
        let per_server = &mut self.streams_per_server[server.0 as usize];
        *per_server -= 1;
        if *per_server == 0 {
            self.active_servers.remove(&server.0);
        }
        self.stats.completed += 1;
        self.stats.bytes_moved += stream.bytes;
        if let Some(obs) = &self.obs {
            self.rec
                .observe(obs.stream_secs, now.since(stream.started).as_secs_f64());
            self.rec.state_exit(obs.states, id.0, now);
            self.rec.span_args(
                obs.track,
                "stream",
                stream.started,
                now,
                &[("bytes", stream.bytes as f64)],
            );
        }
        self.completions.push(StreamCompletion {
            stream: id,
            at: now,
            tag: stream.tag,
            bytes: stream.bytes,
            started: stream.started,
            server,
            dir,
        });
        let left = self.channels[c as usize].streams.len();
        if left == 0 {
            self.groups.remove(&c);
        } else {
            self.alloc_pass_obs(left, now);
            self.repredict_group(c, now);
        }
    }

    /// Migrates one channel's engine state back to per-stream filling
    /// predictions exactly: remaining work settled under the engine's
    /// clock, the uniform rate, fresh versioned completion events
    /// (far-future parked events for a fully throttled channel).
    fn dissolve_group(&mut self, c: u32, now: SimTime) {
        let Some(mut g) = self.groups.remove(&c) else {
            return;
        };
        if let Some(key) = g.event.take() {
            if self.queue.cancel(key) {
                self.stats.stale_events_dropped += 1;
            }
        }
        g.engine.advance(now);
        let rate = g.engine.rate();
        for (id, remaining) in g.engine.members() {
            let s = self.active.get_mut(&id).expect("enrolled member");
            s.remaining = remaining;
            s.rate = rate;
            s.last_update = now;
            s.version += 1;
            let eta = if rate > 0.0 {
                SimDuration::from_secs_f64(remaining / rate)
            } else {
                PARKED
            };
            s.pending = Some(
                self.queue
                    .push_keyed(now + eta, DiskEvent::Complete(StreamId(id), s.version)),
            );
            self.stats.peak_queue_len = self.stats.peak_queue_len.max(self.queue.len());
        }
    }

    /// Migrates every analytic channel back to the filling tier, at
    /// the pool's time high-water mark.
    fn dissolve_all(&mut self) {
        let cs: Vec<u32> = self.groups.keys().copied().collect();
        for c in cs {
            self.dissolve_group(c, self.clock);
        }
    }

    /// Counts one analytic allocation pass, mirroring the filling
    /// tier's per-re-share bookkeeping so [`DiskStats::reshares`]
    /// stays a count of allocation passes whichever tier served them.
    fn alloc_pass_obs(&mut self, n_streams: usize, now: SimTime) {
        self.stats.reshares += 1;
        if let Some(obs) = &self.obs {
            self.rec.observe(obs.reshare_streams, n_streams as f64);
            self.rec
                .gauge_at(obs.queue_len, now, self.queue.len() as f64);
            self.rec
                .gauge_at(obs.tombstones, now, self.queue.n_stale() as f64);
        }
    }

    /// Records one stream's throttle park (counter, instant, state).
    fn park_obs(&mut self, id: u64, now: SimTime) {
        if let Some(obs) = &self.obs {
            self.rec.add(obs.parks, 1);
            self.rec.instant(obs.track, "park", now);
            self.rec.state_enter(obs.states, id, "throttle_parked", now);
        }
    }
}

fn chan(server: ServerId, dir: IoDir) -> u32 {
    server.0 * 2
        + match dir {
            IoDir::Read => 0,
            IoDir::Write => 1,
        }
}

fn unchan(c: u32) -> (ServerId, IoDir) {
    (
        ServerId(c / 2),
        if c.is_multiple_of(2) {
            IoDir::Read
        } else {
            IoDir::Write
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1_000_000;
    const S0: ServerId = ServerId(0);
    const S1: ServerId = ServerId(1);

    fn pool() -> DiskPool {
        DiskPool::new(4, &DiskConfig::datacenter())
    }

    #[test]
    fn single_read_runs_at_channel_speed() {
        let mut p = pool();
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 160 * MB, 1);
        let done = p.drain();
        assert_eq!(done.len(), 1);
        // 160 MB at 160 MB/s = 1 s, plus the 8 ms seek.
        let secs = done[0].at.since(done[0].started).as_secs_f64();
        assert!((1.0..1.05).contains(&secs), "single read took {secs}s");
        assert_eq!(done[0].server, S0);
        assert_eq!(done[0].dir, IoDir::Read);
    }

    #[test]
    fn writes_are_slower_than_reads() {
        let mut p = pool();
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 120 * MB, 1);
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Write, 120 * MB, 2);
        let done = p.drain();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].tag, 1, "read should finish first");
        assert!(done[1].at > done[0].at);
    }

    #[test]
    fn concurrent_streams_share_a_channel_fairly() {
        let mut p = pool();
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 80 * MB, 1);
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 80 * MB, 2);
        p.pump(SimTime::ZERO);
        let r1 = p.stream_rate(StreamId(0)).unwrap();
        let r2 = p.stream_rate(StreamId(1)).unwrap();
        assert!((r1 - r2).abs() < 1.0, "unequal shares {r1} vs {r2}");
        let cap = p.capacity(IoDir::Read);
        assert!((r1 + r2 - cap).abs() / cap < 1e-9, "channel not saturated");
        // Sharing doubles the transfer time vs. running alone.
        let done = p.drain();
        let secs = done[1].at.since(done[1].started).as_secs_f64();
        assert!((1.0..1.1).contains(&secs), "shared pair took {secs}s");
    }

    #[test]
    fn different_disks_do_not_interact() {
        let mut p = pool();
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 80 * MB, 1);
        p.schedule_stream(SimTime::ZERO, S1, IoDir::Read, 80 * MB, 2);
        p.pump(SimTime::ZERO);
        let cap = p.capacity(IoDir::Read);
        for id in [0, 1] {
            let r = p.stream_rate(StreamId(id)).unwrap();
            assert!((r - cap).abs() / cap < 1e-9, "stream {id} throttled to {r}");
        }
        p.drain();
    }

    #[test]
    fn primary_demand_shrinks_secondary_bandwidth() {
        let mut p = pool();
        // Constant-class tenant at 50% CPU: demand = 0.05 + 0.5*0.5 =
        // 0.3 of the channel, below the 0.5 throttle threshold, so the
        // stream gets the remaining 70%.
        p.set_primary_util(SimTime::ZERO, S0, 0.5);
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 80 * MB, 1);
        p.pump(SimTime::ZERO);
        let r = p.stream_rate(StreamId(0)).unwrap();
        let expect = p.capacity(IoDir::Read) * 0.7;
        assert!((r - expect).abs() / expect < 1e-9, "rate {r} vs {expect}");
        p.drain();
    }

    #[test]
    fn throttle_parks_and_rescues_streams() {
        let mut p = pool();
        // Constant-class at 95% CPU: demand 0.525 >= 0.5 threshold, so
        // the paper policy pauses secondaries outright.
        p.set_primary_util(SimTime::ZERO, S0, 0.95);
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 16 * MB, 7);
        let early = p.pump(SimTime::from_secs(600));
        assert!(early.is_empty(), "stream finished while throttled");
        assert!(p.is_throttled(S0));
        assert_eq!(p.stream_rate(StreamId(0)), Some(0.0));
        // Primary backs off ten minutes in; the stream completes ~0.1 s
        // later (16 MB at 160 MB/s against an idle-demand disk).
        p.set_primary_util(SimTime::from_secs(600), S0, 0.0);
        let done = p.pump(SimTime::from_secs(700));
        assert_eq!(done.len(), 1);
        let at = done[0].at.as_secs_f64();
        assert!((600.0..601.0).contains(&at), "rescued at {at}s");
    }

    /// A fully parked analytic channel keeps a far-future placeholder
    /// event: `next_event_time()` must stay `Some` while any stream is
    /// in flight, exactly the contract the filling tier provides via
    /// its parked completions (heartbeat replay in `harvest_dfs`
    /// drives the pool off `next_event_time` and relies on it).
    #[test]
    fn parked_analytic_channel_keeps_a_next_event() {
        let mut p = pool();
        p.set_primary_util(SimTime::ZERO, S0, 0.95);
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 16 * MB, 7);
        p.pump(SimTime::from_secs(60));
        assert!(p.stats().analytic_channels > 0, "channel never promoted");
        assert_eq!(p.stream_rate(StreamId(0)), Some(0.0), "not parked");
        assert!(
            p.next_event_time().is_some(),
            "parked analytic channel dropped its placeholder event"
        );
        // The rescue cancels the placeholder and completes the stream.
        p.set_primary_util(SimTime::from_secs(600), S0, 0.0);
        let done = p.pump(SimTime::from_secs(700));
        assert_eq!(done.len(), 1);
        let at = done[0].at.as_secs_f64();
        assert!((600.0..601.0).contains(&at), "rescued at {at}s");
    }

    #[test]
    fn departures_release_bandwidth() {
        let mut p = pool();
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 16 * MB, 1);
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 160 * MB, 2);
        let done = p.drain();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].tag, 1, "short stream finishes first");
        let long_secs = done[1].at.as_secs_f64();
        // Alone: ~1.0 s. Always halved: ~2.0 s. With the short stream
        // departing around 0.2 s the long one lands near 1.1 s.
        assert!(
            (1.0..1.6).contains(&long_secs),
            "long stream took {long_secs}s — bandwidth not released?"
        );
    }

    #[test]
    fn pump_respects_the_horizon() {
        let mut p = pool();
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 160 * MB, 1); // ~1 s
        let early = p.pump(SimTime::from_millis(500));
        assert!(early.is_empty(), "stream finished early: {early:?}");
        assert_eq!(p.n_active(), 1);
        let late = p.pump(SimTime::from_secs(10));
        assert_eq!(late.len(), 1);
        assert_eq!(p.n_active(), 0);
    }

    #[test]
    fn staggered_starts_replay_deterministically() {
        let run = || {
            let mut p = DiskPool::new(8, &DiskConfig::datacenter());
            for i in 0..30u64 {
                p.schedule_stream(
                    SimTime::from_millis(i * 37),
                    ServerId((i % 8) as u32),
                    if i % 3 == 0 {
                        IoDir::Write
                    } else {
                        IoDir::Read
                    },
                    (i + 1) * 4 * MB,
                    i,
                );
            }
            p.set_primary_util(SimTime::ZERO, ServerId(2), 0.4);
            p.drain()
                .into_iter()
                .map(|c| (c.tag, c.at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_track_the_population() {
        let mut p = pool();
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 10 * MB, 1);
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 10 * MB, 2);
        p.drain();
        let s = p.stats();
        assert_eq!(s.completed, 2);
        assert_eq!(s.bytes_moved, 20 * MB);
        assert_eq!(s.peak_active, 2);
        // Two starts and the first completion each re-divide the (still
        // occupied) channel; the last completion leaves it empty, which
        // does not count as an allocation pass.
        assert!(s.reshares >= 3);
        // The second stream's arrival re-predicted the first's
        // completion, which cancelled (dropped) the superseded event.
        assert!(s.stale_events_dropped >= 1);
        assert!(s.peak_queue_len >= 2);
    }

    /// An event on one disk leaves streams on other disks' channels
    /// with their version (and scheduled completion event) untouched.
    #[test]
    fn other_channels_keep_their_event_version() {
        // Versions are a filling-tier concept (the analytic tier
        // freezes them), so this oracle pins the filling engine.
        let mut p = pool();
        p.set_sharing_mode(SharingMode::Filling);
        let bystander = p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 160 * MB, 1);
        p.pump(SimTime::ZERO);
        let v0 = p.stream_version(bystander).expect("active");
        // Unrelated churn on another disk starts and finishes.
        p.schedule_stream(SimTime::from_millis(10), S1, IoDir::Write, 4 * MB, 2);
        p.pump(SimTime::from_millis(500));
        assert_eq!(p.stats().completed, 1, "unrelated stream should be done");
        assert_eq!(
            p.stream_version(bystander),
            Some(v0),
            "stream on an untouched channel was re-predicted"
        );
        // Churn on the *same* channel bumps it.
        p.schedule_stream(SimTime::from_millis(600), S0, IoDir::Read, 4 * MB, 3);
        p.pump(SimTime::from_millis(600));
        assert!(p.stream_version(bystander).expect("active") > v0);
        p.drain();
    }

    /// The active-server index tracks stream starts and completions and
    /// iterates in ascending server order.
    #[test]
    fn active_server_index_tracks_streams() {
        let mut p = pool();
        assert_eq!(p.n_active_servers(), 0);
        p.schedule_stream(SimTime::ZERO, S1, IoDir::Read, 160 * MB, 1);
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Write, 160 * MB, 2);
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 4 * MB, 3);
        p.pump(SimTime::ZERO);
        let active: Vec<ServerId> = p.active_servers().collect();
        assert_eq!(active, vec![S0, S1], "index not ascending / complete");
        // The short read finishes; S0 still has its write in flight.
        p.pump(SimTime::from_millis(500));
        assert_eq!(p.active_servers().collect::<Vec<_>>(), vec![S0, S1]);
        p.drain();
        assert_eq!(p.n_active_servers(), 0, "drained pool still indexed");
    }

    /// A bitwise-unchanged utilization replay is a no-op: no re-share
    /// runs and in-flight streams keep their completion predictions.
    #[test]
    fn unchanged_util_early_outs() {
        // Version-probing, so pinned to the filling tier; the early-out
        // itself is mode-independent (it returns before any re-share).
        let mut p = pool();
        p.set_sharing_mode(SharingMode::Filling);
        p.set_primary_util(SimTime::ZERO, S0, 0.4);
        let s = p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 160 * MB, 1);
        p.pump(SimTime::ZERO);
        let v = p.stream_version(s).unwrap();
        let reshares = p.stats().reshares;
        // Replaying the same sample must not disturb the stream.
        p.set_primary_util(SimTime::from_millis(100), S0, 0.4);
        assert_eq!(p.stream_version(s), Some(v), "stream was re-predicted");
        assert_eq!(p.stats().reshares, reshares, "re-share ran needlessly");
        // A moved sample still applies.
        p.set_primary_util(SimTime::from_millis(100), S0, 0.6);
        assert!(p.stream_version(s).unwrap() > v);
        p.set_primary_util(SimTime::from_millis(200), S0, 0.0);
        p.drain();
    }

    /// Recording is pure observation: the completion schedule and the
    /// stats struct are bitwise identical with a recorder attached, and
    /// throttle parks are counted.
    #[test]
    fn recording_does_not_change_the_trajectory() {
        let run = |record: bool| {
            let mut p = DiskPool::new(8, &DiskConfig::datacenter());
            if record {
                p.set_recorder(Recorder::new("disk-test"));
            }
            // Throttle S0 so its stream parks, then rescue it.
            p.set_primary_util(SimTime::ZERO, S0, 0.95);
            for i in 0..30u64 {
                p.schedule_stream(
                    SimTime::from_millis(i * 37),
                    ServerId((i % 8) as u32),
                    if i % 3 == 0 {
                        IoDir::Write
                    } else {
                        IoDir::Read
                    },
                    (i + 1) * 4 * MB,
                    i,
                );
            }
            p.pump(SimTime::from_secs(60));
            p.set_primary_util(SimTime::from_secs(60), S0, 0.0);
            let ends: Vec<(u64, SimTime)> = p.drain().into_iter().map(|c| (c.tag, c.at)).collect();
            let stats = *p.stats();
            (ends, stats, p.take_recorder())
        };
        let (ends_off, stats_off, _) = run(false);
        let (ends_on, stats_on, rec) = run(true);
        assert_eq!(ends_off, ends_on, "recording changed the schedule");
        assert_eq!(stats_off, stats_on, "recording changed the stats");
        assert_eq!(
            rec.counter_value("disk/completed"),
            Some(stats_on.completed)
        );
        assert_eq!(rec.counter_value("disk/reshares"), Some(stats_on.reshares));
        assert_eq!(
            rec.counter_value("disk/analytic_events"),
            Some(stats_on.analytic_events)
        );
        assert!(
            rec.counter_value("disk/parks").unwrap_or(0) >= 1,
            "the throttled stream should have parked at least once"
        );
    }

    #[test]
    fn degrade_slows_and_restores_streams() {
        let mut p = pool();
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 160 * MB, 1);
        p.pump(SimTime::ZERO);
        let healthy = p.stream_rate(StreamId(0)).unwrap();
        assert_eq!(p.degrade_factor(S0), 1.0);
        p.set_degrade(SimTime::from_millis(100), S0, 0.5);
        let r = p.stream_rate(StreamId(0)).unwrap();
        assert!(
            (r - healthy * 0.5).abs() / healthy < 1e-9,
            "browned-out rate {r} vs healthy {healthy}"
        );
        // Full brown-out parks; restore rescues.
        p.set_degrade(SimTime::from_millis(200), S0, 0.0);
        assert_eq!(p.stream_rate(StreamId(0)), Some(0.0));
        assert!(p.pump(SimTime::from_secs(3_600)).is_empty());
        p.set_degrade(SimTime::from_secs(3_600), S0, 1.0);
        let done = p.drain();
        assert_eq!(done.len(), 1);
        assert!(done[0].at >= SimTime::from_secs(3_600));
    }

    #[test]
    fn fail_server_aborts_both_channels_and_pending() {
        let mut p = pool();
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 160 * MB, 1);
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Write, 160 * MB, 2);
        p.schedule_stream(SimTime::from_secs(9), S0, IoDir::Read, MB, 3);
        p.schedule_stream(SimTime::ZERO, S1, IoDir::Read, 16 * MB, 4);
        p.pump(SimTime::ZERO);
        let mut tags = p.fail_server(SimTime::from_millis(50), S0);
        tags.sort_unstable();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(p.stats().streams_aborted, 3);
        assert_eq!(p.n_active(), 1, "the bystander on S1 survives");
        // The replaced disk accepts new streams.
        p.schedule_stream(SimTime::from_secs(10), S0, IoDir::Read, MB, 5);
        let done: Vec<u64> = p.drain().into_iter().map(|c| c.tag).collect();
        assert_eq!(done, vec![4, 5]);
    }

    #[test]
    fn abort_by_tag_leaves_other_streams_alone() {
        let mut p = pool();
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 80 * MB, 9);
        p.schedule_stream(SimTime::ZERO, S1, IoDir::Write, 80 * MB, 9);
        p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 8 * MB, 2);
        p.pump(SimTime::ZERO);
        let dead: std::collections::HashSet<u64> = [9].into_iter().collect();
        assert_eq!(p.abort_streams_with_tags(SimTime::from_millis(1), &dead), 2);
        let done = p.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 2);
        // The survivor sped up once its channel-mate aborted.
        let secs = done[0].at.as_secs_f64();
        assert!(secs < 0.2, "survivor took {secs}s — bandwidth not released");
    }

    /// Channel scoping and the global reference recompute must agree
    /// bitwise (the full randomized oracle lives in tests/properties.rs).
    #[test]
    fn channel_scope_matches_global_scope() {
        let run = |scope: ReshareScope| {
            let mut p = DiskPool::new(8, &DiskConfig::datacenter());
            // Global implies filling; probe versions, so pin the
            // channel-scoped run to filling too.
            p.set_sharing_mode(SharingMode::Filling);
            p.set_reshare_scope(scope);
            p.set_primary_util(SimTime::ZERO, ServerId(2), 0.4);
            for i in 0..30u64 {
                p.schedule_stream(
                    SimTime::from_millis(i * 37),
                    ServerId((i % 8) as u32),
                    if i % 3 == 0 {
                        IoDir::Write
                    } else {
                        IoDir::Read
                    },
                    (i + 1) * 4 * MB,
                    i,
                );
            }
            p.pump(SimTime::from_millis(700));
            let probe: Vec<(u64, u64, u64)> = p
                .active_stream_ids()
                .iter()
                .map(|&id| {
                    (
                        id.0,
                        p.stream_rate(id).unwrap().to_bits(),
                        p.stream_version(id).unwrap(),
                    )
                })
                .collect();
            let ends: Vec<(u64, SimTime)> = p.drain().into_iter().map(|c| (c.tag, c.at)).collect();
            (probe, ends)
        };
        let chan = run(ReshareScope::Channel);
        let glob = run(ReshareScope::Global);
        assert_eq!(chan.0, glob.0, "mid-run rates/versions diverged");
        assert_eq!(chan.1, glob.1, "completion schedules diverged");
    }

    /// The analytic tier (the default) must reproduce the filling
    /// reference exactly: uniform rates bitwise, completion schedule
    /// at full `SimTime` resolution — through starts, finishes, a
    /// mid-storm brown-out, a fully parked channel, and its rescue.
    #[test]
    fn analytic_matches_filling_exactly() {
        let run = |mode: SharingMode| {
            let mut p = DiskPool::new(8, &DiskConfig::datacenter());
            p.set_sharing_mode(mode);
            // Server 3 is fully throttled before its streams start.
            p.set_primary_util(SimTime::ZERO, ServerId(3), 0.95);
            for i in 0..40u64 {
                p.schedule_stream(
                    SimTime::from_millis(i * 61),
                    ServerId((i % 8) as u32),
                    if i % 3 == 0 {
                        IoDir::Write
                    } else {
                        IoDir::Read
                    },
                    (i % 9 + 1) * 8 * MB,
                    i,
                );
            }
            p.pump(SimTime::from_millis(400));
            p.set_degrade(SimTime::from_millis(400), S0, 0.5);
            p.pump(SimTime::from_secs(2));
            let rates: Vec<(u64, u64)> = p
                .active_stream_ids()
                .iter()
                .map(|&id| (id.0, p.stream_rate(id).unwrap().to_bits()))
                .collect();
            p.set_primary_util(SimTime::from_secs(2), ServerId(3), 0.0);
            let ends: Vec<(u64, SimTime)> = p.drain().into_iter().map(|c| (c.tag, c.at)).collect();
            (rates, ends, p.stats().completed)
        };
        let analytic = run(SharingMode::Auto);
        let filling = run(SharingMode::Filling);
        assert_eq!(analytic.0, filling.0, "mid-run rates diverged");
        assert_eq!(analytic.1, filling.1, "completion schedules diverged");
        assert_eq!(analytic.2, 40, "streams lost");
    }

    /// Fault interplay regression: a disk brown-out to zero mid-storm
    /// (then a degraded replacement) is a capacity change the analytic
    /// tier absorbs in place — no stream is lost or double-completed.
    #[test]
    fn degrade_mid_storm_loses_nothing() {
        let mut p = DiskPool::new(4, &DiskConfig::datacenter());
        let mut tags: Vec<u64> = Vec::new();
        for i in 0..24u64 {
            p.schedule_stream(
                SimTime::from_millis(i * 31),
                ServerId((i % 4) as u32),
                if i % 2 == 0 {
                    IoDir::Read
                } else {
                    IoDir::Write
                },
                (i % 5 + 1) * 16 * MB,
                i,
            );
        }
        tags.extend(p.pump(SimTime::from_millis(800)).iter().map(|c| c.tag));
        p.set_degrade(SimTime::from_millis(800), S1, 0.0);
        tags.extend(p.pump(SimTime::from_secs(30)).iter().map(|c| c.tag));
        assert!(p.n_active() > 0, "S1 streams should be parked");
        p.set_degrade(SimTime::from_secs(30), S1, 0.7);
        tags.extend(p.drain().iter().map(|c| c.tag));
        tags.sort_unstable();
        assert_eq!(tags, (0..24).collect::<Vec<u64>>(), "lost or doubled");
        assert_eq!(p.stats().completed, 24);
        assert!(p.stats().analytic_events > 0, "fast path never served");
    }

    /// Switching to the filling tier mid-run migrates engine state to
    /// per-stream predictions without disturbing the trajectory.
    #[test]
    fn mode_switch_migrates_exactly() {
        let run = |switch: bool| {
            let mut p = pool();
            for i in 0..12u64 {
                p.schedule_stream(
                    SimTime::from_millis(i * 23),
                    ServerId((i % 2) as u32),
                    IoDir::Read,
                    (i % 4 + 1) * 20 * MB,
                    i,
                );
            }
            p.pump(SimTime::from_millis(300));
            if switch {
                p.set_sharing_mode(SharingMode::Filling);
                assert!(p.stats().analytic_channels > 0, "never promoted");
            }
            p.drain()
                .into_iter()
                .map(|c| (c.tag, c.at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false), "migration moved the schedule");
    }

    /// The analytic counters track the fast path: the default serves
    /// single-channel churn analytically, the filling pin serves none.
    #[test]
    fn analytic_counters_track_the_fast_path() {
        let mut p = pool();
        for tag in 0..3u64 {
            p.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 8 * MB, tag);
        }
        p.drain();
        assert_eq!(p.stats().analytic_channels, 1, "one channel, one group");
        assert_eq!(p.stats().analytic_events, 3);

        let mut f = pool();
        f.set_sharing_mode(SharingMode::Filling);
        for tag in 0..3u64 {
            f.schedule_stream(SimTime::ZERO, S0, IoDir::Read, 8 * MB, tag);
        }
        f.drain();
        assert_eq!(f.stats().analytic_channels, 0);
        assert_eq!(f.stats().analytic_events, 0);
    }
}
