//! Job-length typing from the previous run (Algorithm 1, line 3).
//!
//! "We categorize a job as short, medium, or long by comparing the
//! duration of its last execution to two pre-defined thresholds. … We
//! assume that a job that has not executed before is a medium job. After
//! a possible error in this first guess, we find that a job consistently
//! falls into the same type." The testbed thresholds are 173 s and 433 s
//! (§6.1).

use std::collections::HashMap;

use harvest_sim::SimDuration;

/// A job's rough length type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JobLength {
    /// Last run shorter than the short threshold. Short jobs only need
    /// resources *now*, so current utilization is all that matters.
    Short,
    /// Between the thresholds (also the default for first-time jobs).
    Medium,
    /// Last run longer than the long threshold. Long jobs need headroom
    /// that persists, so peak history matters.
    Long,
}

impl JobLength {
    /// All lengths in ascending order.
    pub const ALL: [JobLength; 3] = [JobLength::Short, JobLength::Medium, JobLength::Long];

    /// A short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            JobLength::Short => "short",
            JobLength::Medium => "medium",
            JobLength::Long => "long",
        }
    }
}

impl std::fmt::Display for JobLength {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The two duration thresholds separating short/medium/long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthThresholds {
    /// Jobs with last run `< short_max` are short.
    pub short_max: SimDuration,
    /// Jobs with last run `> long_min` are long.
    pub long_min: SimDuration,
}

impl LengthThresholds {
    /// The paper's testbed thresholds: 173 s and 433 s (§6.1).
    pub fn paper_testbed() -> Self {
        LengthThresholds {
            short_max: SimDuration::from_secs(173),
            long_min: SimDuration::from_secs(433),
        }
    }

    /// Classifies a last-run duration.
    pub fn classify(&self, last_run: SimDuration) -> JobLength {
        if last_run < self.short_max {
            JobLength::Short
        } else if last_run > self.long_min {
            JobLength::Long
        } else {
            JobLength::Medium
        }
    }

    /// Derives thresholds from a historical distribution of job durations
    /// so each type holds roughly a third of the jobs (the paper sets
    /// thresholds "based on the historical distribution of job lengths
    /// and the current computational capacity of each preferred tenant
    /// class").
    pub fn from_history(mut durations: Vec<SimDuration>) -> Self {
        assert!(!durations.is_empty(), "need at least one duration");
        durations.sort_unstable();
        let n = durations.len();
        LengthThresholds {
            short_max: durations[n / 3],
            long_min: durations[(2 * n) / 3],
        }
    }
}

/// Remembers each job's last execution time and types jobs from it.
#[derive(Debug, Clone, Default)]
pub struct JobHistory {
    last_run: HashMap<String, SimDuration>,
}

impl JobHistory {
    /// An empty history (every job will type as medium).
    pub fn new() -> Self {
        JobHistory::default()
    }

    /// The length type of `job` under `thresholds`: from its last run if
    /// known, otherwise [`JobLength::Medium`].
    pub fn job_length(&self, job: &str, thresholds: &LengthThresholds) -> JobLength {
        match self.last_run.get(job) {
            Some(&d) => thresholds.classify(d),
            None => JobLength::Medium,
        }
    }

    /// Records a completed execution of `job`.
    pub fn record(&mut self, job: &str, duration: SimDuration) {
        self.last_run.insert(job.to_string(), duration);
    }

    /// The recorded last run of `job`, if any.
    pub fn last_run(&self, job: &str) -> Option<SimDuration> {
        self.last_run.get(job).copied()
    }

    /// Number of jobs with recorded history.
    pub fn len(&self) -> usize {
        self.last_run.len()
    }

    /// Whether no history has been recorded.
    pub fn is_empty(&self) -> bool {
        self.last_run.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thresholds_classify() {
        let t = LengthThresholds::paper_testbed();
        assert_eq!(t.classify(SimDuration::from_secs(100)), JobLength::Short);
        assert_eq!(t.classify(SimDuration::from_secs(172)), JobLength::Short);
        assert_eq!(t.classify(SimDuration::from_secs(173)), JobLength::Medium);
        assert_eq!(t.classify(SimDuration::from_secs(433)), JobLength::Medium);
        assert_eq!(t.classify(SimDuration::from_secs(434)), JobLength::Long);
    }

    #[test]
    fn unknown_jobs_default_to_medium() {
        let h = JobHistory::new();
        let t = LengthThresholds::paper_testbed();
        assert_eq!(h.job_length("q1", &t), JobLength::Medium);
    }

    #[test]
    fn history_updates_typing() {
        let mut h = JobHistory::new();
        let t = LengthThresholds::paper_testbed();
        h.record("q1", SimDuration::from_secs(60));
        assert_eq!(h.job_length("q1", &t), JobLength::Short);
        h.record("q1", SimDuration::from_secs(600));
        assert_eq!(h.job_length("q1", &t), JobLength::Long);
        assert_eq!(h.last_run("q1"), Some(SimDuration::from_secs(600)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn thresholds_from_history_split_in_thirds() {
        let durations: Vec<SimDuration> =
            (1..=99).map(|i| SimDuration::from_secs(i * 10)).collect();
        let t = LengthThresholds::from_history(durations.clone());
        let mut counts = [0usize; 3];
        for d in durations {
            match t.classify(d) {
                JobLength::Short => counts[0] += 1,
                JobLength::Medium => counts[1] += 1,
                JobLength::Long => counts[2] += 1,
            }
        }
        for c in counts {
            assert!((30..=36).contains(&c), "counts {counts:?} unbalanced");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(JobLength::Short.to_string(), "short");
        assert_eq!(JobLength::ALL.len(), 3);
    }
}
