//! Blame attribution and critical-path analysis over recorded traces:
//! "where did the time go".
//!
//! [`super::Recorder`] (PR 6) captures raw spans and wait-state
//! transitions; this module folds them into the attribution the
//! paper's §6–§7 analyses are made of — how much of a makespan or a
//! storm recovery was compute, wire, platter, or queue wait. It works
//! from either side of the export boundary:
//!
//! * [`analyze_trace_text`] — a written `--trace-out` file, via the
//!   in-repo [`super::json`] parser (the `repro analyze` path);
//! * [`analyze_recorder`] — a live recorder, by round-tripping through
//!   [`super::Recorder::chrome_trace_json`] so both paths exercise the
//!   same folding code and can never drift apart.
//!
//! # What it computes
//!
//! **Per span track** (pid 1 `X` events): the makespan (first start to
//! last end), the total busy time per span name, and the **critical
//! path** — walking backward from the latest-ending span, repeatedly
//! prepending the latest-ending span that finishes at or before the
//! current one starts. The chosen spans are pairwise disjoint and all
//! inside the makespan window, so the critical-path length is ≤ the
//! makespan *by construction*; the gap between them is time no span on
//! the track covers (queue/idle wait).
//!
//! **Per state track** (`cat:"state"` async `b`/`e` pairs): per-entity
//! per-state sim-time totals, with a **conservation check** — each
//! entity's state durations must sum exactly to its lifetime (last
//! exit minus first enter). Sim time is integer milliseconds (exported
//! as integer microseconds), and [`super::Recorder::state_enter`]
//! closes the previous state at the instant the next one opens, so the
//! check is exact integer equality: no float epsilon, no ulp tolerance
//! needed. The same backward walk over entity lifetimes yields the
//! track's critical chain, and the chain's time is attributed by state
//! — the "makespan = 44% compute, 31% shuffle wire, 17% disk fetch,
//! 8% queue wait" summary.

use std::collections::HashMap;

use super::json::{self, Value};
use super::Recorder;

/// Blame summary of one sim-time span track.
#[derive(Debug, Clone)]
pub struct SpanTrackBlame {
    /// Track (Perfetto thread) name.
    pub name: String,
    /// Number of complete spans on the track.
    pub spans: usize,
    /// First span start to last span end, in µs of sim time.
    pub makespan_us: u64,
    /// Summed duration of the critical chain (≤ `makespan_us` by
    /// construction).
    pub critical_us: u64,
    /// Total span µs per span name, descending.
    pub by_name: Vec<(String, u64)>,
}

/// Blame summary of one wait-state track.
#[derive(Debug, Clone)]
pub struct StateTrackBlame {
    /// Track name.
    pub name: String,
    /// Distinct entities seen.
    pub entities: usize,
    /// Entities whose per-state durations sum *exactly* (integer µs)
    /// to their lifetime.
    pub conserved: usize,
    /// Summed entity lifetimes, µs.
    pub lifetime_us: u64,
    /// Total µs per state across all entities, descending.
    pub by_state: Vec<(String, u64)>,
    /// Earliest entity birth to latest entity exit, µs.
    pub makespan_us: u64,
    /// Summed lifetime of the critical chain of entities
    /// (≤ `makespan_us` by construction).
    pub critical_us: u64,
    /// The critical chain's µs attributed by state, descending.
    pub critical_by_state: Vec<(String, u64)>,
}

impl StateTrackBlame {
    /// One-line blame split over the track's total lifetime, e.g.
    /// `"52.1% running, 31.0% blocked_on_net, 16.9% queued"` — the
    /// compact form experiment notes embed.
    pub fn blame_line(&self) -> String {
        if self.lifetime_us == 0 {
            return "no state time recorded".to_string();
        }
        self.by_state
            .iter()
            .map(|(s, us)| format!("{} {s}", pct(*us, self.lifetime_us)))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Everything [`analyze_trace_text`] extracts from one trace.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Span-track summaries, in track-name order.
    pub spans: Vec<SpanTrackBlame>,
    /// State-track summaries, in track-name order.
    pub states: Vec<StateTrackBlame>,
}

impl Analysis {
    /// Whether every entity on every state track passed the exact
    /// conservation check.
    pub fn conserved(&self) -> bool {
        self.states.iter().all(|s| s.conserved == s.entities)
    }

    /// Renders the blame tables as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== blame ==\n");
        for t in &self.spans {
            out.push_str(&format!(
                "track {}: {} spans, makespan {}, critical path {} ({})\n",
                t.name,
                t.spans,
                secs(t.makespan_us),
                secs(t.critical_us),
                pct(t.critical_us, t.makespan_us),
            ));
            for (name, us) in &t.by_name {
                out.push_str(&format!(
                    "    {name:<24} {:>10} busy ({} of makespan)\n",
                    secs(*us),
                    pct(*us, t.makespan_us)
                ));
            }
        }
        for t in &self.states {
            out.push_str(&format!(
                "states {}: {} entities, lifetime {}, conservation {}/{} exact\n",
                t.name,
                t.entities,
                secs(t.lifetime_us),
                t.conserved,
                t.entities,
            ));
            for (state, us) in &t.by_state {
                out.push_str(&format!(
                    "    {state:<24} {:>10} ({} of lifetime)\n",
                    secs(*us),
                    pct(*us, t.lifetime_us)
                ));
            }
            let chain: Vec<String> = t
                .critical_by_state
                .iter()
                .map(|(s, us)| format!("{} {s}", pct(*us, t.makespan_us)))
                .collect();
            out.push_str(&format!(
                "    critical path {} of {} makespan = {}\n",
                secs(t.critical_us),
                secs(t.makespan_us),
                if chain.is_empty() {
                    "-".to_string()
                } else {
                    chain.join(", ")
                }
            ));
        }
        if self.spans.is_empty() && self.states.is_empty() {
            out.push_str("(trace has no sim-time spans or state tracks)\n");
        }
        out
    }
}

/// Parses a Chrome-trace JSON document and computes the blame tables.
pub fn analyze_trace_text(text: &str) -> Result<Analysis, String> {
    let doc = json::parse(text)?;
    analyze_trace(&doc)
}

/// [`analyze_trace_text`] over a live recorder, by round-tripping its
/// own Chrome-trace export (one folding code path for both the live
/// and the file-based entry). Off recorders yield an empty analysis.
pub fn analyze_recorder(rec: &Recorder) -> Result<Analysis, String> {
    analyze_trace_text(&rec.chrome_trace_json())
}

/// One complete span pulled off a pid-1 track.
#[derive(Debug, Clone)]
struct RawSpan {
    name: String,
    start_us: u64,
    end_us: u64,
}

/// One closed state interval of one entity.
#[derive(Debug, Clone)]
struct RawInterval {
    state: String,
    start_us: u64,
    end_us: u64,
}

fn analyze_trace(doc: &Value) -> Result<Analysis, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("trace lacks a traceEvents array")?;

    let fstr = |e: &Value, k: &str| e.get(k).and_then(Value::as_str).map(str::to_string);
    let fnum = |e: &Value, k: &str| e.get(k).and_then(Value::as_f64);

    // tid → thread name (pid 1 only; wall-time tracks are wall clock,
    // not sim time, and get no blame rows).
    let mut names: HashMap<u64, String> = HashMap::new();
    let mut spans: HashMap<u64, Vec<RawSpan>> = HashMap::new();
    // (tid, entity) → open (state, start); closed intervals per tid.
    let mut open: HashMap<(u64, u64), (String, u64)> = HashMap::new();
    let mut intervals: HashMap<u64, Vec<(u64, RawInterval)>> = HashMap::new();

    for e in events {
        if fnum(e, "pid") != Some(1.0) {
            continue;
        }
        let tid = fnum(e, "tid").unwrap_or(0.0) as u64;
        match fstr(e, "ph").as_deref() {
            Some("M") if fstr(e, "name").as_deref() == Some("thread_name") => {
                if let Some(n) = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                {
                    names.insert(tid, n.to_string());
                }
            }
            Some("X") => {
                let (Some(name), Some(ts), Some(dur)) =
                    (fstr(e, "name"), fnum(e, "ts"), fnum(e, "dur"))
                else {
                    return Err("X event lacks name/ts/dur".to_string());
                };
                spans.entry(tid).or_default().push(RawSpan {
                    name,
                    start_us: ts as u64,
                    end_us: (ts + dur) as u64,
                });
            }
            Some(ph @ ("b" | "e")) if fstr(e, "cat").as_deref() == Some("state") => {
                let (Some(state), Some(ts), Some(id)) =
                    (fstr(e, "name"), fnum(e, "ts"), fstr(e, "id"))
                else {
                    return Err("state event lacks name/ts/id".to_string());
                };
                let entity = u64::from_str_radix(id.trim_start_matches("0x"), 16)
                    .map_err(|_| format!("bad state entity id {id:?}"))?;
                if ph == "b" {
                    if open.insert((tid, entity), (state, ts as u64)).is_some() {
                        return Err(format!(
                            "unbalanced state events: entity {entity} re-entered \
                             without leaving (track tid {tid})"
                        ));
                    }
                } else {
                    let Some((opened, start)) = open.remove(&(tid, entity)) else {
                        return Err(format!(
                            "unbalanced state events: entity {entity} exited \
                             {state:?} it never entered (track tid {tid})"
                        ));
                    };
                    if opened != state {
                        return Err(format!(
                            "state mismatch for entity {entity}: entered {opened:?}, \
                             exited {state:?}"
                        ));
                    }
                    intervals.entry(tid).or_default().push((
                        entity,
                        RawInterval {
                            state,
                            start_us: start,
                            end_us: ts as u64,
                        },
                    ));
                }
            }
            _ => {}
        }
    }
    if let Some((&(tid, entity), _)) = open.iter().next() {
        return Err(format!(
            "unbalanced state events: entity {entity} never exited (track tid {tid})"
        ));
    }

    let track_name = |tid: u64, names: &HashMap<u64, String>| {
        names
            .get(&tid)
            .cloned()
            .unwrap_or_else(|| format!("tid {tid}"))
    };

    let mut span_blames: Vec<SpanTrackBlame> = Vec::new();
    for (tid, list) in spans {
        span_blames.push(span_track_blame(track_name(tid, &names), list));
    }
    span_blames.sort_by(|a, b| a.name.cmp(&b.name));

    let mut state_blames: Vec<StateTrackBlame> = Vec::new();
    for (tid, list) in intervals {
        state_blames.push(state_track_blame(track_name(tid, &names), list)?);
    }
    state_blames.sort_by(|a, b| a.name.cmp(&b.name));

    Ok(Analysis {
        spans: span_blames,
        states: state_blames,
    })
}

/// The backward critical-path walk over `(start, end)` intervals:
/// starting from the latest-ending interval, repeatedly prepend the
/// latest-ending interval that ends at or before the current one
/// starts. Returns the indices of the chain (in `sorted`, which must
/// be ascending by end). The chosen intervals are pairwise disjoint,
/// so their summed length can never exceed the enclosing makespan.
fn critical_chain(sorted: &[(u64, u64)]) -> Vec<usize> {
    let mut chain = Vec::new();
    let Some(mut i) = sorted.len().checked_sub(1) else {
        return chain;
    };
    chain.push(i);
    loop {
        let cur_start = sorted[i].0;
        // Rightmost interval BELOW i with end <= cur_start. Searching
        // only `..i` guarantees the index strictly decreases — a
        // zero-length interval sitting exactly at `cur_start` would
        // otherwise re-select itself forever — and skips only same-
        // instant zero-length ties, which add nothing to the chain.
        let k = sorted[..i].partition_point(|&(_, end)| end <= cur_start);
        if k == 0 {
            break;
        }
        i = k - 1;
        chain.push(i);
    }
    chain
}

fn span_track_blame(name: String, mut list: Vec<RawSpan>) -> SpanTrackBlame {
    // Deterministic chain selection regardless of recording order.
    list.sort_by(|a, b| {
        (a.end_us, a.start_us, a.name.as_str()).cmp(&(b.end_us, b.start_us, b.name.as_str()))
    });
    let t0 = list.iter().map(|s| s.start_us).min().unwrap_or(0);
    let t1 = list.iter().map(|s| s.end_us).max().unwrap_or(0);
    let ends: Vec<(u64, u64)> = list.iter().map(|s| (s.start_us, s.end_us)).collect();
    let critical_us: u64 = critical_chain(&ends)
        .iter()
        .map(|&i| list[i].end_us - list[i].start_us)
        .sum();
    let mut by_name: HashMap<String, u64> = HashMap::new();
    for s in &list {
        *by_name.entry(s.name.clone()).or_default() += s.end_us - s.start_us;
    }
    SpanTrackBlame {
        name,
        spans: list.len(),
        makespan_us: t1 - t0,
        critical_us,
        by_name: sorted_desc(by_name),
    }
}

fn state_track_blame(
    name: String,
    list: Vec<(u64, RawInterval)>,
) -> Result<StateTrackBlame, String> {
    // Fold intervals per entity, preserving time order (intervals are
    // recorded in completion order, monotone per entity).
    let mut per_entity: HashMap<u64, Vec<RawInterval>> = HashMap::new();
    for (entity, iv) in list {
        per_entity.entry(entity).or_default().push(iv);
    }

    let mut by_state: HashMap<String, u64> = HashMap::new();
    let mut lifetime_us = 0u64;
    let mut conserved = 0usize;
    let mut lifetimes: Vec<(u64, u64, u64, HashMap<String, u64>)> = Vec::new();
    for (&entity, ivs) in &per_entity {
        let birth = ivs.iter().map(|i| i.start_us).min().expect("non-empty");
        let death = ivs.iter().map(|i| i.end_us).max().expect("non-empty");
        let mut mine: HashMap<String, u64> = HashMap::new();
        let mut total = 0u64;
        for iv in ivs {
            if iv.end_us < iv.start_us {
                return Err(format!(
                    "state interval ends before it starts ({} < {})",
                    iv.end_us, iv.start_us
                ));
            }
            let dur = iv.end_us - iv.start_us;
            total += dur;
            *mine.entry(iv.state.clone()).or_default() += dur;
        }
        // Exact integer conservation: enter closes the previous state
        // at the same instant the next opens, so an entity's state time
        // tiles its lifetime with no gap and no overlap.
        if total == death - birth {
            conserved += 1;
        }
        lifetime_us += death - birth;
        for (s, us) in &mine {
            *by_state.entry(s.clone()).or_default() += us;
        }
        lifetimes.push((birth, death, entity, mine));
    }

    let t0 = lifetimes.iter().map(|l| l.0).min().unwrap_or(0);
    let t1 = lifetimes.iter().map(|l| l.1).max().unwrap_or(0);
    // Deterministic chain selection: ties on (end, start) break by
    // entity id, never by map iteration order.
    lifetimes.sort_by_key(|a| (a.1, a.0, a.2));
    let ends: Vec<(u64, u64)> = lifetimes.iter().map(|l| (l.0, l.1)).collect();
    let chain = critical_chain(&ends);
    let critical_us: u64 = chain.iter().map(|&i| lifetimes[i].1 - lifetimes[i].0).sum();
    let mut critical_by_state: HashMap<String, u64> = HashMap::new();
    for &i in &chain {
        for (s, us) in &lifetimes[i].3 {
            *critical_by_state.entry(s.clone()).or_default() += us;
        }
    }

    Ok(StateTrackBlame {
        name,
        entities: per_entity.len(),
        conserved,
        lifetime_us,
        by_state: sorted_desc(by_state),
        makespan_us: t1 - t0,
        critical_us,
        critical_by_state: sorted_desc(critical_by_state),
    })
}

/// `(name, µs)` pairs, largest first (name ascending on ties, for
/// deterministic rendering).
fn sorted_desc(m: HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = m.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

fn secs(us: u64) -> String {
    format!("{:.1}s", us as f64 / 1e6)
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        return "0.0%".to_string();
    }
    format!("{:.1}%", part as f64 * 100.0 / whole as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn critical_path_over_spans_is_bounded_by_makespan() {
        let mut r = Recorder::new("t");
        let track = r.track("work");
        // Two overlapping spans plus a later one with a gap before it.
        r.span(track, "a", t(0), t(100));
        r.span(track, "b", t(50), t(140));
        r.span(track, "c", t(200), t(260));
        let a = analyze_recorder(&r).expect("analyzes");
        assert_eq!(a.spans.len(), 1);
        let tb = &a.spans[0];
        assert_eq!(tb.name, "work");
        assert_eq!(tb.spans, 3);
        assert_eq!(tb.makespan_us, 260_000);
        // Backward walk: c (200..260), then the latest end <= 200 is b
        // (50..140); nothing ends by b's start, so the chain is c + b
        // = 60 + 90 ms. a overlaps b and is off the path.
        assert_eq!(tb.critical_us, 150_000);
        assert!(tb.critical_us <= tb.makespan_us);
        let busy: u64 = tb.by_name.iter().map(|(_, us)| *us).sum();
        assert_eq!(busy, 250_000);
    }

    #[test]
    fn state_conservation_is_exact() {
        let mut r = Recorder::new("t");
        let st = r.state_track("flows");
        for e in 0..5u64 {
            r.state_enter(st, e, "queued", t(e * 10));
            r.state_enter(st, e, "running", t(e * 10 + 7));
            r.state_exit(st, e, t(e * 10 + 20));
        }
        let a = analyze_recorder(&r).expect("analyzes");
        assert_eq!(a.states.len(), 1);
        let sb = &a.states[0];
        assert_eq!(sb.entities, 5);
        assert_eq!(sb.conserved, 5, "conservation must be exact");
        assert!(a.conserved());
        // 5 × 20 ms lifetimes: 7 queued + 13 running each.
        assert_eq!(sb.lifetime_us, 100_000);
        assert_eq!(sb.by_state[0], ("running".to_string(), 65_000));
        assert_eq!(sb.by_state[1], ("queued".to_string(), 35_000));
        assert!(sb.critical_us <= sb.makespan_us);
        let line = sb.blame_line();
        assert!(line.contains("% running"), "{line}");
    }

    #[test]
    fn critical_chain_over_entities_attributes_by_state() {
        let mut r = Recorder::new("t");
        let st = r.state_track("stages");
        // Entity 0: 0..50 (30 queued, 20 running); entity 1 starts
        // after 0 ends: 60..100 (all running). Chain covers both.
        r.state_enter(st, 0, "queued", t(0));
        r.state_enter(st, 0, "running", t(30));
        r.state_exit(st, 0, t(50));
        r.state_enter(st, 1, "running", t(60));
        r.state_exit(st, 1, t(100));
        let a = analyze_recorder(&r).expect("analyzes");
        let sb = &a.states[0];
        assert_eq!(sb.makespan_us, 100_000);
        assert_eq!(sb.critical_us, 90_000);
        assert_eq!(sb.critical_by_state[0], ("running".to_string(), 60_000));
        assert_eq!(sb.critical_by_state[1], ("queued".to_string(), 30_000));
    }

    #[test]
    fn zero_length_intervals_do_not_stall_the_critical_chain() {
        // Regression: a zero-length interval sitting exactly at the
        // chain cursor used to re-select itself forever. Zero-length
        // intervals are routine — a request dispatched the instant it
        // arrives leaves a 0-µs `queued` state.
        let mut r = Recorder::new("t");
        let track = r.track("work");
        r.span(track, "z0", t(0), t(0));
        r.span(track, "a", t(0), t(100));
        r.span(track, "z1", t(100), t(100));
        r.span(track, "b", t(100), t(200));
        let st = r.state_track("req");
        for e in 0..3u64 {
            r.state_enter(st, e, "queued", t(e * 50));
            r.state_enter(st, e, "running", t(e * 50)); // 0-µs queued
            r.state_exit(st, e, t(e * 50 + 50));
        }
        let a = analyze_recorder(&r).expect("analyzes");
        let tb = &a.spans[0];
        assert_eq!(tb.makespan_us, 200_000);
        // Chain: b (100..200) then a (0..100); the zero-length spans
        // add nothing either way.
        assert_eq!(tb.critical_us, 200_000);
        assert!(tb.critical_us <= tb.makespan_us);
        let sb = &a.states[0];
        assert_eq!(sb.conserved, 3);
        assert_eq!(sb.critical_us, 150_000);
        assert!(sb.critical_us <= sb.makespan_us);
    }

    #[test]
    fn unbalanced_traces_are_rejected() {
        // A hand-built trace with an exit that was never entered.
        let bad = r#"{"traceEvents":[
            {"ph":"e","cat":"state","pid":1,"tid":1,"id":"0x1","name":"running","ts":5}
        ]}"#;
        assert!(analyze_trace_text(bad).is_err());
        // And one with an enter that never exits.
        let mut r = Recorder::new("t");
        let st = r.state_track("s");
        r.state_enter(st, 1, "queued", t(0));
        // Unclosed intervals are dropped at export, so this analyzes
        // to an empty state set rather than erroring.
        let a = analyze_recorder(&r).expect("analyzes");
        assert!(a.states.is_empty());
    }

    #[test]
    fn empty_and_off_recorders_analyze_cleanly() {
        let a = analyze_recorder(&Recorder::off()).expect("analyzes");
        assert!(a.spans.is_empty() && a.states.is_empty());
        assert!(a.conserved());
        assert!(a.render().contains("no sim-time spans"));
    }

    #[test]
    fn render_mentions_every_track() {
        let mut r = Recorder::new("t");
        let track = r.track("fabric");
        r.span(track, "flow", t(0), t(10));
        let st = r.state_track("fabric/flow");
        r.state_enter(st, 9, "queued", t(0));
        r.state_exit(st, 9, t(10));
        let a = analyze_recorder(&r).expect("analyzes");
        let text = a.render();
        assert!(text.contains("track fabric:"), "{text}");
        assert!(text.contains("states fabric/flow:"), "{text}");
        assert!(text.contains("conservation 1/1 exact"), "{text}");
    }
}
