//! Zero-cost-when-off observability: counters, gauges, histograms, and
//! sim-time spans, with Chrome-trace and machine-readable exporters.
//!
//! Every engine in the workspace (fabric, disk pool, scheduler, DFS
//! repair, the parallel harness) reports into a [`Recorder`]. The
//! recorder is a facade over an `Option<Box<Inner>>`:
//! [`Recorder::off`] is the default everywhere, and engines built
//! without one behave exactly as before.
//!
//! # Cost model
//!
//! **Off** (the default): every record method starts with one branch on
//! a niche-optimized `Option<Box<_>>` (a null-pointer check) and
//! returns. No allocation, no formatting, no syscalls — the only cost
//! an instrumented hot loop pays is that one predictable branch per
//! site, plus engines short-circuit whole instrumentation blocks behind
//! a single `Option<ObsIds>` check. `benches/obs.rs` pins the off-mode
//! overhead on the scheduler tick workload at ≤ 5%.
//!
//! **On**, per event:
//! * counter `add`/`counter_set` — one bounds-checked vector write;
//! * gauge sample — min/max/count update plus (amortized) one point
//!   appended to a bounded series: the series holds at most
//!   [`SERIES_CAP`] points and decimates itself (keep-every-other,
//!   recording stride doubles) when full, so month-scale horizons keep
//!   bounded memory;
//! * histogram `observe` — amortized O(1) into a fixed-size
//!   [`QuantileSketch`] (bounded levels of 256 slots; an occasional
//!   sort of one full level);
//! * span — one fixed-size record (name pointer, two timestamps, up to
//!   two inline key/value args; no per-span allocation), capped at
//!   [`MAX_SPANS`] recorder-wide with drops counted in the exported
//!   `obs/spans_dropped` counter — never silently truncated;
//! * state transition ([`Recorder::state_enter`] /
//!   [`Recorder::state_exit`], the wait-state hooks behind the
//!   [`analyze`] blame tables) — one fixed-size record (entity id,
//!   timestamp, interned state index; state names are `&'static str`
//!   interned by a short linear scan, no allocation per event), capped
//!   at [`MAX_TRANSITIONS`] recorder-wide with drops counted in the
//!   exported `transitions_dropped` field. Off-path a state hook is
//!   the same single null branch as every other record method, and
//!   engines keep whole wait-state blocks behind their one
//!   `Option<ObsIds>` check.
//!
//! # Determinism
//!
//! Recording is pure observation: no RNG, no reordering, no stdout.
//! Every simulation trajectory is bitwise identical with recording on
//! and off (`crates/core/tests/determinism.rs` pins `repro` stdout
//! byte-for-byte across the two). Exporters write only to the strings
//! they return; where they land on disk is the caller's business.
//!
//! # Composition
//!
//! Engines own a child recorder ([`Recorder::child`], on iff the
//! parent is on) for the duration of a run and hand it back through
//! [`Recorder::absorb`], which merges by metric name: counters sum,
//! gauges merge, histogram sketches merge, span tracks concatenate, and
//! state tracks concatenate with the child's entity namespaces shifted
//! past the parent's (each [`Recorder::state_track`] registration —
//! local or absorbed — owns a disjoint entity namespace, so engines can
//! number entities from 0 without colliding in [`analyze`]). Subsystems
//! namespace their metrics themselves (`"fabric/reshares"`,
//! `"disk/parks"`, …).
//!
//! # Exporters
//!
//! * [`Recorder::chrome_trace_json`] — the Chrome Trace Event format
//!   (loads in Perfetto / `chrome://tracing`): sim-time span tracks per
//!   subsystem on pid 1 (sim milliseconds mapped to trace
//!   microseconds), gauge series as counter tracks, and wall-time
//!   worker/harness tracks on pid 2.
//! * [`Recorder::metrics_json`] — a machine-readable run report
//!   (counters, gauge envelopes, histogram quantiles), parseable with
//!   the no-dependency [`json`] module below.
//!
//! State transitions export into the Chrome trace as balanced async
//! begin/end pairs (`ph` `b`/`e`, `cat` `"state"`, the entity id as the
//! async `id`), one Perfetto thread per state track; [`analyze`] folds
//! them — from a live recorder or a written trace file — into
//! per-entity per-state sim-time totals with an exact conservation
//! check and a critical-path blame summary.

pub mod analyze;

use std::collections::HashMap;

use crate::metrics::QuantileSketch;
use crate::par::WorkerProfile;
use crate::time::SimTime;

/// Gauge series point budget; a full series decimates keep-every-other
/// and doubles its recording stride.
pub const SERIES_CAP: usize = 4_096;

/// Recorder-wide span budget across all sim-time tracks; spans past it
/// are counted in the exported `obs/spans_dropped` counter.
pub const MAX_SPANS: usize = 1_000_000;

/// Recorder-wide state-transition budget across all state tracks;
/// transitions past it are counted in the exported
/// `transitions_dropped` field.
pub const MAX_TRANSITIONS: usize = 1_000_000;

/// Inline key/value slots per span (changed/occupied is the widest
/// annotation any engine records).
const SPAN_ARGS: usize = 2;

/// Sentinel id handed out by an off recorder; every record method
/// ignores it.
const OFF: u32 = u32::MAX;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a registered histogram (quantile sketch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

/// Handle to a registered sim-time span track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackId(u32);

/// Handle to a registered wait-state track. Each registration of the
/// same name gets the same track but a distinct entity namespace (see
/// [`Recorder::state_track`]), so two engine instances whose local
/// entity counters both start at 0 never collide on the shared track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateTrackId {
    track: u32,
    salt: u64,
}

/// Bits of an entity id below the instance salt. Engine-local entity
/// ids (stream/flow/repair/request counters, `job << 32 | stage` tags)
/// must fit in 48 bits; ids are masked to that width before salting.
const ENTITY_SALT_SHIFT: u32 = 48;

/// Mask keeping the engine-local bits of an entity id.
const ENTITY_MASK: u64 = (1 << ENTITY_SALT_SHIFT) - 1;

/// State index meaning "the entity left its last state" (lifetime end).
const EXIT_STATE: u32 = u32::MAX;

/// One wait-state transition: `entity` enters the state named
/// `states[state]` at `at_ms` (implicitly leaving its previous state),
/// or — with `state == EXIT_STATE` — ends its lifetime.
#[derive(Debug, Clone, Copy)]
struct Transition {
    entity: u64,
    at_ms: u64,
    state: u32,
}

/// A named lane of per-entity wait-state transitions (one Perfetto
/// async-event thread on pid 1). State names are interned per track —
/// the vocabulary is small (`queued`, `running`, `blocked_on_net`, …)
/// so a linear scan beats a map.
#[derive(Debug, Default)]
struct StateTrack {
    states: Vec<&'static str>,
    transitions: Vec<Transition>,
    /// Registrations handed out for this track — the next instance's
    /// entity-namespace salt. Bumped by [`Recorder::state_track`] and
    /// by [`Recorder::absorb`] when merging a child's same-name track.
    instances: u64,
}

impl StateTrack {
    fn intern_state(&mut self, name: &'static str) -> u32 {
        if let Some(i) = self.states.iter().position(|s| *s == name) {
            return i as u32;
        }
        self.states.push(name);
        (self.states.len() - 1) as u32
    }
}

/// One sim-time span: `[start_ms, end_ms]` with up to two inline args.
/// `end == start` exports as an instant event.
#[derive(Debug, Clone, Copy)]
struct Span {
    name: &'static str,
    start_ms: u64,
    end_ms: u64,
    args: [(&'static str, f64); SPAN_ARGS],
    n_args: u8,
}

/// A named lane of sim-time spans (one Perfetto thread on pid 1).
#[derive(Debug, Default)]
struct Track {
    spans: Vec<Span>,
}

/// A bounded gauge time series: stride-doubling decimation keeps at
/// most [`SERIES_CAP`] points however long the run.
#[derive(Debug, Clone)]
struct Series {
    points: Vec<(u64, f64)>,
    stride: u64,
    seen: u64,
}

impl Series {
    fn new() -> Self {
        Series {
            points: Vec::new(),
            stride: 1,
            seen: 0,
        }
    }

    fn push(&mut self, t_ms: u64, v: f64) {
        let keep = self.seen.is_multiple_of(self.stride);
        self.seen += 1;
        if !keep {
            return;
        }
        self.points.push((t_ms, v));
        if self.points.len() >= SERIES_CAP {
            self.decimate();
        }
    }

    fn decimate(&mut self) {
        let mut i = 0usize;
        self.points.retain(|_| {
            let keep = i.is_multiple_of(2);
            i += 1;
            keep
        });
        self.stride *= 2;
    }
}

/// Last/min/max/count envelope plus the bounded series.
#[derive(Debug, Clone)]
struct Gauge {
    last: f64,
    min: f64,
    max: f64,
    count: u64,
    series: Series,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            last: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
            series: Series::new(),
        }
    }

    fn set(&mut self, t_ms: u64, v: f64) {
        self.last = v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
        self.series.push(t_ms, v);
    }
}

/// One wall-time span (µs from an arbitrary per-run epoch).
#[derive(Debug, Clone)]
struct WallSpan {
    label: String,
    start_us: u64,
    end_us: u64,
}

/// A named wall-time lane (one Perfetto thread on pid 2): a par_map
/// worker, or the harness's per-experiment lane.
#[derive(Debug)]
struct WallTrack {
    name: String,
    spans: Vec<WallSpan>,
}

/// Name-interned storage shared by every metric kind.
#[derive(Debug)]
struct Registry<T> {
    names: Vec<String>,
    items: Vec<T>,
    index: HashMap<String, u32>,
}

impl<T> Registry<T> {
    fn new() -> Self {
        Registry {
            names: Vec::new(),
            items: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn intern(&mut self, name: &str, make: impl FnOnce() -> T) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.items.len() as u32;
        self.names.push(name.to_string());
        self.items.push(make());
        self.index.insert(name.to_string(), id);
        id
    }

    fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        self.items.get_mut(id as usize)
    }

    /// `(name, item)` pairs in ascending name order (deterministic
    /// export regardless of registration order).
    fn sorted(&self) -> Vec<(&str, &T)> {
        let mut v: Vec<(&str, &T)> = self
            .names
            .iter()
            .map(String::as_str)
            .zip(self.items.iter())
            .collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }
}

#[derive(Debug)]
struct Inner {
    name: String,
    counters: Registry<u64>,
    gauges: Registry<Gauge>,
    hists: Registry<QuantileSketch>,
    tracks: Registry<Track>,
    states: Registry<StateTrack>,
    wall: Vec<WallTrack>,
    spans_total: usize,
    spans_dropped: u64,
    transitions_total: usize,
    transitions_dropped: u64,
}

impl Inner {
    fn new(name: &str) -> Self {
        Inner {
            name: name.to_string(),
            counters: Registry::new(),
            gauges: Registry::new(),
            hists: Registry::new(),
            tracks: Registry::new(),
            states: Registry::new(),
            wall: Vec::new(),
            spans_total: 0,
            spans_dropped: 0,
            transitions_total: 0,
            transitions_dropped: 0,
        }
    }

    fn wall_track_mut(&mut self, name: &str) -> &mut WallTrack {
        if let Some(i) = self.wall.iter().position(|t| t.name == name) {
            return &mut self.wall[i];
        }
        self.wall.push(WallTrack {
            name: name.to_string(),
            spans: Vec::new(),
        });
        self.wall.last_mut().expect("just pushed")
    }
}

/// The observability facade. See the module docs for the cost model.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Option<Box<Inner>>,
}

impl Recorder {
    /// The no-op recorder: every method is one branch and a return.
    pub fn off() -> Self {
        Recorder { inner: None }
    }

    /// An active recorder named `name` (the name heads the metrics
    /// report).
    pub fn new(name: &str) -> Self {
        Recorder {
            inner: Some(Box::new(Inner::new(name))),
        }
    }

    /// Whether this recorder is recording.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// A child recorder for an engine to own during a run: on iff
    /// `self` is on. Hand it back through [`Recorder::absorb`].
    pub fn child(&self) -> Recorder {
        if self.is_on() {
            Recorder::new("")
        } else {
            Recorder::off()
        }
    }

    /// Merges a child recorder's contents: counters add, gauges merge,
    /// histogram sketches merge, tracks concatenate, all by name.
    pub fn absorb(&mut self, child: Recorder) {
        let Some(inner) = &mut self.inner else { return };
        let Some(c) = child.inner else { return };
        for (name, value) in c.counters.names.iter().zip(&c.counters.items) {
            let id = inner.counters.intern(name, || 0);
            *inner.counters.get_mut(id).expect("interned") += value;
        }
        for (name, g) in c.gauges.names.iter().zip(&c.gauges.items) {
            let id = inner.gauges.intern(name, Gauge::new);
            let dst = inner.gauges.get_mut(id).expect("interned");
            if g.count > 0 {
                dst.last = g.last;
                dst.min = dst.min.min(g.min);
                dst.max = dst.max.max(g.max);
                dst.count += g.count;
                dst.series.points.extend_from_slice(&g.series.points);
                dst.series.points.sort_by_key(|&(t, _)| t);
                while dst.series.points.len() >= SERIES_CAP {
                    dst.series.decimate();
                }
            }
        }
        for (name, h) in c.hists.names.iter().zip(&c.hists.items) {
            let id = inner.hists.intern(name, QuantileSketch::new);
            inner.hists.get_mut(id).expect("interned").merge(h);
        }
        for (name, t) in c.tracks.names.iter().zip(&c.tracks.items) {
            let id = inner.tracks.intern(name, Track::default);
            inner
                .tracks
                .get_mut(id)
                .expect("interned")
                .spans
                .extend_from_slice(&t.spans);
        }
        for (name, st) in c.states.names.iter().zip(&c.states.items) {
            let id = inner.states.intern(name, StateTrack::default);
            let dst = inner.states.get_mut(id).expect("interned");
            let remap: Vec<u32> = st.states.iter().map(|s| dst.intern_state(s)).collect();
            // Shift the child's entity namespaces above the parent's:
            // the child salted from 0 too, and entity ids compose as
            // `salt << SHIFT | local`, so one additive bump keeps every
            // child instance disjoint from every parent instance.
            let rebase = dst.instances << ENTITY_SALT_SHIFT;
            dst.instances += st.instances;
            dst.transitions
                .extend(st.transitions.iter().map(|t| Transition {
                    entity: t.entity.wrapping_add(rebase),
                    state: if t.state == EXIT_STATE {
                        EXIT_STATE
                    } else {
                        remap[t.state as usize]
                    },
                    ..*t
                }));
        }
        for t in c.wall {
            inner.wall_track_mut(&t.name).spans.extend(t.spans);
        }
        inner.spans_total += c.spans_total;
        inner.spans_dropped += c.spans_dropped;
        inner.transitions_total += c.transitions_total;
        inner.transitions_dropped += c.transitions_dropped;
    }

    /// Registers (or finds) a counter. Returns a dummy id when off.
    pub fn counter(&mut self, name: &str) -> CounterId {
        match &mut self.inner {
            Some(i) => CounterId(i.counters.intern(name, || 0)),
            None => CounterId(OFF),
        }
    }

    /// Registers (or finds) a gauge. Returns a dummy id when off.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        match &mut self.inner {
            Some(i) => GaugeId(i.gauges.intern(name, Gauge::new)),
            None => GaugeId(OFF),
        }
    }

    /// Registers (or finds) a histogram. Returns a dummy id when off.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        match &mut self.inner {
            Some(i) => HistogramId(i.hists.intern(name, QuantileSketch::new)),
            None => HistogramId(OFF),
        }
    }

    /// Registers (or finds) a sim-time span track. Returns a dummy id
    /// when off.
    pub fn track(&mut self, name: &str) -> TrackId {
        match &mut self.inner {
            Some(i) => TrackId(i.tracks.intern(name, Track::default)),
            None => TrackId(OFF),
        }
    }

    /// Registers a wait-state track. Same-name registrations share one
    /// exported track but each call claims a fresh entity namespace:
    /// two engine instances (say, the showcase disk pool and the pool
    /// inside a reimage storm) can both number their streams from 0
    /// without their lifetimes merging in analysis. Returns a dummy id
    /// when off.
    pub fn state_track(&mut self, name: &str) -> StateTrackId {
        match &mut self.inner {
            Some(i) => {
                let idx = i.states.intern(name, StateTrack::default);
                let t = i.states.get_mut(idx).expect("interned");
                let salt = t.instances;
                t.instances += 1;
                StateTrackId { track: idx, salt }
            }
            None => StateTrackId {
                track: OFF,
                salt: 0,
            },
        }
    }

    /// Records `entity` entering `state` at `at`, implicitly leaving
    /// whatever state it was in. The first enter opens the entity's
    /// lifetime.
    #[inline]
    pub fn state_enter(&mut self, id: StateTrackId, entity: u64, state: &'static str, at: SimTime) {
        let Some(inner) = &mut self.inner else { return };
        if inner.transitions_total >= MAX_TRANSITIONS {
            inner.transitions_dropped += 1;
            return;
        }
        let Some(t) = inner.states.get_mut(id.track) else {
            return;
        };
        let state = t.intern_state(state);
        t.transitions.push(Transition {
            entity: (id.salt << ENTITY_SALT_SHIFT) | (entity & ENTITY_MASK),
            at_ms: at.as_millis(),
            state,
        });
        inner.transitions_total += 1;
    }

    /// Records `entity` leaving its current state at `at`, closing its
    /// lifetime (until a later [`Recorder::state_enter`] reopens it).
    #[inline]
    pub fn state_exit(&mut self, id: StateTrackId, entity: u64, at: SimTime) {
        let Some(inner) = &mut self.inner else { return };
        if inner.transitions_total >= MAX_TRANSITIONS {
            inner.transitions_dropped += 1;
            return;
        }
        let Some(t) = inner.states.get_mut(id.track) else {
            return;
        };
        t.transitions.push(Transition {
            entity: (id.salt << ENTITY_SALT_SHIFT) | (entity & ENTITY_MASK),
            at_ms: at.as_millis(),
            state: EXIT_STATE,
        });
        inner.transitions_total += 1;
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(c) = inner.counters.get_mut(id.0) {
            *c += delta;
        }
    }

    /// Sets a counter to an absolute value (for mirroring an engine's
    /// final totals).
    #[inline]
    pub fn counter_set(&mut self, id: CounterId, value: u64) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(c) = inner.counters.get_mut(id.0) {
            *c = value;
        }
    }

    /// Samples a gauge at a sim-time instant.
    #[inline]
    pub fn gauge_at(&mut self, id: GaugeId, at: SimTime, value: f64) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(g) = inner.gauges.get_mut(id.0) {
            g.set(at.as_millis(), value);
        }
    }

    /// Adds one observation to a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        let Some(inner) = &mut self.inner else { return };
        if let Some(h) = inner.hists.get_mut(id.0) {
            h.push(value);
        }
    }

    /// Records a sim-time span on a track.
    #[inline]
    pub fn span(&mut self, id: TrackId, name: &'static str, start: SimTime, end: SimTime) {
        self.span_args(id, name, start, end, &[]);
    }

    /// Records a sim-time span with up to [`SPAN_ARGS`] inline
    /// key/value annotations (extras are dropped).
    #[inline]
    pub fn span_args(
        &mut self,
        id: TrackId,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        args: &[(&'static str, f64)],
    ) {
        let Some(inner) = &mut self.inner else { return };
        if inner.spans_total >= MAX_SPANS {
            inner.spans_dropped += 1;
            return;
        }
        let Some(t) = inner.tracks.get_mut(id.0) else {
            return;
        };
        let mut inline = [("", 0.0); SPAN_ARGS];
        let n = args.len().min(SPAN_ARGS);
        inline[..n].copy_from_slice(&args[..n]);
        t.spans.push(Span {
            name,
            start_ms: start.as_millis(),
            end_ms: end.as_millis(),
            args: inline,
            n_args: n as u8,
        });
        inner.spans_total += 1;
    }

    /// Records an instant event (a zero-length span) on a track.
    #[inline]
    pub fn instant(&mut self, id: TrackId, name: &'static str, at: SimTime) {
        self.span_args(id, name, at, at, &[]);
    }

    /// Records one wall-time span on the named wall track (µs from any
    /// fixed per-run epoch).
    pub fn wall_span(&mut self, track: &str, label: &str, start_us: u64, end_us: u64) {
        let Some(inner) = &mut self.inner else { return };
        inner.wall_track_mut(track).spans.push(WallSpan {
            label: label.to_string(),
            start_us,
            end_us,
        });
    }

    /// Records [`crate::par::par_map_profiled`] worker profiles as one
    /// wall track per worker (`{label}/w{worker}`), one span per task.
    pub fn record_worker_profiles(&mut self, label: &str, profiles: &[WorkerProfile]) {
        if self.inner.is_none() {
            return;
        }
        for p in profiles {
            let track = format!("{label}/w{}", p.worker);
            for t in &p.tasks {
                self.wall_span(&track, &format!("task {}", t.task), t.start_us, t.end_us);
            }
        }
    }

    /// The current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let &id = inner.counters.index.get(name)?;
        inner.counters.items.get(id as usize).copied()
    }

    /// Serializes everything as Chrome Trace Event JSON (see the
    /// module docs for the track layout). Off recorders export an
    /// empty-but-valid trace.
    pub fn chrome_trace_json(&self) -> String {
        let mut ev: Vec<String> = Vec::new();
        ev.push(meta_event(1, 0, "process_name", "sim-time"));
        if let Some(inner) = &self.inner {
            for (tid0, (name, track)) in inner.tracks.sorted().into_iter().enumerate() {
                let tid = tid0 as u64 + 1;
                ev.push(meta_event(1, tid, "thread_name", name));
                for s in &track.spans {
                    ev.push(span_event(1, tid, s));
                }
            }
            // Wait-state tracks: one async-event thread per track after
            // the span threads, each closed state interval a balanced
            // `b`/`e` pair keyed by the entity id. Intervals still open
            // at export (an entity never exited) are dropped — engines
            // exit every entity they enter.
            let n_span_tracks = inner.tracks.names.len() as u64;
            for (sidx, (name, st)) in inner.states.sorted().into_iter().enumerate() {
                let tid = n_span_tracks + 1 + sidx as u64;
                ev.push(meta_event(1, tid, "thread_name", name));
                let mut open: HashMap<u64, (u32, u64)> = HashMap::new();
                for tr in &st.transitions {
                    if let Some((state, since)) = open.remove(&tr.entity) {
                        let sname = st.states[state as usize];
                        ev.push(state_event("b", tid, tr.entity, sname, since));
                        ev.push(state_event("e", tid, tr.entity, sname, tr.at_ms));
                    }
                    if tr.state != EXIT_STATE {
                        open.insert(tr.entity, (tr.state, tr.at_ms));
                    }
                }
            }
            // Gauge series as Perfetto counter tracks on the sim-time
            // process.
            for (name, g) in inner.gauges.sorted() {
                for &(t_ms, v) in &g.series.points {
                    ev.push(format!(
                        "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":{},\"ts\":{},\"args\":{{\"value\":{}}}}}",
                        jstr(name),
                        t_ms * 1_000,
                        jnum(v)
                    ));
                }
            }
            ev.push(meta_event(2, 0, "process_name", "wall-time"));
            for (tid0, track) in inner.wall.iter().enumerate() {
                let tid = tid0 as u64 + 1;
                ev.push(meta_event(2, tid, "thread_name", &track.name));
                for s in &track.spans {
                    ev.push(format!(
                        "{{\"ph\":\"X\",\"pid\":2,\"tid\":{},\"name\":{},\"ts\":{},\"dur\":{}}}",
                        tid,
                        jstr(&s.label),
                        s.start_us,
                        s.end_us.saturating_sub(s.start_us).max(1)
                    ));
                }
            }
        }
        format!("{{\"traceEvents\":[\n{}\n]}}\n", ev.join(",\n"))
    }

    /// Serializes counters, gauge envelopes, and histogram summaries as
    /// a machine-readable JSON report (keys in sorted order), parseable
    /// with [`json::parse`]. Off recorders export an empty report.
    pub fn metrics_json(&self) -> String {
        let Some(inner) = &self.inner else {
            return "{\"name\":\"off\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n"
                .to_string();
        };
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"name\": {},\n", jstr(&inner.name)));
        out.push_str(&format!(
            "  \"spans_recorded\": {},\n  \"spans_dropped\": {},\n",
            inner.spans_total, inner.spans_dropped
        ));
        out.push_str(&format!(
            "  \"transitions_recorded\": {},\n  \"transitions_dropped\": {},\n",
            inner.transitions_total, inner.transitions_dropped
        ));

        let counters: Vec<String> = inner
            .counters
            .sorted()
            .into_iter()
            .map(|(n, v)| format!("    {}: {}", jstr(n), v))
            .collect();
        out.push_str(&format!(
            "  \"counters\": {{\n{}\n  }},\n",
            counters.join(",\n")
        ));

        let gauges: Vec<String> = inner
            .gauges
            .sorted()
            .into_iter()
            .map(|(n, g)| {
                format!(
                    "    {}: {{ \"last\": {}, \"min\": {}, \"max\": {}, \"count\": {} }}",
                    jstr(n),
                    jnum(g.last),
                    jnum(if g.count == 0 { 0.0 } else { g.min }),
                    jnum(if g.count == 0 { 0.0 } else { g.max }),
                    g.count
                )
            })
            .collect();
        out.push_str(&format!(
            "  \"gauges\": {{\n{}\n  }},\n",
            gauges.join(",\n")
        ));

        let hists: Vec<String> = inner
            .hists
            .sorted()
            .into_iter()
            .map(|(n, h)| {
                format!(
                    "    {}: {{ \"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
                     \"p50\": {}, \"p90\": {}, \"p99\": {} }}",
                    jstr(n),
                    h.count(),
                    jnum(h.min().unwrap_or(0.0)),
                    jnum(h.max().unwrap_or(0.0)),
                    jnum(h.mean().unwrap_or(0.0)),
                    jnum(h.quantile(0.50).unwrap_or(0.0)),
                    jnum(h.quantile(0.90).unwrap_or(0.0)),
                    jnum(h.quantile(0.99).unwrap_or(0.0)),
                )
            })
            .collect();
        out.push_str(&format!(
            "  \"histograms\": {{\n{}\n  }},\n",
            hists.join(",\n")
        ));

        let tracks: Vec<String> = inner
            .tracks
            .sorted()
            .into_iter()
            .map(|(n, t)| format!("    {}: {}", jstr(n), t.spans.len()))
            .collect();
        out.push_str(&format!(
            "  \"tracks\": {{\n{}\n  }},\n",
            tracks.join(",\n")
        ));

        let states: Vec<String> = inner
            .states
            .sorted()
            .into_iter()
            .map(|(n, t)| format!("    {}: {}", jstr(n), t.transitions.len()))
            .collect();
        out.push_str(&format!(
            "  \"state_tracks\": {{\n{}\n  }}\n}}\n",
            states.join(",\n")
        ));
        out
    }
}

fn meta_event(pid: u64, tid: u64, kind: &str, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"args\":{{\"name\":{}}}}}",
        jstr(kind),
        jstr(name)
    )
}

/// One async state event (`ph` `b` or `e`): the entity id doubles as
/// the async id so viewers and [`analyze`] pair begins with ends.
fn state_event(ph: &str, tid: u64, entity: u64, state: &str, t_ms: u64) -> String {
    format!(
        "{{\"ph\":\"{ph}\",\"cat\":\"state\",\"pid\":1,\"tid\":{tid},\"id\":\"0x{entity:x}\",\"name\":{},\"ts\":{}}}",
        jstr(state),
        t_ms * 1_000
    )
}

fn span_event(pid: u64, tid: u64, s: &Span) -> String {
    let ts = s.start_ms * 1_000;
    if s.end_ms == s.start_ms {
        return format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"ts\":{ts},\"s\":\"t\"}}",
            jstr(s.name)
        );
    }
    let dur = (s.end_ms - s.start_ms) * 1_000;
    let mut args = String::new();
    for (i, (k, v)) in s.args[..s.n_args as usize].iter().enumerate() {
        if i > 0 {
            args.push(',');
        }
        args.push_str(&format!("{}:{}", jstr(k), jnum(*v)));
    }
    format!(
        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"ts\":{ts},\"dur\":{dur},\"args\":{{{args}}}}}",
        jstr(s.name)
    )
}

/// JSON string literal (quotes + escapes).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal; non-finite values (which no engine should
/// produce) serialize as 0 to keep the document valid.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

pub mod json {
    //! A minimal JSON parser for validating the exporters' output in
    //! tests, benches, and `examples/validate_obs.rs` — not a general
    //! JSON library (no serde in this workspace).

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (parsed as `f64`).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object member by key.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The number, if this is one.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The string, if this is one.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }

        /// The members, if this is an object.
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }
    }

    /// Deepest container nesting [`parse`] accepts. Recursive descent
    /// burns one stack frame per level, so an adversarially nested
    /// document must error out long before the thread's stack does
    /// (the exporters themselves never nest past ~4).
    pub const MAX_DEPTH: usize = 512;

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'{') => parse_obj(b, pos, depth),
            Some(b'[') => parse_arr(b, pos, depth),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_num(b, pos),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex4 = |b: &[u8], at: usize| {
                                b.get(at..at + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                            };
                            let mut code = hex4(b, *pos + 1)
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                            *pos += 4;
                            // A high surrogate followed by an escaped
                            // low surrogate decodes as one supplementary
                            // character (how JSON spells e.g. emoji);
                            // unpaired surrogates fall through to the
                            // replacement character below.
                            if (0xD800..=0xDBFF).contains(&code)
                                && b.get(*pos + 1) == Some(&b'\\')
                                && b.get(*pos + 2) == Some(&b'u')
                            {
                                if let Some(lo) = hex4(b, *pos + 3) {
                                    if (0xDC00..=0xDFFF).contains(&lo) {
                                        code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                        *pos += 6;
                                    }
                                }
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = b
                        .get(*pos..*pos + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| format!("bad utf-8 at byte {pos}"))?;
                    out.push_str(chunk);
                    *pos += len;
                }
            }
        }
    }

    fn parse_arr(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos, depth + 1)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_obj(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut members = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            members.push((key, parse_value(b, pos, depth + 1)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn off_recorder_is_inert() {
        let mut r = Recorder::off();
        assert!(!r.is_on());
        let c = r.counter("x");
        let g = r.gauge("y");
        let h = r.histogram("z");
        let t = r.track("w");
        r.add(c, 5);
        r.gauge_at(g, SimTime::from_secs(1), 2.0);
        r.observe(h, 3.0);
        r.span(t, "s", SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(r.counter_value("x"), None);
        assert!(!r.child().is_on());
        // Exporters still emit valid documents.
        json::parse(&r.chrome_trace_json()).expect("off trace parses");
        json::parse(&r.metrics_json()).expect("off metrics parse");
    }

    #[test]
    fn counters_gauges_histograms_record() {
        let mut r = Recorder::new("t");
        let c = r.counter("a/count");
        r.add(c, 2);
        r.add(c, 3);
        assert_eq!(r.counter_value("a/count"), Some(5));
        let c2 = r.counter("a/count");
        assert_eq!(c, c2, "re-registration must return the same id");
        let g = r.gauge("a/depth");
        for i in 0..10 {
            r.gauge_at(g, SimTime::from_secs(i), i as f64);
        }
        let h = r.histogram("a/lat");
        for i in 1..=100 {
            r.observe(h, i as f64);
        }
        let doc = json::parse(&r.metrics_json()).expect("parses");
        let depth = doc.get("gauges").and_then(|g| g.get("a/depth")).unwrap();
        assert_eq!(depth.get("min").unwrap().as_f64(), Some(0.0));
        assert_eq!(depth.get("max").unwrap().as_f64(), Some(9.0));
        assert_eq!(depth.get("last").unwrap().as_f64(), Some(9.0));
        let lat = doc.get("histograms").and_then(|h| h.get("a/lat")).unwrap();
        assert_eq!(lat.get("count").unwrap().as_f64(), Some(100.0));
        let p50 = lat.get("p50").unwrap().as_f64().unwrap();
        assert!((45.0..=55.0).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn absorb_merges_by_name() {
        let mut parent = Recorder::new("p");
        let pc = parent.counter("fabric/reshares");
        parent.add(pc, 10);
        let mut child = parent.child();
        assert!(child.is_on());
        let cc = child.counter("fabric/reshares");
        child.add(cc, 7);
        let ch = child.histogram("fabric/flow_secs");
        child.observe(ch, 1.0);
        let ct = child.track("fabric");
        child.span(ct, "flow", SimTime::ZERO, SimTime::from_secs(1));
        parent.absorb(child);
        assert_eq!(parent.counter_value("fabric/reshares"), Some(17));
        let doc = json::parse(&parent.metrics_json()).expect("parses");
        let flows = doc.get("tracks").and_then(|t| t.get("fabric")).unwrap();
        assert_eq!(flows.as_f64(), Some(1.0));
    }

    #[test]
    fn gauge_series_memory_is_bounded() {
        let mut r = Recorder::new("b");
        let g = r.gauge("q");
        // A month of two-minute samples is ~21 600 points; push far
        // more and check the stored series stayed under the cap.
        for i in 0..200_000u64 {
            r.gauge_at(g, SimTime::from_secs(i), (i % 97) as f64);
        }
        let inner = r.inner.as_ref().unwrap();
        let series = &inner.gauges.items[0].series;
        assert!(series.points.len() < SERIES_CAP, "{}", series.points.len());
        assert!(series.stride > 1, "never decimated");
        assert_eq!(inner.gauges.items[0].count, 200_000);
    }

    #[test]
    fn span_cap_drops_are_counted() {
        let mut r = Recorder::new("cap");
        let t = r.track("x");
        for i in 0..(MAX_SPANS + 10) as u64 {
            r.span(t, "s", SimTime::from_millis(i), SimTime::from_millis(i + 1));
        }
        let inner = r.inner.as_ref().unwrap();
        assert_eq!(inner.spans_total, MAX_SPANS);
        assert_eq!(inner.spans_dropped, 10);
        let doc = json::parse(&r.metrics_json()).expect("parses");
        assert_eq!(doc.get("spans_dropped").unwrap().as_f64(), Some(10.0));
    }

    #[test]
    fn chrome_trace_round_trips() {
        let mut r = Recorder::new("rt");
        let t = r.track("fabric");
        r.span_args(
            t,
            "flow",
            SimTime::from_millis(5),
            SimTime::from_millis(17),
            &[("bytes", 1024.0)],
        );
        r.instant(t, "park", SimTime::from_millis(20));
        let g = r.gauge("fabric/queue_len");
        r.gauge_at(g, SimTime::from_millis(5), 3.0);
        r.wall_span("workers/w0", "task 0", 100, 250);
        let doc = json::parse(&r.chrome_trace_json()).expect("trace parses");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let find = |ph: &str, name: &str| -> &Value {
            events
                .iter()
                .find(|e| {
                    e.get("ph").and_then(Value::as_str) == Some(ph)
                        && e.get("name").and_then(Value::as_str) == Some(name)
                })
                .unwrap_or_else(|| panic!("no {ph} event named {name}"))
        };
        let flow = find("X", "flow");
        assert_eq!(flow.get("ts").unwrap().as_f64(), Some(5_000.0));
        assert_eq!(flow.get("dur").unwrap().as_f64(), Some(12_000.0));
        assert_eq!(flow.get("pid").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            flow.get("args")
                .and_then(|a| a.get("bytes"))
                .unwrap()
                .as_f64(),
            Some(1024.0)
        );
        find("i", "park");
        let ctr = find("C", "fabric/queue_len");
        assert_eq!(
            ctr.get("args")
                .and_then(|a| a.get("value"))
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
        let task = find("X", "task 0");
        assert_eq!(task.get("pid").unwrap().as_f64(), Some(2.0));
        assert_eq!(task.get("ts").unwrap().as_f64(), Some(100.0));
        // Track naming metadata present for both processes.
        find("M", "process_name");
        find("M", "thread_name");
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let doc = json::parse("{\"a\\n\": [1, -2.5e3, true, null, \"x\\u0041\\\"\"], \"b\": {}}")
            .expect("parses");
        let arr = doc.get("a\n").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2], Value::Bool(true));
        assert_eq!(arr[3], Value::Null);
        assert_eq!(arr[4].as_str(), Some("xA\""));
        assert!(doc.get("b").unwrap().as_obj().unwrap().is_empty());
        assert!(json::parse("{\"a\": }").is_err());
        assert!(json::parse("[1, 2").is_err());
        assert!(json::parse("{} trailing").is_err());
    }

    #[test]
    fn state_tracks_export_balanced_pairs() {
        let mut r = Recorder::new("st");
        let st = r.state_track("fabric/flow");
        r.state_enter(st, 7, "queued", SimTime::from_millis(10));
        r.state_enter(st, 7, "running", SimTime::from_millis(25));
        r.state_exit(st, 7, SimTime::from_millis(40));
        let doc = json::parse(&r.chrome_trace_json()).expect("parses");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let state_events: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Value::as_str) == Some("state"))
            .collect();
        // Two closed intervals, each a b/e pair.
        assert_eq!(state_events.len(), 4);
        let phs: Vec<&str> = state_events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phs, ["b", "e", "b", "e"]);
        let first = state_events[0];
        assert_eq!(first.get("name").unwrap().as_str(), Some("queued"));
        assert_eq!(first.get("id").unwrap().as_str(), Some("0x7"));
        assert_eq!(first.get("ts").unwrap().as_f64(), Some(10_000.0));
        assert_eq!(state_events[1].get("ts").unwrap().as_f64(), Some(25_000.0));
        // The metrics report counts the transitions.
        let m = json::parse(&r.metrics_json()).expect("parses");
        assert_eq!(m.get("transitions_recorded").unwrap().as_f64(), Some(3.0));
        let stt = m.get("state_tracks").unwrap().get("fabric/flow").unwrap();
        assert_eq!(stt.as_f64(), Some(3.0));
    }

    #[test]
    fn state_tracks_absorb_with_remapped_names() {
        let mut parent = Recorder::new("p");
        let ps = parent.state_track("disk/stream");
        parent.state_enter(ps, 1, "running", SimTime::from_millis(0));
        parent.state_exit(ps, 1, SimTime::from_millis(5));
        let mut child = parent.child();
        let cs = child.state_track("disk/stream");
        // Child interns in a different order; absorb must remap.
        child.state_enter(cs, 2, "throttle_parked", SimTime::from_millis(1));
        child.state_enter(cs, 2, "running", SimTime::from_millis(3));
        child.state_exit(cs, 2, SimTime::from_millis(9));
        parent.absorb(child);
        let a = analyze::analyze_recorder(&parent).expect("analyzes");
        assert_eq!(a.states.len(), 1);
        let sb = &a.states[0];
        assert_eq!(sb.entities, 2);
        assert_eq!(sb.conserved, 2);
        let running = sb
            .by_state
            .iter()
            .find(|(s, _)| s == "running")
            .map(|(_, us)| *us);
        assert_eq!(running, Some(11_000), "5 ms + 6 ms of running");
    }

    #[test]
    fn state_track_registrations_get_disjoint_entity_namespaces() {
        // Two engine instances both number their entities from 0 — one
        // shared track, but the lifetimes must not merge: the second
        // registration's entity 0 is a different entity. Same again for
        // a child recorder (its own namespaces) after absorb.
        let mut rec = Recorder::new("t");
        let a = rec.state_track("disk/stream");
        let b = rec.state_track("disk/stream");
        rec.state_enter(a, 0, "running", SimTime::from_millis(0));
        rec.state_exit(a, 0, SimTime::from_millis(10));
        rec.state_enter(b, 0, "running", SimTime::from_millis(50));
        rec.state_exit(b, 0, SimTime::from_millis(60));
        let mut child = rec.child();
        let c = child.state_track("disk/stream");
        child.state_enter(c, 0, "running", SimTime::from_millis(100));
        child.state_exit(c, 0, SimTime::from_millis(110));
        rec.absorb(child);
        let an = analyze::analyze_recorder(&rec).expect("analyzes");
        let sb = &an.states[0];
        assert_eq!(sb.entities, 3, "instances must not share entity ids");
        assert_eq!(sb.conserved, 3, "a merged lifetime would have gaps");
        assert_eq!(sb.lifetime_us, 30_000);
    }

    #[test]
    fn off_state_hooks_are_inert() {
        let mut r = Recorder::off();
        let st = r.state_track("x");
        r.state_enter(st, 1, "queued", SimTime::ZERO);
        r.state_exit(st, 1, SimTime::from_secs(1));
        json::parse(&r.chrome_trace_json()).expect("off trace parses");
    }

    #[test]
    fn transition_cap_drops_are_counted() {
        let mut r = Recorder::new("cap");
        let st = r.state_track("x");
        for i in 0..(MAX_TRANSITIONS + 6) as u64 {
            r.state_enter(st, i, "running", SimTime::from_millis(i));
        }
        let inner = r.inner.as_ref().unwrap();
        assert_eq!(inner.transitions_total, MAX_TRANSITIONS);
        assert_eq!(inner.transitions_dropped, 6);
        let doc = json::parse(&r.metrics_json()).expect("parses");
        assert_eq!(doc.get("transitions_dropped").unwrap().as_f64(), Some(6.0));
    }

    #[test]
    fn json_parser_decodes_surrogate_pairs() {
        // U+1F600 as a JSON surrogate pair.
        let doc = json::parse("{\"s\": \"\\uD83D\\uDE00!\"}").expect("parses");
        assert_eq!(doc.get("s").unwrap().as_str(), Some("😀!"));
        // Unpaired surrogates degrade to the replacement character.
        let doc = json::parse("{\"s\": \"\\uD83Dx\"}").expect("parses");
        assert_eq!(doc.get("s").unwrap().as_str(), Some("\u{fffd}x"));
        // Raw multi-byte UTF-8 still round-trips through jstr.
        let quoted = super::jstr("流量/фабрика");
        let doc = json::parse(&quoted).expect("parses");
        assert_eq!(doc.as_str(), Some("流量/фабрика"));
    }

    #[test]
    fn json_parser_bounds_nesting_depth() {
        let deep_ok = format!(
            "{}1{}",
            "[".repeat(json::MAX_DEPTH),
            "]".repeat(json::MAX_DEPTH)
        );
        json::parse(&deep_ok).expect("at the limit parses");
        let too_deep = format!(
            "{}1{}",
            "[".repeat(json::MAX_DEPTH + 1),
            "]".repeat(json::MAX_DEPTH + 1)
        );
        let err = json::parse(&too_deep).expect_err("past the limit errors");
        assert!(err.contains("nesting"), "{err}");
    }

    #[test]
    fn span_times_survive_sim_durations() {
        let mut r = Recorder::new("t");
        let t = r.track("x");
        let start = SimTime::ZERO + SimDuration::from_hours(3);
        let end = start + SimDuration::from_mins(2);
        r.span(t, "tick", start, end);
        let doc = json::parse(&r.chrome_trace_json()).expect("parses");
        let ev = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let tick = ev
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("tick"))
            .unwrap();
        assert_eq!(tick.get("dur").unwrap().as_f64(), Some(120_000_000.0));
    }
}
