//! Benchmarks for the Figure 10/12 latency machinery: the analytic model
//! and the validating queueing simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_service::{LatencyModel, SearchServer};
use std::hint::black_box;

fn bench_latency(c: &mut Criterion) {
    let model = LatencyModel::paper_calibrated();

    c.bench_function("fig10_p99_single_server", |b| {
        b.iter(|| black_box(model.p99_ms(black_box(0.4), black_box(3))))
    });

    // A 102-server fleet sample, as one minute of Figure 10 computes.
    let loads: Vec<(f64, u32)> = (0..102)
        .map(|i| (0.2 + (i % 7) as f64 * 0.08, (i % 5) as u32))
        .collect();
    c.bench_function("fig10_fleet_p99_102_servers", |b| {
        b.iter(|| black_box(model.fleet_p99_ms(black_box(&loads), 42, 7)))
    });

    // The discrete-event validation path.
    let server = SearchServer::lucene_like();
    let mut group = c.benchmark_group("fig10_queueing_sim_10k_requests");
    group.sample_size(10);
    group.bench_function("rho_0.5", |b| {
        b.iter(|| black_box(server.run(0.5, 10_000, 1)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_latency
}
criterion_main!(benches);
