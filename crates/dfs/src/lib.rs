//! The co-location-aware distributed block store (HDFS-H).
//!
//! Implements the storage half of the paper (§4.2, §5.4): a name-node /
//! data-node block store whose replica placement understands that primary
//! tenants (1) load-spike, making replicas temporarily unavailable, and
//! (2) reimage disks — sometimes many at once — destroying replicas.
//!
//! * [`grid`] — Algorithm 2's two-dimensional clustering: tenants split
//!   into 3×3 cells by (reimage frequency × peak CPU utilization), every
//!   cell holding the same amount of harvestable space (Figure 8);
//! * [`placement`] — the three placement policies: `Stock` (HDFS's
//!   local/rack/remote rule), `PrimaryAware` (stock rule that skips busy
//!   servers), and `History` (Algorithm 2 with row/column/environment
//!   constraints);
//! * [`store`] — the block store state: blocks, replicas, per-server
//!   space accounting;
//! * [`durability`] — the year-long reimage simulation behind Figure 15;
//!   with a [`harvest_net::NetworkConfig`] each re-replication is a real
//!   256 MB flow and blocks stay vulnerable until the transfer lands;
//! * [`availability`] — the access simulation behind Figure 16 (a block
//!   access fails when every replica sits on a busy server); with the
//!   fabric on, a busy local replica forces a paid remote read;
//! * [`repair`] — re-replication throttled at 30 blocks/hour/server with
//!   a heartbeat-loss detection delay (§5.1), plus
//!   [`repair::simulate_reimage_storm`]: a tenant-wide mass reimage whose
//!   recovery is bandwidth-constrained by the shared fabric;
//! * [`quality`] — the production placement-quality monitor (§7, lesson
//!   3): diversity measurement and the space-vs-diversity tradeoff;
//! * [`heartbeat`] — the §7 lesson-2 scenario: synchronous heartbeat
//!   threads stall under primary I/O and trigger replication storms,
//!   asynchronous status reporting does not.

pub mod availability;
pub mod durability;
pub mod grid;
pub mod heartbeat;
pub mod placement;
pub mod quality;
pub mod repair;
pub mod store;

pub use grid::{Cell, Grid2D};
pub use placement::PlacementPolicy;
pub use store::{BlockId, BlockStore};
