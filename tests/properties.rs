//! Property-based tests over the workspace's core invariants.

use harvest::cluster::{Datacenter, ServerId};
use harvest::dfs::grid::Grid2D;
use harvest::dfs::placement::{PlacementPolicy, Placer};
use harvest::dfs::store::BlockStore;
use harvest::disk::{DiskConfig, DiskPool, IoDir};
use harvest::jobs::length::LengthThresholds;
use harvest::net::{Fabric, NetworkConfig};
use harvest::signal::fft::{fft_in_place, ifft_in_place};
use harvest::signal::kmeans::kmeans;
use harvest::signal::Complex;
use harvest::sim::engine::EventQueue;
use harvest::sim::metrics::{empirical_cdf, Percentiles, StreamingStats};
use harvest::sim::time::{SimDuration, SimTime};
use harvest::trace::scaling::{calibrate, scale, ScalingKind};
use harvest::trace::timeseries::TimeSeries;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// FFT followed by inverse FFT reproduces any real signal.
    #[test]
    fn fft_round_trips(values in prop::collection::vec(-100.0f64..100.0, 1..128)) {
        let n = values.len().next_power_of_two();
        let mut data: Vec<Complex> = values.iter().map(|&x| Complex::from_real(x)).collect();
        data.resize(n, Complex::ZERO);
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        for (orig, z) in values.iter().zip(&data) {
            prop_assert!((z.re - orig).abs() < 1e-6);
            prop_assert!(z.im.abs() < 1e-6);
        }
    }

    /// Linear scaling never leaves [0, 1] and is monotone in the factor.
    #[test]
    fn scaling_stays_in_unit_interval(
        values in prop::collection::vec(0.0f64..1.0, 1..200),
        factor in 0.0f64..8.0,
    ) {
        let ts = TimeSeries::new(SimDuration::from_mins(2), values);
        let scaled = scale(&ts, ScalingKind::Linear, factor);
        prop_assert!(scaled.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
        let scaled_more = scale(&ts, ScalingKind::Linear, factor + 0.5);
        for (a, b) in scaled.values().iter().zip(scaled_more.values()) {
            prop_assert!(b >= a);
        }
    }

    /// Calibration hits any reachable target mean for both scalings.
    #[test]
    fn calibration_converges(
        values in prop::collection::vec(0.05f64..0.6, 10..100),
        target in 0.1f64..0.8,
    ) {
        let ts = TimeSeries::new(SimDuration::from_mins(2), values);
        for kind in [ScalingKind::Linear, ScalingKind::Root] {
            let param = calibrate(&[&ts], kind, target);
            let mean = scale(&ts, kind, param).mean();
            prop_assert!((mean - target).abs() < 0.01, "{kind}: {mean} vs {target}");
        }
    }

    /// K-Means assigns every point to an existing centroid and never
    /// leaves a cluster empty.
    #[test]
    fn kmeans_assignments_valid(
        points in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 2), 4..60),
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let result = kmeans(&mut rng, &points, k, 30);
        prop_assert_eq!(result.assignments.len(), points.len());
        prop_assert!(result.assignments.iter().all(|&a| a < result.k()));
        prop_assert!(result.cluster_sizes().iter().all(|&s| s > 0));
        prop_assert!(result.inertia >= 0.0);
    }

    /// The event queue pops in non-decreasing time order with FIFO ties,
    /// for any push sequence.
    #[test]
    fn event_queue_is_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated on equal times");
            }
        }
    }

    /// The 3x3 grid always partitions tenants, never loses space, and
    /// orders columns by reimage rate.
    #[test]
    fn grid_partitions_tenants(
        stats in prop::collection::vec((0.0f64..2.0, 0.0f64..1.0, 10u64..5000), 9..80),
    ) {
        let grid = Grid2D::from_stats(&stats);
        let member_total: usize = Grid2D::cells().map(|c| grid.members(c).len()).sum();
        prop_assert_eq!(member_total, stats.len());
        let space_total: u64 = Grid2D::cells().map(|c| grid.space(c)).sum();
        prop_assert_eq!(space_total, stats.iter().map(|s| s.2).sum::<u64>());
        // Column rate ordering.
        let max_rate_col0 = (0..stats.len())
            .filter(|&t| grid.cell_of(harvest::cluster::TenantId(t as u32)).col == 0)
            .map(|t| stats[t].0)
            .fold(f64::MIN, f64::max);
        let min_rate_col2 = (0..stats.len())
            .filter(|&t| grid.cell_of(harvest::cluster::TenantId(t as u32)).col == 2)
            .map(|t| stats[t].0)
            .fold(f64::MAX, f64::min);
        prop_assert!(max_rate_col0 <= min_rate_col2 + 1e-12);
    }

    /// Job-length thresholds from any history are ordered and classify
    /// consistently.
    #[test]
    fn thresholds_are_ordered(durs in prop::collection::vec(1u64..100_000, 3..300)) {
        let thresholds = LengthThresholds::from_history(
            durs.iter().map(|&d| SimDuration::from_secs(d)).collect(),
        );
        prop_assert!(thresholds.short_max <= thresholds.long_min);
        use harvest::jobs::JobLength;
        let mut last = JobLength::Short;
        for d in [1u64, 1_000, 200_000] {
            let len = thresholds.classify(SimDuration::from_secs(d));
            prop_assert!(len >= last, "classification not monotone");
            last = len;
        }
    }

    /// Streaming stats agree with exact computations.
    #[test]
    fn streaming_stats_match_exact(values in prop::collection::vec(-1e4f64..1e4, 1..300)) {
        let mut s = StreamingStats::new();
        for &v in &values {
            s.push(v);
        }
        let exact_mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean() - exact_mean).abs() < 1e-6 * (1.0 + exact_mean.abs()));
        let exact_min = values.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert_eq!(s.min(), exact_min);
    }

    /// Empirical CDFs are monotone and end at 1.
    #[test]
    fn cdf_is_monotone(values in prop::collection::vec(-100.0f64..100.0, 1..200)) {
        let cdf = empirical_cdf(values);
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone(values in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let mut p = Percentiles::new();
        p.extend(values.iter().copied());
        let q25 = p.quantile(0.25).unwrap();
        let q50 = p.quantile(0.50).unwrap();
        let q99 = p.quantile(0.99).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q99);
        let lo = values.iter().cloned().fold(f64::MAX, f64::min);
        let hi = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(q25 >= lo && q99 <= hi);
    }
}

/// A small, fixed datacenter for fabric properties (the properties are
/// over the random *flow populations*, not the topology).
fn fabric_dc() -> Datacenter {
    Datacenter::generate(
        &harvest::trace::datacenter::DatacenterProfile::dc(9).scaled(0.015),
        13,
    )
}

/// Builds a fabric carrying `flows` (src, dst, bytes, start-ms tuples
/// mapped into the datacenter) and pumps it to `probe_ms`.
fn loaded_fabric(dc: &Datacenter, flows: &[(usize, usize, u64, u64)], probe_ms: u64) -> Fabric {
    loaded_fabric_scoped(
        dc,
        flows,
        probe_ms,
        harvest::net::ReshareScope::Component,
        harvest::net::SharingMode::default(),
    )
}

fn loaded_fabric_scoped(
    dc: &Datacenter,
    flows: &[(usize, usize, u64, u64)],
    probe_ms: u64,
    scope: harvest::net::ReshareScope,
    mode: harvest::net::SharingMode,
) -> Fabric {
    let mut fabric = Fabric::from_datacenter(dc, &NetworkConfig::datacenter());
    fabric.set_reshare_scope(scope);
    fabric.set_sharing_mode(mode);
    let n = dc.n_servers();
    for (i, &(s, d, bytes, at)) in flows.iter().enumerate() {
        fabric.schedule_flow(
            SimTime::from_millis(at),
            ServerId((s % n) as u32),
            ServerId((d % n) as u32),
            // 1-64 MB so populations overlap at the probe instant.
            (bytes % 64 + 1) * 1024 * 1024,
            i as u64,
        );
    }
    fabric.pump(SimTime::from_millis(probe_ms));
    fabric
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Max-min allocation invariant 1 — capacity conservation: no link
    /// carries more than its capacity, for any flow population.
    #[test]
    fn fabric_conserves_link_capacity(
        flows in prop::collection::vec((0usize..500, 0usize..500, 0u64..64, 0u64..200), 1..60),
    ) {
        let dc = fabric_dc();
        let fabric = loaded_fabric(&dc, &flows, 100);
        for l in 0..fabric.topology().n_links() {
            let link = harvest::net::LinkId(l as u32);
            let cap = fabric.topology().capacity(link);
            let load = fabric.link_load(link);
            prop_assert!(
                load <= cap * (1.0 + 1e-9),
                "link {l} overloaded: {load} > {cap}"
            );
        }
    }

    /// Max-min allocation invariant 2 — work conservation: every active
    /// flow is bottlenecked by at least one saturated link on its path
    /// (otherwise it could be given more bandwidth).
    #[test]
    fn fabric_is_work_conserving(
        flows in prop::collection::vec((0usize..500, 0usize..500, 0u64..64, 0u64..200), 1..60),
    ) {
        let dc = fabric_dc();
        let fabric = loaded_fabric(&dc, &flows, 100);
        for id in fabric.active_flow_ids() {
            let rate = fabric.flow_rate(id).unwrap();
            prop_assert!(rate > 0.0, "active flow {id:?} starved");
            let path = fabric.flow_path(id).unwrap().to_vec();
            let bottlenecked = path.iter().any(|&l| {
                fabric.link_load(l) >= fabric.topology().capacity(l) * (1.0 - 1e-9)
            });
            prop_assert!(bottlenecked, "flow {id:?} has no saturated link");
        }
    }

    /// Max-min allocation invariant 3 — no flow exceeds its bottleneck
    /// fair share: a flow's rate never beats capacity/contenders on any
    /// of its links by more than the share ceded by flows frozen at
    /// other bottlenecks (i.e. it never exceeds the link capacity, and
    /// equal-demand flows sharing a link get equal rates).
    #[test]
    fn fabric_shares_fairly(
        flows in prop::collection::vec((0usize..500, 0u64..64), 2..40),
        src in 0usize..500,
    ) {
        // All flows leave one server, so its TX NIC is every flow's
        // bottleneck: rates must be (nearly) identical.
        let dc = fabric_dc();
        let shaped: Vec<(usize, usize, u64, u64)> = flows
            .iter()
            .map(|&(d, b)| (src, if d % dc.n_servers() == src % dc.n_servers() { d + 1 } else { d }, b, 0))
            .collect();
        let fabric = loaded_fabric(&dc, &shaped, 0);
        let rates: Vec<f64> = fabric
            .active_flow_ids()
            .iter()
            .filter_map(|&id| fabric.flow_rate(id))
            .collect();
        if rates.len() >= 2 {
            let (min, max) = rates
                .iter()
                .fold((f64::MAX, f64::MIN), |(lo, hi), &r| (lo.min(r), hi.max(r)));
            prop_assert!(
                (max - min) / max < 1e-9,
                "unequal shares on a single bottleneck: {min} vs {max}"
            );
        }
    }

    /// The fabric replays bit-identically for identical inputs.
    #[test]
    fn fabric_replays_deterministically(
        flows in prop::collection::vec((0usize..500, 0usize..500, 0u64..64, 0u64..500), 1..40),
    ) {
        let dc = fabric_dc();
        let ends = |fl: &[(usize, usize, u64, u64)]| {
            let mut f = loaded_fabric(&dc, fl, 0);
            f.drain()
                .into_iter()
                .map(|c| (c.tag, c.at.as_millis()))
                .collect::<Vec<_>>()
        };
        let a = ends(&flows);
        let b = ends(&flows);
        prop_assert_eq!(a.len(), flows.len(), "flows went missing");
        prop_assert_eq!(a, b);
    }

    /// The incremental-allocator oracle: component-scoped re-sharing is
    /// *bitwise* identical to the reference global recompute — same
    /// rates (compared by bit pattern), same versions, same completion
    /// schedule — across randomized storm workloads. Pinned to
    /// `SharingMode::Filling`: versions are a filling-tier concept
    /// (frozen while a flow is enrolled in an analytic group), and this
    /// oracle compares the two *filling* scopes; the analytic tier has
    /// its own oracles below.
    #[test]
    fn fabric_component_reshare_matches_global_oracle(
        flows in prop::collection::vec((0usize..500, 0usize..500, 0u64..64, 0u64..400), 1..60),
        probe_ms in 0u64..400,
    ) {
        let dc = fabric_dc();
        let run = |scope: harvest::net::ReshareScope| {
            let mut f = loaded_fabric_scoped(
                &dc,
                &flows,
                probe_ms,
                scope,
                harvest::net::SharingMode::Filling,
            );
            let probe: Vec<(u64, u64, u64)> = f
                .active_flow_ids()
                .iter()
                .map(|&id| (
                    id.0,
                    f.flow_rate(id).unwrap().to_bits(),
                    f.flow_version(id).unwrap(),
                ))
                .collect();
            let ends: Vec<(u64, harvest::sim::SimTime)> =
                f.drain().into_iter().map(|c| (c.tag, c.at)).collect();
            (probe, ends)
        };
        let comp = run(harvest::net::ReshareScope::Component);
        let glob = run(harvest::net::ReshareScope::Global);
        prop_assert_eq!(&comp.0, &glob.0, "mid-storm rates/versions diverged");
        prop_assert_eq!(&comp.1, &glob.1, "completion schedules diverged");
    }

    /// The analytic-tier oracle on its home turf: every flow leaves one
    /// server at t = 0, so the source NIC is the whole component's
    /// single bottleneck and the classifier must promote it (singleton
    /// components are left on filling — the fast path needs at least
    /// two concurrent flows to have anything to share). Mid-storm rates
    /// are *bitwise* identical to the global filling reference (both
    /// tiers compute `capacity / n` on identical populations) and
    /// every flow's completion *time* matches exactly. Completions
    /// landing on the same millisecond may pop in a different order
    /// (the analytic heap breaks ties by fair-work key, filling's
    /// queue by push order — the integer clock erases the sub-ms
    /// distinction), so schedules are compared sorted by (time, tag).
    #[test]
    fn fabric_single_bottleneck_analytic_matches_global_bitwise(
        flows in prop::collection::vec((0usize..500, 0u64..64), 2..50),
        src in 0usize..500,
        probe_ms in 0u64..200,
    ) {
        let dc = fabric_dc();
        let n = dc.n_servers();
        let shaped: Vec<(usize, usize, u64, u64)> = flows
            .iter()
            .map(|&(d, b)| {
                (src, if d % n == src % n { d + 1 } else { d }, b, 0)
            })
            .collect();
        let run = |scope, mode| {
            let mut f = loaded_fabric_scoped(&dc, &shaped, probe_ms, scope, mode);
            let probe: Vec<(u64, u64)> = f
                .active_flow_ids()
                .iter()
                .map(|&id| (id.0, f.flow_rate(id).unwrap().to_bits()))
                .collect();
            let mut ends: Vec<(harvest::sim::SimTime, u64)> =
                f.drain().into_iter().map(|c| (c.at, c.tag)).collect();
            ends.sort();
            (probe, ends, f.stats().analytic_events)
        };
        let ana = run(
            harvest::net::ReshareScope::Component,
            harvest::net::SharingMode::Auto,
        );
        let glob = run(
            harvest::net::ReshareScope::Global,
            harvest::net::SharingMode::Filling,
        );
        prop_assert_eq!(&ana.0, &glob.0, "mid-storm rates diverged");
        prop_assert_eq!(&ana.1, &glob.1, "completion schedules diverged");
        prop_assert!(ana.2 > 0, "classifier never promoted a single-bottleneck component");
    }

    /// The analytic tier on *mixed* workloads (arbitrary src/dst pairs,
    /// so components may have several bottlenecks and only some
    /// promote): `Auto` conserves capacity and completes the same flows
    /// as the global filling reference, with every completion within
    /// 1 ms. Rates are bitwise identical whichever tier serves a
    /// component; completion *times* may differ by float reassociation
    /// (filling folds `(r - a) - b`, the fair-work clock computes
    /// `r - (a + b)`), which the millisecond clock rounds away —
    /// documented tolerance: one clock quantum.
    #[test]
    fn fabric_mixed_analytic_matches_global_schedule(
        flows in prop::collection::vec((0usize..500, 0usize..500, 0u64..64, 0u64..400), 1..60),
        probe_ms in 0u64..400,
    ) {
        let dc = fabric_dc();
        let run = |scope, mode| {
            let mut f = loaded_fabric_scoped(&dc, &flows, probe_ms, scope, mode);
            for l in 0..f.topology().n_links() {
                let link = harvest::net::LinkId(l as u32);
                assert!(
                    f.link_load(link) <= f.topology().capacity(link) * (1.0 + 1e-9),
                    "link {l} overloaded under analytic sharing"
                );
            }
            let mut ends: Vec<(u64, i64)> = f
                .drain()
                .into_iter()
                .map(|c| (c.tag, c.at.as_millis() as i64))
                .collect();
            ends.sort();
            ends
        };
        let ana = run(
            harvest::net::ReshareScope::Component,
            harvest::net::SharingMode::Auto,
        );
        let glob = run(
            harvest::net::ReshareScope::Global,
            harvest::net::SharingMode::Filling,
        );
        prop_assert_eq!(ana.len(), glob.len(), "flow counts diverged");
        for (a, g) in ana.iter().zip(glob.iter()) {
            prop_assert_eq!(a.0, g.0, "completion order diverged");
            prop_assert!(
                (a.1 - g.1).abs() <= 1,
                "flow {} finished at {} analytic vs {} filling (> 1 ms apart)",
                a.0, a.1, g.1
            );
        }
    }
}

/// Builds a pool of `N_DISKS` carrying `streams` ((server, dir, bytes,
/// start-ms) tuples) under per-disk primary utilizations drawn from
/// `utils`, and pumps it to `probe_ms`.
const N_DISKS: usize = 48;

fn loaded_pool(
    streams: &[(usize, u64, u64, u64)],
    utils: &[(usize, u64)],
    probe_ms: u64,
) -> DiskPool {
    loaded_pool_scoped(
        streams,
        utils,
        probe_ms,
        harvest::disk::ReshareScope::Channel,
        harvest::disk::SharingMode::default(),
    )
}

fn loaded_pool_scoped(
    streams: &[(usize, u64, u64, u64)],
    utils: &[(usize, u64)],
    probe_ms: u64,
    scope: harvest::disk::ReshareScope,
    mode: harvest::disk::SharingMode,
) -> DiskPool {
    let mut pool = DiskPool::new(N_DISKS, &DiskConfig::datacenter());
    pool.set_reshare_scope(scope);
    pool.set_sharing_mode(mode);
    for &(server, centi_util) in utils {
        pool.set_primary_util(
            harvest::sim::SimTime::ZERO,
            ServerId((server % N_DISKS) as u32),
            centi_util as f64 / 100.0,
        );
    }
    for (i, &(server, write, bytes, at)) in streams.iter().enumerate() {
        pool.schedule_stream(
            harvest::sim::SimTime::from_millis(at),
            ServerId((server % N_DISKS) as u32),
            if write % 2 == 1 {
                IoDir::Write
            } else {
                IoDir::Read
            },
            // 1-64 MB so populations overlap at the probe instant.
            (bytes % 64 + 1) * 1024 * 1024,
            i as u64,
        );
    }
    pool.pump(harvest::sim::SimTime::from_millis(probe_ms));
    pool
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Disk invariant 1 — per-channel capacity conservation: secondary
    /// streams never carry more than what the throttle policy leaves
    /// them, which never exceeds the channel's raw capacity.
    #[test]
    fn disks_conserve_channel_capacity(
        streams in prop::collection::vec((0usize..500, 0u64..2, 0u64..64, 0u64..200), 1..60),
        utils in prop::collection::vec((0usize..500, 0u64..100), 0..16),
    ) {
        let pool = loaded_pool(&streams, &utils, 100);
        for s in 0..N_DISKS {
            let server = ServerId(s as u32);
            for dir in [IoDir::Read, IoDir::Write] {
                let load = pool.channel_load(server, dir);
                let allowed = pool.secondary_capacity(server, dir);
                prop_assert!(
                    load <= allowed * (1.0 + 1e-9) + 1e-9,
                    "disk {s} {dir:?} overloaded: {load} > {allowed}"
                );
                prop_assert!(allowed <= pool.capacity(dir) * (1.0 + 1e-9));
            }
        }
    }

    /// Disk invariant 2 — work conservation: a channel with active
    /// streams hands out exactly the bandwidth the policy allows (a
    /// throttled channel hands out its floor — possibly zero — and an
    /// unthrottled one is saturated).
    #[test]
    fn disks_are_work_conserving(
        streams in prop::collection::vec((0usize..500, 0u64..2, 0u64..64, 0u64..200), 1..60),
        utils in prop::collection::vec((0usize..500, 0u64..100), 0..16),
    ) {
        let pool = loaded_pool(&streams, &utils, 100);
        for s in 0..N_DISKS {
            let server = ServerId(s as u32);
            for dir in [IoDir::Read, IoDir::Write] {
                if pool.channel_streams(server, dir) == 0 {
                    continue;
                }
                let load = pool.channel_load(server, dir);
                let allowed = pool.secondary_capacity(server, dir);
                prop_assert!(
                    load >= allowed * (1.0 - 1e-9) - 1e-9,
                    "disk {s} {dir:?} not work-conserving: {load} < {allowed}"
                );
            }
        }
    }

    /// Disk invariant 3 — fair sharing: concurrent streams on one
    /// channel run at (nearly) identical rates.
    #[test]
    fn disks_share_fairly(
        streams in prop::collection::vec((0u64..2, 0u64..64), 2..40),
        server in 0usize..500,
        util in 0u64..100,
    ) {
        let shaped: Vec<(usize, u64, u64, u64)> = streams
            .iter()
            .map(|&(write, bytes)| (server, write, bytes, 0))
            .collect();
        let pool = loaded_pool(&shaped, &[(server, util)], 0);
        for dir in [IoDir::Read, IoDir::Write] {
            let rates: Vec<f64> = pool
                .active_stream_ids()
                .iter()
                .filter(|&&id| pool.stream_channel(id).map(|(_, d)| d) == Some(dir))
                .filter_map(|&id| pool.stream_rate(id))
                .collect();
            if rates.len() >= 2 {
                let (min, max) = rates
                    .iter()
                    .fold((f64::MAX, f64::MIN), |(lo, hi), &r| (lo.min(r), hi.max(r)));
                prop_assert!(
                    max == 0.0 || (max - min) / max < 1e-9,
                    "unequal shares on one channel: {min} vs {max}"
                );
            }
        }
    }

    /// The disk-pool oracle: channel-scoped re-sharing is *bitwise*
    /// identical to the reference global recompute (every channel
    /// re-shared on every event) — same rates, versions, and completion
    /// schedule — across randomized storm workloads. Utilizations are
    /// capped below the throttle threshold so drain() terminates.
    /// Pinned to `SharingMode::Filling`: versions are a filling-tier
    /// concept (frozen while a stream is enrolled in an analytic
    /// group); the analytic tier has its own oracle below.
    #[test]
    fn disk_channel_reshare_matches_global_oracle(
        streams in prop::collection::vec((0usize..500, 0u64..2, 0u64..64, 0u64..400), 1..60),
        utils in prop::collection::vec((0usize..500, 0u64..45), 0..8),
        probe_ms in 0u64..400,
    ) {
        let run = |scope: harvest::disk::ReshareScope| {
            let mut p = loaded_pool_scoped(
                &streams,
                &utils,
                probe_ms,
                scope,
                harvest::disk::SharingMode::Filling,
            );
            let probe: Vec<(u64, u64, u64)> = p
                .active_stream_ids()
                .iter()
                .map(|&id| (
                    id.0,
                    p.stream_rate(id).unwrap().to_bits(),
                    p.stream_version(id).unwrap(),
                ))
                .collect();
            let ends: Vec<(u64, harvest::sim::SimTime)> =
                p.drain().into_iter().map(|c| (c.tag, c.at)).collect();
            (probe, ends)
        };
        let chan = run(harvest::disk::ReshareScope::Channel);
        let glob = run(harvest::disk::ReshareScope::Global);
        prop_assert_eq!(&chan.0, &glob.0, "mid-storm rates/versions diverged");
        prop_assert_eq!(&chan.1, &glob.1, "completion schedules diverged");
    }

    /// The disk analytic-tier oracle: channels are single-bottleneck by
    /// construction, so under `Auto` every occupied channel promotes.
    /// Mid-storm rates are *bitwise* identical to the global filling
    /// reference and every completion *time* matches exactly (both
    /// tiers divide the same capacity by the same population; the
    /// millisecond clock rounds away the reassociation drift).
    /// Same-millisecond completions may pop in a different order
    /// across tiers, so schedules are compared sorted by (time, tag).
    #[test]
    fn disk_analytic_matches_global_oracle(
        streams in prop::collection::vec((0usize..500, 0u64..2, 0u64..64, 0u64..400), 1..60),
        utils in prop::collection::vec((0usize..500, 0u64..45), 0..8),
        probe_ms in 0u64..400,
    ) {
        let run = |scope, mode| {
            let mut p = loaded_pool_scoped(&streams, &utils, probe_ms, scope, mode);
            let probe: Vec<(u64, u64)> = p
                .active_stream_ids()
                .iter()
                .map(|&id| (id.0, p.stream_rate(id).unwrap().to_bits()))
                .collect();
            let mut ends: Vec<(harvest::sim::SimTime, u64)> =
                p.drain().into_iter().map(|c| (c.at, c.tag)).collect();
            ends.sort();
            (probe, ends)
        };
        let ana = run(
            harvest::disk::ReshareScope::Channel,
            harvest::disk::SharingMode::Auto,
        );
        let glob = run(
            harvest::disk::ReshareScope::Global,
            harvest::disk::SharingMode::Filling,
        );
        prop_assert_eq!(&ana.0, &glob.0, "mid-storm rates diverged");
        prop_assert_eq!(&ana.1, &glob.1, "completion schedules diverged");
    }

    /// The disk pool replays bit-identically for identical inputs.
    #[test]
    fn disks_replay_deterministically(
        streams in prop::collection::vec((0usize..500, 0u64..2, 0u64..64, 0u64..500), 1..40),
        utils in prop::collection::vec((0usize..500, 0u64..45), 0..8),
    ) {
        // Utilizations capped below the throttle threshold so every
        // stream finishes and drain() terminates.
        let ends = |st: &[(usize, u64, u64, u64)]| {
            let mut pool = loaded_pool(st, &utils, 0);
            pool.drain()
                .into_iter()
                .map(|c| (c.tag, c.at.as_millis()))
                .collect::<Vec<_>>()
        };
        let a = ends(&streams);
        let b = ends(&streams);
        prop_assert_eq!(a.len(), streams.len(), "streams went missing");
        prop_assert_eq!(a, b);
    }
}

/// A small, fixed DC-9 scale-down for the scheduler tick-sweep oracle
/// (the properties are over the random *workloads*, not the cluster).
fn sched_dc() -> (
    harvest::cluster::Datacenter,
    harvest::cluster::UtilizationView,
) {
    let dc = Datacenter::generate(
        &harvest::trace::datacenter::DatacenterProfile::dc(9).scaled(0.015),
        17,
    );
    let view = harvest::cluster::UtilizationView::unscaled(&dc);
    (dc, view)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tick-sweep oracle: the change-driven tick
    /// ([`harvest::sched::TickSweep::Incremental`] — occupied-server
    /// index, active-disk index + sample-change filtering, precomputed
    /// fleet series) must be *bitwise* indistinguishable from the
    /// full-fleet reference sweeps — identical per-job results
    /// (makespans included), kill counts and per-server kill
    /// attribution, task placements, utilization accounting down to the
    /// float bits, and fabric/disk stats — across randomized workloads
    /// and policies on a scaled DC-9 with both transfer models on.
    #[test]
    fn sched_incremental_tick_matches_full_sweep_oracle(
        seed in 0u64..1_000,
        gap_secs in 120u64..900,
        policy_pick in 0u64..2,
    ) {
        use harvest::sched::policy::SchedPolicy;
        use harvest::sched::sim::{SchedSim, SchedSimConfig, TickSweep};
        use harvest::jobs::workload::Workload;
        use harvest::sim::rng::stream_rng;

        let (dc, view) = sched_dc();
        let policy = if policy_pick == 0 {
            SchedPolicy::PrimaryAware
        } else {
            SchedPolicy::History
        };
        let horizon = harvest::sim::SimDuration::from_hours(1);
        let mut wl_rng = stream_rng(seed, "tick-oracle-wl");
        let workload = Workload::poisson(
            &mut wl_rng,
            harvest::jobs::tpcds::tpcds_suite(),
            harvest::sim::SimDuration::from_secs(gap_secs),
            horizon,
        );
        let run = |sweep: TickSweep| {
            let mut cfg = SchedSimConfig::testbed(policy, seed);
            cfg.horizon = horizon;
            cfg.drain = harvest::sim::SimDuration::from_hours(2);
            cfg.network = Some(NetworkConfig::datacenter());
            cfg.disk = Some(DiskConfig::datacenter());
            cfg.sweep = sweep;
            SchedSim::new(&dc, &view, &workload, cfg).run()
        };
        let inc = run(TickSweep::Incremental);
        let full = run(TickSweep::Full);
        prop_assert_eq!(inc.total_kills, full.total_kills, "kill counts diverged");
        prop_assert_eq!(inc.tasks_started, full.tasks_started, "placements diverged");
        let makespans = |s: &harvest::sched::SimStats| -> Vec<Option<u64>> {
            s.jobs
                .iter()
                .map(|j| j.execution_time.map(|d| d.as_millis()))
                .collect()
        };
        prop_assert_eq!(makespans(&inc), makespans(&full), "makespans diverged");
        prop_assert_eq!(
            inc.avg_total_utilization.to_bits(),
            full.avg_total_utilization.to_bits(),
            "total-utilization bits diverged"
        );
        prop_assert_eq!(
            inc.avg_primary_utilization.to_bits(),
            full.avg_primary_utilization.to_bits(),
            "primary-utilization bits diverged"
        );
        // Belt and braces: everything else (per-job results, per-server
        // kills, fabric and disk stats) via the derived equality.
        prop_assert_eq!(inc, full, "sweep trajectories diverged");
    }

    /// The precomputed fleet-utilization series serves exactly what the
    /// per-server sweep it replaced computes, bitwise, at any instant.
    #[test]
    fn fleet_series_matches_scan_bitwise(secs in 0u64..90 * 86_400) {
        let (_dc, view) = sched_dc();
        let t = harvest::sim::SimTime::from_secs(secs);
        prop_assert_eq!(
            view.fleet_util(t).to_bits(),
            view.fleet_util_scan(t).to_bits(),
            "fleet lookup diverged from the scan at {}s", secs
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Algorithm 2 placements never duplicate a server and never exceed
    /// capacity, for arbitrary writers and replication levels.
    #[test]
    fn history_placement_invariants(seed in 0u64..50, replication in 1usize..6) {
        let dc = harvest::cluster::Datacenter::generate(
            &harvest::trace::datacenter::DatacenterProfile::dc(9).scaled(0.03),
            7,
        );
        let placer = Placer::new(&dc, PlacementPolicy::History);
        let mut store = BlockStore::new(&dc);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..50u32 {
            let writer = harvest::cluster::ServerId(
                (seed as u32 * 31 + i) % dc.n_servers() as u32,
            );
            if let Some(p) = placer.place_new(&mut rng, &store, writer, replication, None) {
                prop_assert_eq!(p.servers.len(), replication);
                let mut dedup = p.servers.clone();
                dedup.sort();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), replication, "duplicate replica servers");
                store.create_block(&p.servers);
            }
        }
        // Space accounting never goes negative (has_space guards it).
        for s in &dc.servers {
            prop_assert!(store.free_on(s.id) <= s.harvest_blocks);
        }
    }
}

// --- observability: export → parse round trips -------------------------

/// Characters chosen to stress the JSON escaper: quotes, backslashes,
/// control characters, multibyte unicode (including an astral-plane
/// glyph), structural punctuation, and plain ASCII.
const HOSTILE: &[char] = &[
    '"', '\\', '\n', '\r', '\t', '\u{0}', '\u{1b}', '{', '}', '[', ']', ',', ':', 'é', '→', '日',
    '𝕏', 'a', 'Z', ' ',
];

fn hostile_string(picks: &[usize]) -> String {
    picks.iter().map(|&i| HOSTILE[i % HOSTILE.len()]).collect()
}

proptest! {
    /// Arbitrary hostile names — used as counter, gauge, sim-track, and
    /// wall-track names — survive both exporters and come back intact
    /// through `obs::json::parse`.
    #[test]
    fn obs_exports_round_trip_hostile_names(
        names in prop::collection::vec(prop::collection::vec(0usize..1000, 0..12), 1..5),
    ) {
        use harvest::sim::obs::{json, Recorder};
        let names: Vec<String> = names.iter().map(|p| hostile_string(p)).collect();
        let mut rec = Recorder::new("props");
        for (i, n) in names.iter().enumerate() {
            let c = rec.counter(n);
            rec.add(c, i as u64 + 1);
            let g = rec.gauge(n);
            rec.gauge_at(g, SimTime::from_millis(1), i as f64);
            rec.track(n);
            rec.wall_span(n, n, 0, 5);
        }
        let metrics = json::parse(&rec.metrics_json()).map_err(|e| format!("metrics: {e}"))?;
        let counters = metrics.get("counters").ok_or("no counters")?;
        for n in &names {
            // Interned by name: the last add under a duplicate name wins
            // the id, but every name must be present and parse back to
            // the exact same string.
            prop_assert!(
                counters.get(n).is_some(),
                "counter {n:?} lost in metrics round trip"
            );
        }
        let trace = json::parse(&rec.chrome_trace_json()).map_err(|e| format!("trace: {e}"))?;
        let events = trace.get("traceEvents").and_then(|v| v.as_arr()).ok_or("no events")?;
        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        for n in &names {
            prop_assert!(
                thread_names.iter().filter(|t| *t == n).count() >= 2,
                "track name {n:?} lost in trace round trip (sim + wall)"
            );
        }
    }

    /// Randomized wait-state histories round-trip through the Chrome
    /// trace into `obs::analyze` with exact conservation, and the
    /// critical path never exceeds the makespan.
    #[test]
    fn obs_state_round_trip_conserves(
        entities in prop::collection::vec(prop::collection::vec((0usize..5, 1u64..100), 1..6), 1..20),
    ) {
        use harvest::sim::obs::{analyze, Recorder};
        const VOCAB: [&str; 5] =
            ["queued", "running", "blocked_on_net", "blocked_on_disk_read", "throttle_parked"];
        let mut rec = Recorder::new("props");
        let st = rec.state_track("props/entity");
        let mut lifetime_ms = 0u64;
        for (e, segs) in entities.iter().enumerate() {
            let mut at = (e as u64) * 13;
            let birth = at;
            for &(s, dur) in segs {
                rec.state_enter(st, e as u64, VOCAB[s], SimTime::from_millis(at));
                at += dur;
            }
            rec.state_exit(st, e as u64, SimTime::from_millis(at));
            lifetime_ms += at - birth;
        }
        let a = analyze::analyze_recorder(&rec).map_err(|e| e.to_string())?;
        prop_assert_eq!(a.states.len(), 1);
        let sb = &a.states[0];
        prop_assert_eq!(sb.entities, entities.len());
        prop_assert_eq!(sb.conserved, entities.len(), "conservation must be exact");
        prop_assert_eq!(sb.lifetime_us, lifetime_ms * 1_000);
        prop_assert!(sb.critical_us <= sb.makespan_us);
    }
}

// --- fault injection: determinism, no-fault oracle, conservation --------

/// A small fig16 scale so the faulted-report properties run in seconds.
fn fault_scale(
    jobs: usize,
    faults: Option<harvest::sim::fault::FaultProfile>,
) -> harvest::core::Scale {
    let mut s = harvest::core::Scale::quick();
    s.dc_scale = 0.02;
    s.availability_days = 1;
    s.utilizations = vec![0.45];
    s.jobs = jobs;
    s.faults = faults;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Same fault profile + seed ⇒ byte-identical report at any worker
    /// count: the fault path draws its plan from a dedicated stream per
    /// run, so `par_map`'s order-preserving writes keep thread count
    /// unobservable even mid-storm. Without a profile the report must
    /// carry no fault note at all (the no-fault stdout oracle).
    #[test]
    fn faulted_reports_identical_at_any_jobs(
        seed in 0u64..1_000,
        pick in 0usize..4,
        jobs in 2usize..8,
    ) {
        let profile = harvest::sim::fault::FaultProfile::ALL[pick];
        let render = |jobs: usize, faults| {
            let mut s = fault_scale(jobs, faults);
            s.seed = seed;
            harvest::core::run_experiment("fig16", &s).expect("fig16 renders")
        };
        let armed_seq = render(1, Some(profile));
        let armed_par = render(jobs, Some(profile));
        prop_assert_eq!(&armed_seq, &armed_par, "faulted report depends on --jobs");
        prop_assert!(
            armed_seq.contains("fault profile"),
            "armed report lacks its fault-accounting note"
        );
        let clean_seq = render(1, None);
        let clean_par = render(jobs, None);
        prop_assert_eq!(&clean_seq, &clean_par, "clean report depends on --jobs");
        prop_assert!(
            !clean_seq.contains("fault profile"),
            "unarmed report mentions faults"
        );
    }

    /// The no-fault oracle at the experiment layer: a plan with zero
    /// events is bitwise inert no matter how its reaction knobs are
    /// set — retry budget, backoff, and shedding only matter once an
    /// event fires.
    #[test]
    fn empty_fault_plan_is_bitwise_inert(
        seed in 0u64..1_000,
        retries in 0u32..8,
        shed in 1usize..64,
    ) {
        use harvest::core::experiments::durability::run_loss;
        use harvest::sim::fault::FaultPlan;
        let dc = Datacenter::generate(
            &harvest::trace::datacenter::DatacenterProfile::dc(3).scaled(0.01),
            11,
        );
        let mut knobs = FaultPlan::none();
        knobs.max_retries = retries;
        knobs.shed_inflight_above = Some(shed);
        let mode = harvest::sim::SharingMode::Auto;
        let a = run_loss(
            &dc, PlacementPolicy::Stock, 3, 2, seed, 0, None, None, mode, &FaultPlan::none(),
        );
        let b = run_loss(&dc, PlacementPolicy::Stock, 3, 2, seed, 0, None, None, mode, &knobs);
        prop_assert_eq!(a.percent.to_bits(), b.percent.to_bits());
        prop_assert_eq!(a.blocks, b.blocks);
        prop_assert_eq!(b.faults_injected, 0);
        prop_assert_eq!(b.repairs_aborted, 0);
        prop_assert_eq!(b.fault_retries, 0);
        prop_assert_eq!(b.retries_exhausted, 0);
    }

    /// Faulted recorded traces still conserve: every repair entity's
    /// states — `failed` and `retrying` included — tile its lifetime
    /// exactly, for any profile and seed.
    #[test]
    fn faulted_traces_conserve(seed in 0u64..1_000, pick in 0usize..4) {
        use harvest::dfs::durability::{simulate_durability_recorded, DurabilityConfig};
        use harvest::sim::fault::ClusterShape;
        use harvest::sim::obs::{analyze, Recorder};
        let profile = harvest::sim::fault::FaultProfile::ALL[pick];
        let dc = Datacenter::generate(
            &harvest::trace::datacenter::DatacenterProfile::dc(9).scaled(0.01),
            11,
        );
        let shape = ClusterShape {
            n_servers: dc.n_servers(),
            rack_size: harvest::cluster::datacenter::RACK_SIZE as usize,
        };
        let mut cfg = DurabilityConfig::paper(PlacementPolicy::Stock, 3, seed);
        cfg.months = 2;
        cfg.faults = profile.plan(seed, shape, SimDuration::from_days(60));
        let (r, rec) = simulate_durability_recorded(&dc, &cfg, Recorder::new("fault-prop"));
        prop_assert!(r.faults_injected > 0, "{} never fired", profile.name());
        let a = analyze::analyze_recorder(&rec).map_err(|e| e.to_string())?;
        prop_assert!(a.conserved(), "faulted trace failed conservation");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Panic isolation: force exactly one task to panic at a random
    /// index and the supervisor quarantines exactly that task — every
    /// other slot's result is bitwise identical to a clean run, at any
    /// worker count.
    #[test]
    fn supervised_map_quarantines_only_the_panicking_task(
        n in 1usize..40,
        panic_pick in 0usize..1_000,
        jobs in 1usize..5,
    ) {
        use harvest::sim::supervise::{par_map_supervised, RetryBudget, SuperviseConfig};
        let panic_at = panic_pick % n;
        let tasks: Vec<u64> = (0..n as u64).collect();
        let cfg = SuperviseConfig {
            retry: RetryBudget { max_retries: 1, base_ms: 1, cap_ms: 2 },
            ..SuperviseConfig::default()
        };
        let value = |t: u64| t.wrapping_mul(0x9e37_79b9_7f4a_7c15) as f64 / 7.0;
        let out = par_map_supervised(jobs, &tasks, &cfg, |i, &t, _cancel| {
            if i == panic_at {
                panic!("forced panic at {i}");
            }
            value(t)
        });
        prop_assert_eq!(out.quarantined.len(), 1, "exactly one quarantine");
        prop_assert_eq!(out.quarantined[0].task, panic_at);
        // One retry was spent before giving up (max_retries = 1).
        prop_assert_eq!(out.quarantined[0].attempts, 2);
        prop_assert!(out.quarantined[0].payload.contains("forced panic"));
        for (i, (slot, &t)) in out.results.iter().zip(&tasks).enumerate() {
            if i == panic_at {
                prop_assert!(slot.is_none(), "quarantined slot must be empty");
            } else {
                let got = slot.expect("healthy task has a result");
                prop_assert_eq!(got.to_bits(), value(t).to_bits());
            }
        }
    }
}
