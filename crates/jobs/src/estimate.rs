//! The max-concurrent-resources estimate (Algorithm 1, line 4).
//!
//! "We estimate the maximum amount of concurrent resources that the job
//! will need using a breadth-first traversal of the job's directed
//! acyclic graph." Stages at the same BFS level can run at the same time,
//! so the estimate is the largest per-level task sum. For Figure 7's
//! TPC-DS query 19 DAG the estimate is 469 concurrent containers.

use crate::dag::DagJob;

/// Estimates the maximum number of concurrently runnable tasks via a
/// breadth-first traversal: stages on the same dependency level run
/// together, and the widest level bounds the job's concurrency.
pub fn max_concurrent_tasks(job: &DagJob) -> u32 {
    let levels = job.levels();
    let max_level = levels.iter().copied().max().unwrap_or(0);
    let mut per_level = vec![0u64; max_level + 1];
    for (i, s) in job.stages.iter().enumerate() {
        per_level[levels[i]] += s.tasks as u64;
    }
    per_level
        .into_iter()
        .max()
        .unwrap_or(0)
        .min(u32::MAX as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{stage, DagJob};

    #[test]
    fn widest_level_wins() {
        let j = DagJob::new(
            "j",
            vec![
                stage("m1", 100, 10, vec![]),
                stage("m2", 200, 10, vec![]),
                stage("r1", 50, 10, vec![0, 1]),
            ],
        );
        // Level 0 holds 100 + 200 = 300 tasks, level 1 holds 50.
        assert_eq!(max_concurrent_tasks(&j), 300);
    }

    #[test]
    fn deep_chain_is_narrow() {
        let j = DagJob::new(
            "chain",
            vec![
                stage("a", 7, 10, vec![]),
                stage("b", 3, 10, vec![0]),
                stage("c", 5, 10, vec![1]),
            ],
        );
        assert_eq!(max_concurrent_tasks(&j), 7);
    }

    #[test]
    fn single_stage() {
        let j = DagJob::new("one", vec![stage("m", 42, 10, vec![])]);
        assert_eq!(max_concurrent_tasks(&j), 42);
    }
}
