//! # harvest — history-based harvesting of spare cycles and storage
//!
//! A Rust reproduction of *"History-Based Harvesting of Spare Cycles and
//! Storage in Large-Scale Datacenters"* (Zhang et al., OSDI 2016).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`trace`] — synthetic primary-tenant utilization traces, disk-reimage
//!   histories, and the ten datacenter profiles (DC-0 … DC-9);
//! * [`signal`] — FFT, spectral analysis, the periodic/constant/
//!   unpredictable classifier, and K-Means clustering;
//! * [`sim`] — the deterministic discrete-event engine, distributions,
//!   and metrics;
//! * [`net`] — the flow-level datacenter network fabric (hierarchical
//!   topology, max-min fair sharing, event-driven flows) that repair,
//!   remote reads, and shuffles ride on;
//! * [`disk`] — the shared-disk I/O model (per-server read/write
//!   channels, primary-tenant contention, the §6 isolation-manager
//!   throttle) the same byte movements land on;
//! * [`cluster`] — the datacenter model (servers, tenants, environments,
//!   racks, resource reserves);
//! * [`jobs`] — DAG batch jobs, concurrency estimation, job-length typing,
//!   and the TPC-DS-like workload suite;
//! * [`sched`] — the primary-tenant-aware cluster scheduler with
//!   history-based class selection (YARN-H / Tez-H);
//! * [`dfs`] — the co-location-aware distributed block store with
//!   history-based replica placement (HDFS-H);
//! * [`service`] — the latency-critical service model used to evaluate
//!   primary-tenant protection;
//! * [`core`] — the experiment harness that regenerates every table and
//!   figure in the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use harvest::prelude::*;
//!
//! // Build a scaled-down datacenter from the DC-9 profile and classify
//! // its primary tenants from one month of utilization history.
//! let profile = DatacenterProfile::dc(9).scaled(0.02);
//! let dc = Datacenter::generate(&profile, 42);
//! let svc = ClusteringService::build(&dc, 42);
//! assert!(svc.class_count() > 0);
//! ```

pub use harvest_cluster as cluster;
pub use harvest_core as core;
pub use harvest_dfs as dfs;
pub use harvest_disk as disk;
pub use harvest_jobs as jobs;
pub use harvest_net as net;
pub use harvest_sched as sched;
pub use harvest_service as service;
pub use harvest_signal as signal;
pub use harvest_sim as sim;
pub use harvest_trace as trace;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use harvest_cluster::{Datacenter, Server, ServerId, TenantId};
    pub use harvest_dfs::placement::PlacementPolicy;
    pub use harvest_jobs::{DagJob, JobLength};
    pub use harvest_sched::classes::ClusteringService;
    pub use harvest_sched::policy::SchedPolicy;
    pub use harvest_signal::classify::UtilizationPattern;
    pub use harvest_sim::{SimDuration, SimTime};
    pub use harvest_trace::datacenter::DatacenterProfile;
    pub use harvest_trace::timeseries::TimeSeries;
}
