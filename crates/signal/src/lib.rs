//! Signal processing for primary-tenant utilization histories.
//!
//! The paper identifies trends in tenant utilization "using signal
//! processing. Specifically, we use the Fast Fourier Transform (FFT) on the
//! data from each primary tenant individually" (§3.2), then groups tenants
//! into *periodic*, *constant*, and *unpredictable* patterns and clusters
//! the frequency profiles within each pattern with K-Means (§4.1).
//!
//! This crate implements that pipeline from scratch:
//!
//! * [`complex`] — a minimal complex-number type;
//! * [`fft`] — an iterative radix-2 Cooley–Tukey FFT (and inverse);
//! * [`spectrum`] — power spectra, periodicity strength, spectral flatness;
//! * [`classify`] — the three-way utilization-pattern classifier;
//! * [`features`] — fixed-length feature vectors extracted from traces;
//! * [`kmeans`] — K-Means with k-means++ seeding.

pub mod classify;
pub mod complex;
pub mod features;
pub mod fft;
pub mod kmeans;
pub mod spectrum;

pub use classify::{classify, classify_with, ClassifierConfig, UtilizationPattern};
pub use complex::Complex;
pub use kmeans::{kmeans, KMeansResult};
pub use spectrum::SpectrumScratch;
