//! Heartbeat-thread behaviour under primary I/O pressure (§7, lesson 2).
//!
//! "The manager throttles the secondary tenants' disk activity when the
//! primary tenant performs substantial disk I/O. This caused the DN
//! heartbeats on these servers to stop flowing, as the heartbeat thread
//! does synchronous I/O to get the status of modified blocks and free
//! space. As a result, the NN started a replication storm for data that
//! it thought was lost. We then changed the heartbeat thread to become
//! asynchronous and report the status that it most recently found."
//!
//! This module replays that incident: a data node's heartbeat loop under
//! a trace of primary-I/O pressure, in synchronous or asynchronous mode,
//! and the name node's dead-node declaration that triggers the storm.

use harvest_sim::{SimDuration, SimTime};

/// How the data node's heartbeat thread gathers block status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatMode {
    /// The heartbeat thread performs synchronous disk I/O; when the
    /// primary's I/O is throttling secondaries, the heartbeat blocks.
    Synchronous,
    /// The heartbeat thread reports the most recent status it has and
    /// never blocks on disk I/O.
    Asynchronous,
}

/// Heartbeat protocol parameters (HDFS-like defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatConfig {
    /// Interval between heartbeats (HDFS default: 3 s).
    pub interval: SimDuration,
    /// Silence after which the NN declares the DN dead (~10 min).
    pub dead_after: SimDuration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: SimDuration::from_secs(3),
            dead_after: SimDuration::from_mins(10),
        }
    }
}

/// Result of replaying one data node's heartbeats.
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatOutcome {
    /// Heartbeats that should have been sent.
    pub expected: u64,
    /// Heartbeats that actually flowed.
    pub delivered: u64,
    /// Heartbeats whose status payload was stale (asynchronous mode
    /// during throttling).
    pub stale: u64,
    /// Whether the NN declared the node dead at any point.
    pub declared_dead: bool,
    /// Blocks spuriously re-replicated by the storm (0 if never declared
    /// dead). Proportional to the node's block count.
    pub storm_blocks: u64,
}

/// Replays heartbeats over a throttling trace.
///
/// `throttled` gives, per heartbeat interval, whether the performance
/// isolation manager was throttling secondary disk I/O during that
/// interval. `node_blocks` is how many replicas the node holds (the size
/// of the storm if it is declared dead).
pub fn replay_heartbeats(
    mode: HeartbeatMode,
    config: &HeartbeatConfig,
    throttled: &[bool],
    node_blocks: u64,
) -> HeartbeatOutcome {
    let mut delivered = 0u64;
    let mut stale = 0u64;
    let mut last_heard = SimTime::ZERO;
    let mut declared_dead = false;

    for (i, &is_throttled) in throttled.iter().enumerate() {
        let now = SimTime::ZERO + config.interval.mul_f64((i + 1) as f64);
        let flows = match mode {
            // Synchronous status collection blocks behind the throttled
            // disk: the heartbeat never leaves the node.
            HeartbeatMode::Synchronous => !is_throttled,
            HeartbeatMode::Asynchronous => true,
        };
        if flows {
            delivered += 1;
            last_heard = now;
            if mode == HeartbeatMode::Asynchronous && is_throttled {
                stale += 1;
            }
        }
        if now.since(last_heard) >= config.dead_after {
            declared_dead = true;
        }
    }

    HeartbeatOutcome {
        expected: throttled.len() as u64,
        delivered,
        stale,
        declared_dead,
        storm_blocks: if declared_dead { node_blocks } else { 0 },
    }
}

/// Builds a throttling trace: `total` intervals with one solid throttled
/// burst of `burst` intervals starting at `start`.
pub fn burst_trace(total: usize, start: usize, burst: usize) -> Vec<bool> {
    (0..total)
        .map(|i| i >= start && i < start + burst)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: HeartbeatConfig = HeartbeatConfig {
        interval: SimDuration::from_secs(3),
        dead_after: SimDuration::from_secs(600),
    };

    /// Intervals in a 12-minute burst (long enough to cross `dead_after`).
    const LONG_BURST: usize = 240;

    #[test]
    fn synchronous_mode_causes_the_storm() {
        let trace = burst_trace(400, 50, LONG_BURST);
        let out = replay_heartbeats(HeartbeatMode::Synchronous, &CFG, &trace, 2_400);
        assert!(out.declared_dead, "sync mode should miss enough heartbeats");
        assert_eq!(out.storm_blocks, 2_400);
        assert!(out.delivered < out.expected);
    }

    #[test]
    fn asynchronous_mode_prevents_the_storm() {
        let trace = burst_trace(400, 50, LONG_BURST);
        let out = replay_heartbeats(HeartbeatMode::Asynchronous, &CFG, &trace, 2_400);
        assert!(!out.declared_dead);
        assert_eq!(out.storm_blocks, 0);
        assert_eq!(out.delivered, out.expected);
        // The price of availability: stale status during the burst.
        assert_eq!(out.stale, LONG_BURST as u64);
    }

    #[test]
    fn short_bursts_are_harmless_in_both_modes() {
        // A 3-minute burst is well under the 10-minute dead interval.
        let trace = burst_trace(400, 50, 60);
        for mode in [HeartbeatMode::Synchronous, HeartbeatMode::Asynchronous] {
            let out = replay_heartbeats(mode, &CFG, &trace, 2_400);
            assert!(!out.declared_dead, "{mode:?} declared dead on short burst");
            assert_eq!(out.storm_blocks, 0);
        }
    }

    #[test]
    fn quiet_trace_delivers_everything() {
        let trace = vec![false; 100];
        let out = replay_heartbeats(HeartbeatMode::Synchronous, &CFG, &trace, 10);
        assert_eq!(out.delivered, 100);
        assert_eq!(out.stale, 0);
        assert!(!out.declared_dead);
    }

    #[test]
    fn burst_trace_shape() {
        let t = burst_trace(10, 3, 4);
        assert_eq!(
            t,
            vec![false, false, false, true, true, true, true, false, false, false]
        );
    }
}
