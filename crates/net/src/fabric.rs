//! Event-driven flow-level simulation with max-min fair sharing.
//!
//! A [`Fabric`] carries [`Flow`]s between servers over a [`Topology`].
//! Whenever the active-flow set changes — a flow starts or finishes —
//! link bandwidth is re-divided max-min fairly (progressive filling) and
//! every in-flight flow's completion is re-predicted. Starts,
//! completions, and those re-share reschedules all travel through one
//! [`EventQueue`]; a stale completion (superseded by a later re-share) is
//! recognized by its version stamp and ignored, which is the standard
//! trick for event-driven flow models with time-varying rates.
//!
//! Everything is exact integer time plus deterministic `f64` arithmetic
//! over deterministically ordered collections, so a fabric replay is
//! bit-identical for identical inputs.
//!
//! # Cost model
//!
//! Every flow start/finish re-shares and re-predicts *all* active
//! flows, so work grows with the square of the concurrently active
//! population. That is the right trade for the tens-to-hundreds of
//! concurrent flows real repair throttles and shuffles produce, but it
//! means offered load must not exceed fabric capacity for sustained
//! periods — a persistent backlog grows without bound and the
//! simulation with it. Callers injecting unthrottled demand must bound
//! concurrency themselves (see `StormConfig::max_repair_streams` in
//! `harvest-dfs` for the repair-path backpressure).

use std::collections::BTreeMap;

use harvest_cluster::ServerId;
use harvest_sim::engine::EventQueue;
use harvest_sim::{SimDuration, SimTime};

use crate::config::NetworkConfig;
use crate::topology::{LinkId, Topology};

/// Identifies a flow within a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A finished transfer, as reported by [`Fabric::pump`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowCompletion {
    /// The flow that finished.
    pub flow: FlowId,
    /// When its last byte arrived.
    pub at: SimTime,
    /// The caller's tag, echoed back.
    pub tag: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// When the flow entered the fabric.
    pub started: SimTime,
}

/// One in-flight transfer.
#[derive(Debug, Clone)]
struct Flow {
    tag: u64,
    bytes: u64,
    remaining: f64,
    /// Current max-min allocation in bytes/s.
    rate: f64,
    /// Bumped on every re-share; completion events carry the version they
    /// were predicted under.
    version: u64,
    started: SimTime,
    path: Vec<LinkId>,
}

/// A transfer waiting for its scheduled start time.
#[derive(Debug, Clone)]
struct PendingFlow {
    src: ServerId,
    dst: ServerId,
    bytes: u64,
    tag: u64,
}

#[derive(Debug)]
enum NetEvent {
    Start(FlowId),
    Complete(FlowId, u64),
}

/// Aggregate fabric counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FabricStats {
    /// Flows completed.
    pub completed: u64,
    /// Bytes delivered by completed flows.
    pub bytes_delivered: u64,
    /// High-water mark of concurrently active flows.
    pub peak_active: usize,
    /// Re-share passes run (a measure of contention churn).
    pub reshares: u64,
}

/// The flow-level network simulator. See the module docs.
#[derive(Debug)]
pub struct Fabric {
    topo: Topology,
    queue: EventQueue<NetEvent>,
    pending: BTreeMap<u64, PendingFlow>,
    active: BTreeMap<u64, Flow>,
    /// When `active` flows' `remaining` counters were last advanced.
    last_update: SimTime,
    next_id: u64,
    hop_latency: SimDuration,
    stats: FabricStats,
    completions: Vec<FlowCompletion>,
}

impl Fabric {
    /// A fabric over an explicit topology.
    pub fn new(topo: Topology, config: &NetworkConfig) -> Self {
        Fabric {
            topo,
            queue: EventQueue::new(),
            pending: BTreeMap::new(),
            active: BTreeMap::new(),
            last_update: SimTime::ZERO,
            next_id: 0,
            hop_latency: SimDuration::from_secs_f64(config.hop_latency_ms / 1_000.0),
            stats: FabricStats::default(),
            completions: Vec::new(),
        }
    }

    /// Builds topology and fabric for a datacenter in one step.
    pub fn from_datacenter(dc: &harvest_cluster::Datacenter, config: &NetworkConfig) -> Self {
        Fabric::new(Topology::from_datacenter(dc, config), config)
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Flows currently moving bytes.
    pub fn n_active(&self) -> usize {
        self.active.len()
    }

    /// Flows scheduled but not yet started.
    pub fn n_pending(&self) -> usize {
        self.pending.len()
    }

    /// Bytes still in flight across all active flows.
    pub fn in_flight_bytes(&self) -> f64 {
        self.active.values().map(|f| f.remaining).sum()
    }

    /// The current max-min rate of a flow in bytes/s, if it is active.
    pub fn flow_rate(&self, flow: FlowId) -> Option<f64> {
        self.active.get(&flow.0).map(|f| f.rate)
    }

    /// Ids of the currently active flows, ascending.
    pub fn active_flow_ids(&self) -> Vec<FlowId> {
        self.active.keys().map(|&id| FlowId(id)).collect()
    }

    /// The links a flow traverses, if it is active.
    pub fn flow_path(&self, flow: FlowId) -> Option<&[LinkId]> {
        self.active.get(&flow.0).map(|f| f.path.as_slice())
    }

    /// Sum of active-flow rates crossing `link`, in bytes/s.
    pub fn link_load(&self, link: LinkId) -> f64 {
        self.active
            .values()
            .filter(|f| f.path.contains(&link))
            .map(|f| f.rate)
            .sum()
    }

    /// Schedules a `src → dst` transfer of `bytes` to start at `at`.
    /// Returns the flow's id; its completion will be reported by a later
    /// [`Fabric::pump`].
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `at` is before the fabric's clock —
    /// the fabric never runs backwards.
    pub fn schedule_flow(
        &mut self,
        at: SimTime,
        src: ServerId,
        dst: ServerId,
        bytes: u64,
        tag: u64,
    ) -> FlowId {
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.pending.insert(
            id.0,
            PendingFlow {
                src,
                dst,
                bytes,
                tag,
            },
        );
        self.queue.push(at, NetEvent::Start(id));
        id
    }

    /// A lower bound on the next instant anything can happen in the
    /// fabric (`None` when it is idle). Stale completion events make this
    /// conservative: pumping to this time may be a no-op, never wrong.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Advances the fabric through every event at or before `until`,
    /// returning the transfers that completed, in completion order.
    pub fn pump(&mut self, until: SimTime) -> Vec<FlowCompletion> {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            match ev {
                NetEvent::Start(id) => self.on_start(id, now),
                NetEvent::Complete(id, version) => self.on_complete(id, version, now),
            }
        }
        std::mem::take(&mut self.completions)
    }

    /// Drains the fabric to quiescence, returning all remaining
    /// completions. Useful at the end of a simulation.
    pub fn drain(&mut self) -> Vec<FlowCompletion> {
        self.pump(SimTime::MAX)
    }

    fn on_start(&mut self, id: FlowId, now: SimTime) {
        let Some(p) = self.pending.remove(&id.0) else {
            return; // cancelled
        };
        let path = self.topo.path(p.src, p.dst);
        // Per-hop switching latency: charge it up front by extending the
        // effective start; for the empty path (local copy) the flow
        // completes immediately.
        if path.is_empty() {
            self.finish_flow(
                id,
                now,
                Flow {
                    tag: p.tag,
                    bytes: p.bytes,
                    remaining: 0.0,
                    rate: f64::INFINITY,
                    version: 0,
                    started: now,
                    path,
                },
            );
            return;
        }
        self.advance_to(now);
        let latency = self.hop_latency.mul_f64(path.len() as f64);
        self.active.insert(
            id.0,
            Flow {
                tag: p.tag,
                bytes: p.bytes,
                // Fold per-hop latency in as bottleneck-bytes so a tiny
                // flow still takes ≥ the path latency.
                remaining: p.bytes as f64 + latency.as_secs_f64() * self.path_bottleneck(&path),
                rate: 0.0,
                version: 0,
                started: now,
                path,
            },
        );
        self.stats.peak_active = self.stats.peak_active.max(self.active.len());
        self.reshare(now);
    }

    fn on_complete(&mut self, id: FlowId, version: u64, now: SimTime) {
        let stale = match self.active.get(&id.0) {
            Some(f) => f.version != version,
            None => true,
        };
        if stale {
            return;
        }
        self.advance_to(now);
        let flow = self.active.remove(&id.0).expect("checked above");
        self.finish_flow(id, now, flow);
        self.reshare(now);
    }

    fn finish_flow(&mut self, id: FlowId, now: SimTime, flow: Flow) {
        self.stats.completed += 1;
        self.stats.bytes_delivered += flow.bytes;
        self.completions.push(FlowCompletion {
            flow: id,
            at: now,
            tag: flow.tag,
            bytes: flow.bytes,
            started: flow.started,
        });
    }

    /// Drains transferred bytes from every active flow for the time
    /// elapsed since the last update.
    fn advance_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            for f in self.active.values_mut() {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
        self.last_update = now;
    }

    fn path_bottleneck(&self, path: &[LinkId]) -> f64 {
        path.iter()
            .map(|&l| self.topo.capacity(l))
            .fold(f64::INFINITY, f64::min)
    }

    /// Recomputes max-min fair rates (progressive filling) and
    /// re-predicts every active flow's completion.
    ///
    /// Progressive filling: repeatedly find the most-contended link (the
    /// one whose remaining capacity split across its unfrozen flows is
    /// smallest), freeze those flows at that fair share, subtract their
    /// demand everywhere, and repeat. The result is the unique max-min
    /// fair allocation; every flow ends up bottlenecked by (at least) one
    /// saturated link on its path.
    fn reshare(&mut self, now: SimTime) {
        self.stats.reshares += 1;
        if self.active.is_empty() {
            return;
        }

        // Work over only the links active flows actually touch (≤ 4 per
        // flow), not the whole topology — a trickle of flows in a large
        // datacenter must not pay O(n_servers) per event. Sorted ids
        // keep the bottleneck scan's lowest-link-id tie-break.
        let ids: Vec<u64> = self.active.keys().copied().collect();
        let mut used: Vec<u32> = ids
            .iter()
            .flat_map(|id| self.active[id].path.iter().map(|l| l.0))
            .collect();
        used.sort_unstable();
        used.dedup();
        let slot_of =
            |link: LinkId| -> usize { used.binary_search(&link.0).expect("link in used set") };
        let mut spare: Vec<f64> = used
            .iter()
            .map(|&l| self.topo.capacity(LinkId(l)))
            .collect();
        let mut unfrozen_on: Vec<u32> = vec![0; used.len()];
        // Deterministic flow order: BTreeMap iterates by ascending id.
        for id in &ids {
            for l in &self.active[id].path {
                unfrozen_on[slot_of(*l)] += 1;
            }
        }
        let mut frozen: Vec<bool> = vec![false; ids.len()];
        let mut rates: Vec<f64> = vec![0.0; ids.len()];
        let mut left = ids.len();

        while left > 0 {
            // The bottleneck link and its fair share.
            let mut best: Option<(f64, usize)> = None;
            for (slot, &cnt) in unfrozen_on.iter().enumerate() {
                if cnt == 0 {
                    continue;
                }
                let share = spare[slot] / cnt as f64;
                match best {
                    Some((s, _)) if s <= share => {}
                    _ => best = Some((share, slot)),
                }
            }
            let Some((share, bottleneck)) = best else {
                break; // no unfrozen flow crosses any link
            };
            let share = share.max(0.0);
            let bottleneck = LinkId(used[bottleneck]);
            // Freeze every unfrozen flow crossing the bottleneck.
            for (i, id) in ids.iter().enumerate() {
                if frozen[i] || !self.active[id].path.contains(&bottleneck) {
                    continue;
                }
                frozen[i] = true;
                rates[i] = share;
                left -= 1;
                for l in &self.active[id].path {
                    let slot = slot_of(*l);
                    spare[slot] = (spare[slot] - share).max(0.0);
                    unfrozen_on[slot] -= 1;
                }
            }
        }

        // Apply rates and re-predict completions. A flow whose rate is
        // bitwise-unchanged keeps its pending Complete event: `remaining`
        // was advanced at the old rate, so the previously predicted
        // absolute completion time is still exact, and skipping the
        // re-push avoids O(active) stale events per re-share for flows
        // on disjoint paths. (`version > 0` guarantees an event exists.)
        for (i, id) in ids.iter().enumerate() {
            let f = self.active.get_mut(id).expect("active");
            if f.version > 0 && rates[i] == f.rate {
                continue;
            }
            f.rate = rates[i];
            f.version += 1;
            let eta = if f.rate > 0.0 {
                SimDuration::from_secs_f64(f.remaining / f.rate)
            } else {
                // Starved flow (zero-capacity link): park the completion
                // far in the future; a later re-share will rescue it.
                SimDuration::from_days(365_000)
            };
            self.queue
                .push(now + eta, NetEvent::Complete(FlowId(*id), f.version));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_cluster::Datacenter;
    use harvest_trace::datacenter::DatacenterProfile;

    const MB: u64 = 1024 * 1024;

    fn fabric() -> (Datacenter, Fabric) {
        let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 42);
        let f = Fabric::from_datacenter(&dc, &NetworkConfig::datacenter());
        (dc, f)
    }

    fn cross_rack_pair(dc: &Datacenter) -> (ServerId, ServerId) {
        let a = dc.servers[0].id;
        let b = dc
            .servers
            .iter()
            .find(|s| s.rack != dc.servers[0].rack)
            .expect("multi-rack dc")
            .id;
        (a, b)
    }

    #[test]
    fn single_flow_runs_at_nic_speed() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        f.schedule_flow(SimTime::ZERO, a, b, 1_250 * MB, 1);
        let done = f.drain();
        assert_eq!(done.len(), 1);
        // 1250 MiB at 1.25e9 B/s ≈ 1.05 s (MiB vs MB) + hop latency.
        let secs = done[0].at.since(done[0].started).as_secs_f64();
        assert!((1.0..1.2).contains(&secs), "single flow took {secs}s");
    }

    #[test]
    fn local_copy_is_instant() {
        let (dc, mut f) = fabric();
        let a = dc.servers[0].id;
        f.schedule_flow(SimTime::from_secs(5), a, a, 999 * MB, 7);
        let done = f.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, SimTime::from_secs(5));
        assert_eq!(done[0].tag, 7);
    }

    #[test]
    fn two_flows_share_a_nic_fairly() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        // Both flows leave server `a`: its TX NIC is the bottleneck.
        f.schedule_flow(SimTime::ZERO, a, b, 125 * MB, 1);
        f.schedule_flow(SimTime::ZERO, a, b, 125 * MB, 2);
        f.pump(SimTime::ZERO);
        let r1 = f.flow_rate(FlowId(0)).unwrap();
        let r2 = f.flow_rate(FlowId(1)).unwrap();
        assert!((r1 - r2).abs() < 1.0, "unequal shares {r1} vs {r2}");
        let nic = NetworkConfig::datacenter().nic_bytes_per_sec();
        assert!((r1 + r2 - nic).abs() / nic < 1e-9, "NIC not saturated");
        // Sharing doubles the transfer time vs. running alone.
        let done = f.drain();
        let secs = done[1].at.since(done[1].started).as_secs_f64();
        assert!((0.2..0.25).contains(&secs), "shared pair took {secs}s");
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let (dc, mut f) = fabric();
        // Two flows between entirely different rack pairs.
        let racks = dc.n_racks();
        assert!(racks >= 4, "need 4 racks, have {racks}");
        let by_rack = |r: u32| {
            dc.servers
                .iter()
                .find(|s| s.rack.0 == r)
                .expect("rack populated")
                .id
        };
        f.schedule_flow(SimTime::ZERO, by_rack(0), by_rack(1), 125 * MB, 1);
        f.schedule_flow(SimTime::ZERO, by_rack(2), by_rack(3), 125 * MB, 2);
        f.pump(SimTime::ZERO);
        let nic = NetworkConfig::datacenter().nic_bytes_per_sec();
        for id in [0, 1] {
            let r = f.flow_rate(FlowId(id)).unwrap();
            assert!((r - nic).abs() / nic < 1e-9, "flow {id} throttled to {r}");
        }
        f.drain();
    }

    #[test]
    fn oversubscribed_uplink_throttles_a_storm() {
        let (dc, mut f) = fabric();
        // Many flows out of one rack to distinct remote servers: the
        // 4:1-oversubscribed uplink (5 NICs worth) is the bottleneck.
        let rack0: Vec<ServerId> = dc
            .servers
            .iter()
            .filter(|s| s.rack.0 == 0)
            .map(|s| s.id)
            .collect();
        let remote: Vec<ServerId> = dc
            .servers
            .iter()
            .filter(|s| s.rack.0 != 0)
            .take(rack0.len())
            .map(|s| s.id)
            .collect();
        assert!(rack0.len() >= 10, "rack 0 has {}", rack0.len());
        for (i, (&s, &d)) in rack0.iter().zip(&remote).enumerate() {
            f.schedule_flow(SimTime::ZERO, s, d, 125 * MB, i as u64);
        }
        f.pump(SimTime::ZERO);
        let uplink = f.topology().rack_up(0);
        let cap = f.topology().capacity(uplink);
        let load = f.link_load(uplink);
        assert!(
            load <= cap * (1.0 + 1e-9),
            "uplink overloaded: {load} > {cap}"
        );
        assert!(
            load >= cap * (1.0 - 1e-9),
            "uplink not work-conserving: {load} < {cap}"
        );
        // Each flow gets the uplink fair share, which is below NIC speed.
        let nic = NetworkConfig::datacenter().nic_bytes_per_sec();
        let share = f.flow_rate(FlowId(0)).unwrap();
        assert!(share < nic, "share {share} not throttled below NIC {nic}");
        f.drain();
    }

    #[test]
    fn departures_release_bandwidth() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        // A short and a long flow share `a`'s NIC; after the short one
        // leaves, the long one speeds up, finishing sooner than it would
        // have at the half-rate.
        f.schedule_flow(SimTime::ZERO, a, b, 125 * MB, 1);
        f.schedule_flow(SimTime::ZERO, a, b, 1_250 * MB, 2);
        let done = f.drain();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].tag, 1, "short flow finishes first");
        let long_secs = done[1].at.as_secs_f64();
        // Alone: ~1.05 s. Always halved: ~2.1 s. With the short flow
        // departing around 0.21 s the long one lands near 1.16 s.
        assert!(
            (1.05..1.6).contains(&long_secs),
            "long flow took {long_secs}s — bandwidth not released?"
        );
    }

    #[test]
    fn staggered_starts_replay_deterministically() {
        let run = || {
            let (dc, mut f) = fabric();
            let (a, b) = cross_rack_pair(&dc);
            let mut ends = Vec::new();
            for i in 0..20u64 {
                f.schedule_flow(
                    SimTime::from_millis(i * 37),
                    dc.servers[(i as usize * 13) % dc.n_servers()].id,
                    if i % 3 == 0 { a } else { b },
                    (i + 1) * 10 * MB,
                    i,
                );
            }
            for c in f.drain() {
                ends.push((c.tag, c.at));
            }
            ends
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pump_respects_the_horizon() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        f.schedule_flow(SimTime::ZERO, a, b, 1_250 * MB, 1); // ~1 s
        let early = f.pump(SimTime::from_millis(500));
        assert!(early.is_empty(), "flow finished early: {early:?}");
        assert_eq!(f.n_active(), 1);
        let late = f.pump(SimTime::from_secs(10));
        assert_eq!(late.len(), 1);
        assert_eq!(f.n_active(), 0);
    }

    #[test]
    fn stats_track_the_population() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        f.schedule_flow(SimTime::ZERO, a, b, 10 * MB, 1);
        f.schedule_flow(SimTime::ZERO, a, b, 10 * MB, 2);
        f.drain();
        let s = f.stats();
        assert_eq!(s.completed, 2);
        assert_eq!(s.bytes_delivered, 20 * MB);
        assert_eq!(s.peak_active, 2);
        assert!(s.reshares >= 4);
    }
}
