//! Utilization scaling for the simulation sweeps (§6.1).
//!
//! "To study a spectrum of utilizations, we also experiment with higher
//! and lower traffic levels, each time multiplying the CPU utilization
//! time series by a constant factor and saturating at 100%. Because of the
//! inaccuracy introduced by saturation, we also study a method in which we
//! scale the CPU utilizations using nth-root functions."
//!
//! Linear scaling preserves (and, past saturation, amplifies) temporal
//! variation; root scaling compresses the high end, "making the higher
//! utilizations change less than the lower ones" and reducing saturation.
//! Figure 13's YARN-PT curves differ across the two scalings for exactly
//! this reason.

use crate::timeseries::TimeSeries;

/// How a utilization sweep transforms the base traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalingKind {
    /// Multiply by a constant, saturating at 100%.
    Linear,
    /// Raise to a power (`u^e`), which for `e < 1` behaves like the
    /// paper's nth-root scaling.
    Root,
}

impl std::fmt::Display for ScalingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalingKind::Linear => f.write_str("linear"),
            ScalingKind::Root => f.write_str("root"),
        }
    }
}

/// Multiplies every sample by `factor`, saturating at 1.0.
pub fn scale_linear(ts: &TimeSeries, factor: f64) -> TimeSeries {
    assert!(factor >= 0.0, "scaling factor must be non-negative");
    ts.map_clamped(|v| v * factor)
}

/// Raises every sample to the power `exponent` (`u^e`).
///
/// `e = 1/n` is the paper's nth-root scaling (raises utilization);
/// `e > 1` lowers it. Saturation is impossible since `u ∈ [0, 1]`.
pub fn scale_root(ts: &TimeSeries, exponent: f64) -> TimeSeries {
    assert!(exponent > 0.0, "root exponent must be positive");
    ts.map_clamped(|v| v.max(0.0).powf(exponent))
}

/// Applies the given scaling with the given parameter.
pub fn scale(ts: &TimeSeries, kind: ScalingKind, param: f64) -> TimeSeries {
    match kind {
        ScalingKind::Linear => scale_linear(ts, param),
        ScalingKind::Root => scale_root(ts, param),
    }
}

/// Finds the scaling parameter that brings the *fleet-average* utilization
/// of `traces` to `target_mean`, by bisection.
///
/// For [`ScalingKind::Linear`] the parameter is the multiplicative factor;
/// for [`ScalingKind::Root`] it is the exponent. Returns the parameter.
/// The mapping is monotone in both cases, so bisection converges; the
/// result is accurate to about 1e-4 in mean utilization.
pub fn calibrate(traces: &[&TimeSeries], kind: ScalingKind, target_mean: f64) -> f64 {
    assert!(!traces.is_empty(), "cannot calibrate zero traces");
    assert!(
        (0.0..=1.0).contains(&target_mean),
        "target mean must be in [0, 1], got {target_mean}"
    );
    let mean_with = |param: f64| -> f64 {
        let total: f64 = traces.iter().map(|t| scale(t, kind, param).mean()).sum();
        total / traces.len() as f64
    };
    // Parameter ranges: linear factor in [0, 64]; root exponent in
    // [1/64, 64]. Root scaling *decreases* the mean as the exponent grows,
    // so its search is inverted.
    let (mut lo, mut hi, increasing) = match kind {
        ScalingKind::Linear => (0.0f64, 64.0f64, true),
        ScalingKind::Root => (1.0 / 64.0, 64.0f64, false),
    };
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let m = mean_with(mid);
        let go_up = if increasing {
            m < target_mean
        } else {
            m > target_mean
        };
        if go_up {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim::SimDuration;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(SimDuration::from_mins(2), values)
    }

    #[test]
    fn linear_scales_and_saturates() {
        let base = ts(vec![0.2, 0.5, 0.8]);
        let scaled = scale_linear(&base, 2.0);
        assert_eq!(scaled.values(), &[0.4, 1.0, 1.0]);
    }

    #[test]
    fn root_raises_without_saturation() {
        let base = ts(vec![0.25, 0.81]);
        let scaled = scale_root(&base, 0.5);
        assert!((scaled.values()[0] - 0.5).abs() < 1e-12);
        assert!((scaled.values()[1] - 0.9).abs() < 1e-12);
        assert!(scaled.peak() < 1.0);
    }

    #[test]
    fn root_compresses_high_more_than_low() {
        // The paper's rationale: higher utilizations change less.
        let base = ts(vec![0.1, 0.9]);
        let scaled = scale_root(&base, 0.5);
        let low_gain = scaled.values()[0] - 0.1;
        let high_gain = scaled.values()[1] - 0.9;
        assert!(low_gain > high_gain);
    }

    #[test]
    fn calibrate_linear_hits_target() {
        let a = ts(vec![0.1; 100]);
        let b = ts(vec![0.3; 100]);
        let factor = calibrate(&[&a, &b], ScalingKind::Linear, 0.4);
        let mean = (scale_linear(&a, factor).mean() + scale_linear(&b, factor).mean()) / 2.0;
        assert!((mean - 0.4).abs() < 1e-3, "calibrated mean {mean}");
        assert!((factor - 2.0).abs() < 1e-2, "factor {factor}");
    }

    #[test]
    fn calibrate_linear_with_saturation() {
        let a = ts(vec![0.9, 0.1]);
        let factor = calibrate(&[&a], ScalingKind::Linear, 0.75);
        let mean = scale_linear(&a, factor).mean();
        assert!((mean - 0.75).abs() < 1e-3, "calibrated mean {mean}");
    }

    #[test]
    fn calibrate_root_raises_and_lowers() {
        let a = ts(vec![0.25; 10]);
        let up = calibrate(&[&a], ScalingKind::Root, 0.5);
        assert!((scale_root(&a, up).mean() - 0.5).abs() < 1e-3);
        assert!(up < 1.0, "raising utilization needs exponent < 1, got {up}");
        let down = calibrate(&[&a], ScalingKind::Root, 0.1);
        assert!((scale_root(&a, down).mean() - 0.1).abs() < 1e-3);
        assert!(down > 1.0);
    }

    #[test]
    fn linear_preserves_more_variation_than_root_at_high_util() {
        // Root scaling compresses variation at high utilization; linear
        // keeps it until saturation. This asymmetry drives Figure 13.
        let base = ts((0..720)
            .map(|i| 0.25 + 0.15 * (2.0 * std::f64::consts::PI * i as f64 / 720.0).sin())
            .collect());
        let lf = calibrate(&[&base], ScalingKind::Linear, 0.55);
        let rf = calibrate(&[&base], ScalingKind::Root, 0.55);
        let lin = scale_linear(&base, lf);
        let root = scale_root(&base, rf);
        assert!(
            lin.std_dev() > root.std_dev(),
            "linear sd {} should exceed root sd {}",
            lin.std_dev(),
            root.std_dev()
        );
    }

    #[test]
    fn scaling_kind_display() {
        assert_eq!(ScalingKind::Linear.to_string(), "linear");
        assert_eq!(ScalingKind::Root.to_string(), "root");
    }
}
