//! Per-job execution tracking — the Application Master's bookkeeping.
//!
//! §5.1: "The AM decides which tasks it should execute in each container.
//! The AM also tracks the tasks' execution, sequencing them appropriately,
//! and re-starting any killed tasks." [`JobExecution`] is that state
//! machine: it knows which stages are ready (all dependencies complete),
//! hands out tasks, and returns killed tasks to the pending pool.

use harvest_sim::{SimDuration, SimTime};

use crate::dag::{DagJob, StageId};

/// Execution state of one submitted job.
#[derive(Debug, Clone)]
pub struct JobExecution {
    job: DagJob,
    pending: Vec<u32>,
    running: Vec<u32>,
    done: Vec<u32>,
    submitted: SimTime,
    finished: Option<SimTime>,
    kills: u64,
}

impl JobExecution {
    /// Starts tracking a job submitted at `submitted`.
    pub fn new(job: DagJob, submitted: SimTime) -> Self {
        let pending: Vec<u32> = job.stages.iter().map(|s| s.tasks).collect();
        let n = job.stages.len();
        JobExecution {
            job,
            pending,
            running: vec![0; n],
            done: vec![0; n],
            submitted,
            finished: None,
            kills: 0,
        }
    }

    /// The job being executed.
    pub fn job(&self) -> &DagJob {
        &self.job
    }

    /// When the job was submitted.
    pub fn submitted(&self) -> SimTime {
        self.submitted
    }

    /// When the job finished, if it has.
    pub fn finished(&self) -> Option<SimTime> {
        self.finished
    }

    /// Submission-to-completion time, if finished.
    pub fn execution_time(&self) -> Option<SimDuration> {
        self.finished.map(|f| f.since(self.submitted))
    }

    /// Total task kills suffered so far.
    pub fn kills(&self) -> u64 {
        self.kills
    }

    /// Whether every task of every stage has completed.
    pub fn is_complete(&self) -> bool {
        self.finished.is_some()
    }

    /// Whether a stage's dependencies have all fully completed.
    pub fn stage_ready(&self, stage: StageId) -> bool {
        self.job.stages[stage.0]
            .deps
            .iter()
            .all(|d| self.done[d.0] == self.job.stages[d.0].tasks)
    }

    /// Stages that are ready and still have unstarted tasks, in DAG order.
    pub fn ready_stages(&self) -> Vec<StageId> {
        (0..self.job.stages.len())
            .map(StageId)
            .filter(|&s| self.pending[s.0] > 0 && self.stage_ready(s))
            .collect()
    }

    /// Total tasks that could start right now.
    pub fn ready_task_count(&self) -> u32 {
        self.ready_stages().iter().map(|s| self.pending[s.0]).sum()
    }

    /// Tasks of `stage` not yet started.
    pub fn pending_tasks(&self, stage: StageId) -> u32 {
        self.pending[stage.0]
    }

    /// Tasks of `stage` currently running.
    pub fn running_tasks(&self, stage: StageId) -> u32 {
        self.running[stage.0]
    }

    /// Takes one ready task (from the earliest ready stage) and marks it
    /// running. Returns the stage it came from, or `None` if nothing is
    /// ready.
    pub fn start_next_task(&mut self) -> Option<StageId> {
        let stage = *self.ready_stages().first()?;
        self.start_task(stage);
        Some(stage)
    }

    /// Marks one pending task of `stage` as running.
    ///
    /// # Panics
    ///
    /// Panics if the stage is not ready or has no pending tasks.
    pub fn start_task(&mut self, stage: StageId) {
        assert!(self.stage_ready(stage), "stage {} not ready", stage.0);
        assert!(
            self.pending[stage.0] > 0,
            "stage {} has no pending tasks",
            stage.0
        );
        self.pending[stage.0] -= 1;
        self.running[stage.0] += 1;
    }

    /// The per-task duration of `stage`.
    pub fn task_duration(&self, stage: StageId) -> SimDuration {
        self.job.stages[stage.0].task_duration
    }

    /// Marks one running task of `stage` as finished at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if the stage has no running tasks.
    pub fn finish_task(&mut self, stage: StageId, now: SimTime) {
        assert!(
            self.running[stage.0] > 0,
            "stage {} has no running tasks",
            stage.0
        );
        self.running[stage.0] -= 1;
        self.done[stage.0] += 1;
        let all_done = self
            .job
            .stages
            .iter()
            .enumerate()
            .all(|(i, s)| self.done[i] == s.tasks);
        if all_done {
            self.finished = Some(now);
        }
    }

    /// Returns a killed running task of `stage` to the pending pool
    /// (killed tasks re-run from scratch).
    ///
    /// # Panics
    ///
    /// Panics if the stage has no running tasks.
    pub fn kill_task(&mut self, stage: StageId) {
        assert!(
            self.running[stage.0] > 0,
            "stage {} has no running tasks",
            stage.0
        );
        self.running[stage.0] -= 1;
        self.pending[stage.0] += 1;
        self.kills += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::stage;

    fn job() -> DagJob {
        DagJob::new(
            "j",
            vec![stage("m", 2, 10, vec![]), stage("r", 1, 20, vec![0])],
        )
    }

    #[test]
    fn executes_in_dependency_order() {
        let mut e = JobExecution::new(job(), SimTime::ZERO);
        assert_eq!(e.ready_stages(), vec![StageId(0)]);
        assert_eq!(e.ready_task_count(), 2);
        // Reducer blocked until both mappers finish.
        e.start_task(StageId(0));
        e.start_task(StageId(0));
        assert_eq!(e.ready_task_count(), 0);
        e.finish_task(StageId(0), SimTime::from_secs(10));
        assert!(!e.stage_ready(StageId(1)));
        e.finish_task(StageId(0), SimTime::from_secs(10));
        assert!(e.stage_ready(StageId(1)));
        assert_eq!(e.ready_stages(), vec![StageId(1)]);
        e.start_task(StageId(1));
        assert!(!e.is_complete());
        e.finish_task(StageId(1), SimTime::from_secs(30));
        assert!(e.is_complete());
        assert_eq!(e.execution_time(), Some(SimDuration::from_secs(30)));
    }

    #[test]
    fn kills_requeue_tasks() {
        let mut e = JobExecution::new(job(), SimTime::ZERO);
        e.start_task(StageId(0));
        assert_eq!(e.pending_tasks(StageId(0)), 1);
        e.kill_task(StageId(0));
        assert_eq!(e.pending_tasks(StageId(0)), 2);
        assert_eq!(e.running_tasks(StageId(0)), 0);
        assert_eq!(e.kills(), 1);
        // The killed task can start again.
        e.start_task(StageId(0));
    }

    #[test]
    fn start_next_takes_earliest_ready() {
        let two_roots = DagJob::new(
            "j2",
            vec![stage("a", 1, 5, vec![]), stage("b", 1, 5, vec![])],
        );
        let mut e = JobExecution::new(two_roots, SimTime::ZERO);
        assert_eq!(e.start_next_task(), Some(StageId(0)));
        assert_eq!(e.start_next_task(), Some(StageId(1)));
        assert_eq!(e.start_next_task(), None);
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn starting_blocked_stage_panics() {
        let mut e = JobExecution::new(job(), SimTime::ZERO);
        e.start_task(StageId(1));
    }

    #[test]
    #[should_panic(expected = "no running tasks")]
    fn finishing_idle_stage_panics() {
        let mut e = JobExecution::new(job(), SimTime::ZERO);
        e.finish_task(StageId(0), SimTime::ZERO);
    }

    #[test]
    fn task_duration_lookup() {
        let e = JobExecution::new(job(), SimTime::ZERO);
        assert_eq!(e.task_duration(StageId(1)), SimDuration::from_secs(20));
    }
}
