//! Streaming statistics, percentile sets, and histograms.
//!
//! The experiment harness reports the same aggregates the paper does:
//! means with min/max intervals over five runs, 99th-percentile latencies,
//! and CDFs. These small self-contained accumulators back all of that.

use std::fmt;

/// Online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 if fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (σ/μ), or 0.0 if the mean is zero.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation, or +∞ if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or -∞ if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for StreamingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// Exact percentile computation over a retained sample set.
///
/// Keeps every pushed value; call [`Percentiles::quantile`] to query. Uses
/// linear interpolation between closest ranks (the common "type 7"
/// definition).
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    values: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty set.
    pub fn new() -> Self {
        Percentiles {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Adds many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        self.values.extend(xs);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns the `q`-quantile (`q` in `[0, 1]`), or `None` if empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if !self.sorted {
            self.values
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in percentile set"));
            self.sorted = true;
        }
        quantile_sorted(&self.values, q)
    }

    /// Convenience wrapper for the 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Arithmetic mean of the retained values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Consumes the set into an immutable [`SortedSamples`] view so read
    /// paths can query quantiles through `&self`.
    pub fn freeze(mut self) -> SortedSamples {
        if !self.sorted {
            self.values
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in percentile set"));
        }
        SortedSamples {
            values: self.values,
        }
    }
}

/// Type-7 quantile over an already-sorted slice.
fn quantile_sorted(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let n = values.len();
    if n == 1 {
        return Some(values[0]);
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(values[lo] * (1.0 - frac) + values[hi] * frac)
}

/// An immutable, pre-sorted sample set: the read-path counterpart of
/// [`Percentiles`]. Build one with [`Percentiles::freeze`] once ingestion
/// is done; every query takes `&self`, so summary emission never needs
/// mutable access.
#[derive(Debug, Clone, Default)]
pub struct SortedSamples {
    values: Vec<f64>,
}

impl SortedSamples {
    /// Returns the `q`-quantile (`q` in `[0, 1]`), or `None` if empty.
    /// Same type-7 interpolation as [`Percentiles::quantile`].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_sorted(&self.values, q)
    }

    /// Convenience wrapper for the 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Capacity of each compactor level; higher means lower rank error and
/// more memory. 256 keeps the worst observed rank error well under the
/// documented 2% bound.
const SKETCH_LEVEL_CAP: usize = 256;

/// A deterministic KLL-style compacting quantile sketch: bounded memory
/// for month-scale streams, mergeable across recorders.
///
/// Values land in level 0 with weight 1. When a level fills, it is
/// sorted and every other element survives to the next level (weight
/// doubles); the surviving parity alternates per level on each
/// compaction instead of being chosen randomly, so the sketch is fully
/// deterministic — the same stream always yields the same summary.
/// Count, sum, min, and max are tracked exactly.
///
/// Accuracy: rank error is bounded by the compaction depth; with
/// 256-slot levels the empirical worst case across random and
/// adversarial streams (sorted, reversed, constant, organ-pipe,
/// alternating-extreme) stays below **2% of n** (see
/// `sketch_quantiles_within_bound_*` tests). Memory is `O(levels × 256)`
/// where levels grows logarithmically with n.
#[derive(Debug, Clone, Default)]
pub struct QuantileSketch {
    levels: Vec<Vec<f64>>,
    /// Per-level survivor parity, flipped on each compaction.
    parity: Vec<bool>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            levels: vec![Vec::new()],
            parity: vec![false],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.levels[0].push(x);
        if self.levels[0].len() >= SKETCH_LEVEL_CAP {
            self.compact(0);
        }
    }

    /// Sorts level `i`, promotes alternating survivors to level `i+1`,
    /// and cascades if that fills the next level.
    fn compact(&mut self, i: usize) {
        if self.levels.len() == i + 1 {
            self.levels.push(Vec::new());
            self.parity.push(false);
        }
        let mut buf = std::mem::take(&mut self.levels[i]);
        buf.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in quantile sketch"));
        let offset = usize::from(self.parity[i]);
        self.parity[i] = !self.parity[i];
        self.levels[i + 1].extend(buf.iter().skip(offset).step_by(2));
        if self.levels[i + 1].len() >= SKETCH_LEVEL_CAP {
            self.compact(i + 1);
        }
    }

    /// Number of observations (exact).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the sketch has seen no observations.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest observation (exact), or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (exact), or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (exact), or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`), or `None` if
    /// empty. `q = 0` and `q = 1` return the exact min/max.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        // Gather (value, weight) across levels; level i carries 2^i.
        let mut weighted: Vec<(f64, u64)> = Vec::new();
        for (i, level) in self.levels.iter().enumerate() {
            let w = 1u64 << i;
            weighted.extend(level.iter().map(|&v| (v, w)));
        }
        weighted.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in quantile sketch"));
        let total: u64 = weighted.iter().map(|&(_, w)| w).sum();
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut acc = 0u64;
        for &(v, w) in &weighted {
            acc += w;
            if acc >= target {
                return Some(v);
            }
        }
        Some(self.max)
    }

    /// Merges another sketch into this one. Count/sum/min/max stay
    /// exact; rank error stays within the documented bound.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (i, level) in other.levels.iter().enumerate() {
            while self.levels.len() <= i {
                self.levels.push(Vec::new());
                self.parity.push(false);
            }
            self.levels[i].extend_from_slice(level);
        }
        // Re-establish level caps bottom-up.
        let mut i = 0;
        while i < self.levels.len() {
            if self.levels[i].len() >= SKETCH_LEVEL_CAP {
                self.compact(i);
            }
            i += 1;
        }
    }

    /// Total retained samples across levels (for memory-bound tests).
    pub fn retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

/// A fixed-width-bin histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram bounds inverted: [{lo}, {hi})");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The left edge of bin `i`.
    pub fn bin_left(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * i as f64
    }

    /// Reads quantile `q` off the histogram as the right edge of the
    /// first bin whose CDF reaches `q`. Returns `None` when the
    /// histogram is empty, and the histogram's upper bound when the
    /// quantile lands in the overflow. Resolution is one bin width.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let cdf = self.cdf();
        Some(match cdf.iter().position(|&f| f >= q) {
            Some(i) => self.bin_left(i + 1),
            None => self.hi,
        })
    }

    /// Empirical CDF evaluated at each bin's *right* edge, as fractions in
    /// `[0, 1]`. Underflow counts toward every point; overflow toward none.
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = self.underflow;
        let total = self.count.max(1) as f64;
        self.bins
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total
            })
            .collect()
    }
}

/// A CDF over raw samples: returns `(value, fraction ≤ value)` pairs, one
/// per sample, as the paper's CDF figures plot.
pub fn empirical_cdf(mut samples: Vec<f64>) -> Vec<(f64, f64)> {
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
    let n = samples.len();
    samples
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// Fraction of `samples` that are `<= threshold`; useful for reading CDF
/// points in tests ("at least 80% of tenants changed groups ≤ 8 times").
pub fn fraction_at_or_below(samples: &[f64], threshold: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&x| x <= threshold).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_stats_basics() {
        let mut s = StreamingStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn streaming_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..1_000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = StreamingStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &data[..400] {
            a.push(x);
        }
        for &x in &data[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = StreamingStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut p = Percentiles::new();
        p.extend((1..=100).map(|i| i as f64));
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
        let median = p.quantile(0.5).unwrap();
        assert!((median - 50.5).abs() < 1e-9);
        let p99 = p.p99().unwrap();
        assert!((p99 - 99.01).abs() < 1e-9);
    }

    #[test]
    fn percentiles_single_and_empty() {
        let mut p = Percentiles::new();
        assert_eq!(p.quantile(0.5), None);
        p.push(42.0);
        assert_eq!(p.quantile(0.99), Some(42.0));
        assert_eq!(p.mean(), Some(42.0));
    }

    #[test]
    fn histogram_binning_and_cdf() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0); // underflow
        h.push(99.0); // overflow
        assert_eq!(h.count(), 12);
        assert!(h.bins().iter().all(|&c| c == 1));
        let cdf = h.cdf();
        // Last in-range point covers underflow + all 10 bins = 11/12.
        assert!((cdf[9] - 11.0 / 12.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]), "CDF not monotone");
    }

    #[test]
    fn histogram_quantile_reads_bin_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        // Median of 10 uniform points: right edge of the 5th bin.
        assert_eq!(h.quantile(0.5), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        // Overflow-heavy histogram: quantile lands at the upper bound.
        let mut o = Histogram::new(0.0, 1.0, 4);
        o.push(0.5);
        o.push(50.0);
        assert_eq!(o.quantile(0.99), Some(1.0));
        // Empty histogram has no quantiles.
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), None);
    }

    #[test]
    fn empirical_cdf_is_monotone() {
        let cdf = empirical_cdf(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.first().unwrap().0, 1.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn fraction_at_or_below_counts() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_at_or_below(&xs, 2.5), 0.5);
        assert_eq!(fraction_at_or_below(&xs, 0.0), 0.0);
        assert_eq!(fraction_at_or_below(&[], 1.0), 0.0);
    }

    #[test]
    fn sorted_samples_match_percentiles() {
        let mut p = Percentiles::new();
        p.extend((1..=100).rev().map(|i| i as f64));
        let mut q = p.clone();
        let frozen = p.freeze();
        for quant in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(frozen.quantile(quant), q.quantile(quant));
        }
        assert_eq!(frozen.p99(), q.p99());
        assert_eq!(frozen.mean(), q.mean());
        assert_eq!(frozen.len(), 100);
        assert!(!frozen.is_empty());
        assert!(SortedSamples::default().quantile(0.5).is_none());
    }

    /// Asserts every sketch quantile lands within `bound_frac · n` ranks
    /// of the exact answer on `data`.
    fn assert_sketch_close(data: &[f64], bound_frac: f64, label: &str) {
        let mut sketch = QuantileSketch::new();
        for &x in data {
            sketch.push(x);
        }
        let mut sorted = data.to_vec();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let n = data.len() as f64;
        assert_eq!(sketch.count(), data.len() as u64, "{label}: count");
        assert_eq!(sketch.min(), sorted.first().copied(), "{label}: min");
        assert_eq!(sketch.max(), sorted.last().copied(), "{label}: max");
        let exact_mean = data.iter().sum::<f64>() / n;
        assert!(
            (sketch.mean().unwrap() - exact_mean).abs() <= 1e-6 * exact_mean.abs().max(1.0),
            "{label}: mean"
        );
        for q in [0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let est = sketch.quantile(q).unwrap();
            // Rank interval the estimate occupies in the exact data.
            let rank_lo = sorted.partition_point(|&x| x < est) as f64;
            let rank_hi = sorted.partition_point(|&x| x <= est) as f64;
            let target = q * n;
            let err = if target < rank_lo {
                rank_lo - target
            } else if target > rank_hi {
                target - rank_hi
            } else {
                0.0
            };
            assert!(
                err <= bound_frac * n + 2.0,
                "{label}: q={q} estimate {est} off by {err:.0} ranks (bound {:.0})",
                bound_frac * n
            );
        }
    }

    #[test]
    fn sketch_quantiles_within_bound_random() {
        // splitmix64-driven uniform and heavy-tailed streams.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            crate::rng::splitmix64(state)
        };
        let uniform: Vec<f64> = (0..200_000)
            .map(|_| next() as f64 / u64::MAX as f64)
            .collect();
        assert_sketch_close(&uniform, 0.02, "uniform");
        let heavy: Vec<f64> = (0..200_000)
            .map(|_| {
                let u = (next() as f64 / u64::MAX as f64).max(1e-12);
                1.0 / u.powf(0.7)
            })
            .collect();
        assert_sketch_close(&heavy, 0.02, "heavy-tailed");
    }

    #[test]
    fn sketch_quantiles_within_bound_adversarial() {
        let n = 200_000usize;
        let asc: Vec<f64> = (0..n).map(|i| i as f64).collect();
        assert_sketch_close(&asc, 0.02, "sorted ascending");
        let desc: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
        assert_sketch_close(&desc, 0.02, "sorted descending");
        let constant = vec![7.5; n];
        assert_sketch_close(&constant, 0.02, "constant");
        let organ_pipe: Vec<f64> = (0..n)
            .map(|i| if i < n / 2 { i as f64 } else { (n - i) as f64 })
            .collect();
        assert_sketch_close(&organ_pipe, 0.02, "organ pipe");
        let alternating: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { -1e9 } else { 1e9 })
            .collect();
        assert_sketch_close(&alternating, 0.02, "alternating extremes");
    }

    #[test]
    fn sketch_memory_is_bounded() {
        let mut s = QuantileSketch::new();
        for i in 0..1_000_000u64 {
            s.push(i as f64);
        }
        // log2(1e6 / 256) ≈ 12 levels of ≤ 256 slots each.
        assert!(s.retained() < 16 * SKETCH_LEVEL_CAP, "{}", s.retained());
        assert_eq!(s.count(), 1_000_000);
    }

    #[test]
    fn sketch_merge_matches_single_stream() {
        let data: Vec<f64> = (0..100_000).map(|i| ((i * 37) % 1_000) as f64).collect();
        let mut whole = QuantileSketch::new();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for (i, &x) in data.iter().enumerate() {
            whole.push(x);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        let mut sorted = data.clone();
        sorted.sort_unstable_by(|x, y| x.partial_cmp(y).unwrap());
        let n = data.len() as f64;
        for q in [0.1, 0.5, 0.9, 0.99] {
            let est = a.quantile(q).unwrap();
            let rank = sorted.partition_point(|&x| x <= est) as f64;
            assert!(
                (rank - q * n).abs() <= 0.03 * n + 2.0,
                "merged q={q}: rank {rank} vs target {:.0}",
                q * n
            );
        }
    }

    #[test]
    fn sketch_empty_and_tiny() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        let mut one = QuantileSketch::new();
        one.push(3.0);
        assert_eq!(one.quantile(0.5), Some(3.0));
        assert_eq!(one.quantile(0.0), Some(3.0));
        assert_eq!(one.quantile(1.0), Some(3.0));
    }
}
