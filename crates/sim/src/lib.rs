//! Discrete-event simulation foundation for the `harvest` workspace.
//!
//! This crate provides the substrate every simulation in the workspace is
//! built on:
//!
//! * [`time`] — a millisecond-resolution simulated clock ([`SimTime`],
//!   [`SimDuration`]) with exact integer arithmetic so event ordering is
//!   deterministic and reproducible;
//! * [`engine`] — a deterministic event queue ([`EventQueue`]) with
//!   FIFO tie-breaking for simultaneous events;
//! * [`dist`] — random distributions (exponential, Poisson, normal,
//!   log-normal, Pareto, weighted choice) implemented in-tree on top of
//!   [`rand`], since only the base `rand` crate is available offline;
//! * [`metrics`] — streaming statistics, exact percentile sets, and
//!   fixed-bin histograms used by the experiment harness;
//! * [`rng`] — seed-derivation helpers so independent simulation
//!   components get decorrelated, reproducible random streams;
//! * [`par`] — a deterministic, order-preserving `par_map` for
//!   embarrassingly-parallel experiment matrices (byte-identical output
//!   at any thread count);
//! * [`obs`] — zero-cost-when-off observability: a [`Recorder`] facade
//!   of counters, gauges, bounded quantile sketches, and sim-time
//!   spans, with Chrome-trace/Perfetto and machine-readable JSON
//!   exporters;
//! * [`fairshare`] — an analytic O(log n) max-min fair-sharing engine
//!   ([`FairShare`]) for single-bottleneck resources: a virtual
//!   fair-work clock plus a completion-ordered heap, used by
//!   `net::fabric` (classifier-gated) and `disk::pool` (wholesale);
//! * [`fault`] — deterministic fault injection: seed-stream-driven
//!   [`FaultPlan`]s (crashes, rack power loss, link flaps, disk
//!   brown-outs) plus retry/backoff knobs, with [`fault::FaultPlan::none`]
//!   guaranteeing the no-fault path stays bitwise identical;
//! * [`supervise`] — a supervised `par_map`: per-task panic isolation
//!   (`catch_unwind` + bounded jittered retries + quarantine), a
//!   watchdog with per-task deadlines and cooperative [`supervise::CancelToken`]
//!   cancellation, so one bad task never aborts a long sweep.
//!
//! # Examples
//!
//! ```
//! use harvest_sim::engine::EventQueue;
//! use harvest_sim::time::{SimDuration, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::ZERO + SimDuration::from_secs(10), "b");
//! queue.push(SimTime::ZERO + SimDuration::from_secs(5), "a");
//! let (t, ev) = queue.pop().unwrap();
//! assert_eq!(ev, "a");
//! assert_eq!(t.as_secs(), 5);
//! ```

pub mod dist;
pub mod engine;
pub mod fairshare;
pub mod fault;
pub mod metrics;
pub mod obs;
pub mod par;
pub mod rng;
pub mod supervise;
pub mod time;

pub use engine::{EventKey, EventQueue};
pub use fairshare::{FairShare, SharingMode};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultProfile};
pub use obs::Recorder;
pub use par::{default_jobs, par_map, par_map_profiled, par_map_with};
pub use time::{SimDuration, SimTime};
