//! Servers, tenants, and their identifiers.

use std::fmt;
use std::ops::Range;

use harvest_signal::classify::UtilizationPattern;
use harvest_trace::reimage::TenantReimageModel;
use harvest_trace::timeseries::TimeSeries;

/// Identifies a server within a [`crate::Datacenter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

/// Identifies a primary tenant within a [`crate::Datacenter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

/// Identifies a rack within a [`crate::Datacenter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RackId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One physical server.
#[derive(Debug, Clone, PartialEq)]
pub struct Server {
    /// The server's id (also its index in [`crate::Datacenter::servers`]).
    pub id: ServerId,
    /// The primary tenant that owns the server.
    pub tenant: TenantId,
    /// The rack the server sits in.
    pub rack: RackId,
    /// How many 256 MB blocks of spare disk the primary tenant lets the
    /// harvesting file system use (§5.4: "primary tenants declare how much
    /// storage HDFS-H can use in each server").
    pub harvest_blocks: u32,
}

/// One primary tenant: an `<environment, machine function>` pair and the
/// servers it owns.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// The tenant's id (also its index in [`crate::Datacenter::tenants`]).
    pub id: TenantId,
    /// Display name.
    pub name: String,
    /// Environment this tenant belongs to. Multiple tenants (machine
    /// functions) may share one environment, and replica placement must
    /// not put two replicas in the same environment.
    pub environment: usize,
    /// The utilization pattern the tenant was generated with. The
    /// clustering service re-derives this from the trace; generation
    /// keeps the intent for validation.
    pub pattern: UtilizationPattern,
    /// One month of the tenant's "average server" CPU utilization at
    /// two-minute resolution (§3.2).
    pub trace: TimeSeries,
    /// The tenant's reimage behaviour.
    pub reimage: TenantReimageModel,
    /// The contiguous range of server indices the tenant owns.
    pub server_range: Range<u32>,
}

impl Tenant {
    /// Number of servers the tenant owns.
    pub fn n_servers(&self) -> usize {
        self.server_range.len()
    }

    /// Iterator over the tenant's server ids.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.server_range.clone().map(ServerId)
    }

    /// Whether the tenant owns the given server.
    pub fn owns(&self, server: ServerId) -> bool {
        self.server_range.contains(&server.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim::SimDuration;

    fn tenant() -> Tenant {
        Tenant {
            id: TenantId(3),
            name: "t".into(),
            environment: 1,
            pattern: UtilizationPattern::Constant,
            trace: TimeSeries::constant(SimDuration::from_mins(2), 0.3, 10),
            reimage: TenantReimageModel::quiescent(),
            server_range: 10..15,
        }
    }

    #[test]
    fn server_range_accessors() {
        let t = tenant();
        assert_eq!(t.n_servers(), 5);
        assert!(t.owns(ServerId(10)));
        assert!(t.owns(ServerId(14)));
        assert!(!t.owns(ServerId(15)));
        let ids: Vec<ServerId> = t.server_ids().collect();
        assert_eq!(ids.first(), Some(&ServerId(10)));
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn id_display() {
        assert_eq!(ServerId(7).to_string(), "s7");
        assert_eq!(TenantId(2).to_string(), "t2");
        assert_eq!(RackId(1).to_string(), "r1");
    }
}
