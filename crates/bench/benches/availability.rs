//! Benchmark for the Figure 16 availability simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_cluster::{Datacenter, UtilizationView};
use harvest_dfs::availability::{busy_mask, simulate_availability, AvailabilityConfig};
use harvest_dfs::placement::PlacementPolicy;
use harvest_sim::{SimDuration, SimTime};
use harvest_trace::datacenter::DatacenterProfile;
use harvest_trace::scaling::{calibrate, ScalingKind};
use std::hint::black_box;

fn bench_availability(c: &mut Criterion) {
    let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 42);
    let traces: Vec<_> = dc.tenants.iter().map(|t| &t.trace).collect();
    let factor = calibrate(&traces, ScalingKind::Linear, 0.5);
    let view = UtilizationView::scaled(&dc, ScalingKind::Linear, factor);

    c.bench_function("fig16_busy_mask", |b| {
        b.iter(|| black_box(busy_mask(&dc, &view, SimTime::from_secs(3_600))))
    });

    let mut group = c.benchmark_group("fig16_availability_1_day");
    group.sample_size(10);
    for policy in [PlacementPolicy::Stock, PlacementPolicy::History] {
        group.bench_function(policy.label(), |b| {
            b.iter(|| {
                let mut cfg = AvailabilityConfig::paper(policy, 3, 7);
                cfg.span = SimDuration::from_days(1);
                black_box(simulate_availability(&dc, &view, &cfg))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_availability
}
criterion_main!(benches);
