//! Re-share scaling benches: storm-sized flow convoys on an *unscaled*
//! DC-9 topology, across the three fair-sharing tiers.
//!
//! The workload is a rack-localized convoy — groups of 20 flows between
//! a rack pair, the locality real repair storms and shuffle waves have —
//! so each rack pair's flows form one component whose rack uplink is the
//! single bottleneck. The tiers:
//!
//! * `analytic` — `SharingMode::Auto`: the classifier proves each
//!   component single-bottleneck and routes it through the O(log n)
//!   fair-work clock, so per-event cost stays near-flat as the convoy
//!   grows (200 → 1 000 000 flows);
//! * `component` — `SharingMode::Filling` at component scope: the
//!   progressive-filling reference, O(component) per event;
//! * `global` — filling at global scope: the pre-optimization quadratic
//!   recompute, recorded only where it terminates in reasonable time.
//!
//! Modes:
//! * default — measures everything and (re)writes `BENCH_reshare.json`
//!   at the workspace root with per-tier wall clock and per-event cost;
//! * `RESHARE_SMOKE=1` — runs the 2 000- and 10 000-flow component
//!   cases and the 100 000-flow analytic-vs-component pair once each,
//!   asserting wall-clock ceilings sized far above the measured
//!   baselines but far below the next-slower tier, plus an analytic
//!   speedup floor of 5x at 100k (the recorded baseline is well above
//!   20x) — so a regression that silently demotes the fast path fails
//!   the assert (and, belt-and-braces, CI's wrapping `timeout`).

use std::time::{Duration, Instant};

use harvest_cluster::ServerId;
use harvest_net::{Fabric, NetworkConfig, ReshareScope, SharingMode, Topology};
use harvest_sim::SimTime;
use harvest_trace::datacenter::DatacenterProfile;
use std::hint::black_box;

const MB: u64 = 1024 * 1024;
const RACK_SIZE: u32 = harvest_cluster::datacenter::RACK_SIZE;
const GROUP: u64 = 20;

/// One fair-sharing tier under measurement.
#[derive(Clone, Copy, PartialEq)]
enum Engine {
    /// `SharingMode::Auto` at component scope: the analytic fast path.
    Analytic,
    /// `SharingMode::Filling` at component scope: the filling reference.
    Component,
    /// Filling at global scope: the quadratic pre-optimization regime.
    Global,
}

impl Engine {
    fn label(self) -> &'static str {
        match self {
            Engine::Analytic => "analytic",
            Engine::Component => "component",
            Engine::Global => "global",
        }
    }

    fn apply(self, fabric: &mut Fabric) {
        match self {
            Engine::Analytic => {
                fabric.set_reshare_scope(ReshareScope::Component);
                fabric.set_sharing_mode(SharingMode::Auto);
            }
            Engine::Component => {
                fabric.set_reshare_scope(ReshareScope::Component);
                fabric.set_sharing_mode(SharingMode::Filling);
            }
            Engine::Global => {
                fabric.set_reshare_scope(ReshareScope::Global);
                fabric.set_sharing_mode(SharingMode::Filling);
            }
        }
    }
}

/// Builds and fully drains one convoy of `n_flows`, returning the
/// completion count (sanity-checked by callers).
fn run_convoy(topo: &Topology, n_flows: u64, engine: Engine) -> usize {
    let mut fabric = Fabric::new(topo.clone(), &NetworkConfig::datacenter());
    engine.apply(&mut fabric);
    // Only full racks host convoy lanes (the trailing rack may be
    // partial and its missing servers would be out of range).
    let full_racks = topo.n_servers() as u64 / RACK_SIZE as u64;
    let pairs = full_racks / 2;
    for i in 0..n_flows {
        let group = i / GROUP;
        let lane = (i % GROUP) as u32;
        let pair = group % pairs;
        let src_rack = (2 * pair) as u32;
        let dst_rack = (2 * pair + 1) as u32;
        let src = ServerId(src_rack * RACK_SIZE + lane);
        let dst = ServerId(dst_rack * RACK_SIZE + lane);
        // Staggered within 97 ms so the whole convoy overlaps.
        fabric.schedule_flow(SimTime::from_millis(i % 97), src, dst, 64 * MB, i);
    }
    let done = fabric.drain().len();
    assert_eq!(done as u64, n_flows, "convoy lost flows");
    if engine == Engine::Analytic {
        assert!(
            fabric.stats().analytic_events > 0,
            "analytic tier never engaged on the convoy workload"
        );
    }
    done
}

/// Median wall-clock seconds over `iters` runs.
fn measure(topo: &Topology, n_flows: u64, engine: Engine, iters: usize) -> f64 {
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(run_convoy(topo, n_flows, engine));
        samples.push(t0.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2].as_secs_f64()
}

fn main() {
    let profile = DatacenterProfile::dc(9);
    let n_servers = profile.expected_servers();
    let topo = Topology::synthetic(n_servers, &NetworkConfig::datacenter());
    println!(
        "reshare bench: unscaled {} topology, {} servers / {} racks / {} links",
        profile.name(),
        topo.n_servers(),
        topo.n_racks(),
        topo.n_links(),
    );

    if std::env::var_os("RESHARE_SMOKE").is_some() {
        // CI budget guards (ceilings sit well above the recorded
        // baselines in BENCH_reshare.json yet well below the
        // next-slower tier, so an assert firing means a sharing tier
        // has regressed toward the one it was built to replace).
        for (n, engine, baseline, ceiling) in [
            (2_000u64, Engine::Component, 0.046, 1.0),
            (10_000, Engine::Component, 0.33, 50.0),
        ] {
            let secs = measure(&topo, n, engine, 1);
            let label = engine.label();
            println!("bench reshare/convoy_{n}_{label}           {secs:>10.3}s (smoke)");
            assert!(
                secs < ceiling,
                "{n}-flow {label} convoy took {secs:.2}s against a {ceiling}s budget — \
                 re-sharing has regressed toward the quadratic global recompute \
                 (baseline ~{baseline}s)"
            );
        }
        // The million-flow regime in miniature: at 100k the analytic
        // tier must beat component filling by a wide margin (recorded
        // baseline is well above 20x; the CI floor is 5x to absorb
        // noisy shared runners) and stay under an absolute ceiling.
        let analytic = measure(&topo, 100_000, Engine::Analytic, 1);
        println!("bench reshare/convoy_100000_analytic           {analytic:>10.3}s (smoke)");
        assert!(
            analytic < 30.0,
            "100k-flow analytic convoy took {analytic:.2}s against a 30s budget — \
             the fast path has regressed"
        );
        let component = measure(&topo, 100_000, Engine::Component, 1);
        println!("bench reshare/convoy_100000_component           {component:>10.3}s (smoke)");
        let speedup = component / analytic;
        println!("bench reshare/convoy_100000 analytic speedup   {speedup:>10.1}x (smoke)");
        assert!(
            speedup >= 5.0,
            "analytic tier only {speedup:.1}x faster than component filling on the \
             100k-flow convoy (CI floor 5x, recorded baseline >20x) — the classifier \
             is demoting single-bottleneck components"
        );
        return;
    }

    let mut json_rows: Vec<String> = Vec::new();
    for &n in &[200u64, 2_000, 10_000, 100_000, 1_000_000] {
        // The analytic tier runs everywhere — its per-event cost is the
        // point of the recording and must stay near-flat to a million
        // flows.
        let ana_iters = if n >= 100_000 { 1 } else { 3 };
        let ana = measure(&topo, n, Engine::Analytic, ana_iters);
        let per_event_us = ana / n as f64 * 1e6;
        println!(
            "bench reshare/convoy_{n}_analytic           {ana:>10.4}s median of {ana_iters}  \
             ({per_event_us:.2} us/event)"
        );
        // Component filling is O(component) per event: feasible to
        // 100k (each rack pair holds ~n/346 flows), hopeless at 1M.
        let comp = if n <= 100_000 {
            let iters = if n >= 10_000 { 1 } else { 5 };
            let c = measure(&topo, n, Engine::Component, iters);
            println!("bench reshare/convoy_{n}_component           {c:>10.4}s median of {iters}");
            Some(c)
        } else {
            println!("bench reshare/convoy_{n}_component           skipped (O(component) regime)");
            None
        };
        // The global reference is the pre-optimization algorithm; past
        // 2k flows it is far into the quadratic regime, so record it
        // only where it terminates in reasonable time.
        let glob = if n <= 2_000 {
            let iters = if n <= 200 { 5 } else { 1 };
            let g = measure(&topo, n, Engine::Global, iters);
            println!("bench reshare/convoy_{n}_global              {g:>10.4}s median of {iters}");
            Some(g)
        } else {
            println!("bench reshare/convoy_{n}_global              skipped (quadratic regime)");
            None
        };
        let fmt_opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.6}"),
            None => "null".into(),
        };
        let fmt_ratio = |v: Option<f64>| match v {
            Some(x) => format!("{:.2}", x / ana),
            None => "null".into(),
        };
        json_rows.push(format!(
            "    \"convoy_{n}\": {{ \"analytic_secs\": {ana:.6}, \
             \"analytic_per_event_us\": {per_event_us:.3}, \
             \"component_secs\": {}, \"global_secs\": {}, \
             \"analytic_speedup_vs_component\": {}, \
             \"analytic_speedup_vs_global\": {} }}",
            fmt_opt(comp),
            fmt_opt(glob),
            fmt_ratio(comp),
            fmt_ratio(glob),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"reshare\",\n  \"topology\": {{ \"profile\": \"{}\", \"servers\": {}, \"racks\": {}, \"links\": {} }},\n  \"workload\": \"rack-pair convoy, 64 MiB flows, {}-flow groups, starts staggered over 97 ms\",\n  \"tiers\": \"analytic = SharingMode::Auto (O(log n) fast path), component = filling at component scope, global = filling at global scope (pre-optimization reference)\",\n  \"convoys\": {{\n{}\n  }}\n}}\n",
        profile.name(),
        topo.n_servers(),
        topo.n_racks(),
        topo.n_links(),
        GROUP,
        json_rows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reshare.json");
    std::fs::write(path, &json).expect("write BENCH_reshare.json");
    println!("wrote {path}");
}
