//! Re-share scaling benches: storm-sized flow convoys on an *unscaled*
//! DC-9 topology, component-scoped vs. the global reference recompute.
//!
//! The workload is a rack-localized convoy — groups of 20 flows between
//! a rack pair, the locality real repair storms and shuffle waves have —
//! so the component-scoped allocator touches O(group) state per event
//! while the global reference pays O(population). 200 / 2 000 / 10 000
//! concurrent flows; the 10k global case is skipped (that is the
//! quadratic regime the optimization removes — it runs for minutes).
//!
//! Modes:
//! * default — measures everything and (re)writes `BENCH_reshare.json`
//!   at the workspace root: the recorded before (global) / after
//!   (component) baseline;
//! * `RESHARE_SMOKE=1` — runs the 2 000- and 10 000-flow component
//!   cases once each, asserting wall-clock ceilings sized far above the
//!   measured baselines (0.029 s / 0.25 s) but far below what the
//!   quadratic global regime takes (2.4 s / minutes) — so a regression
//!   to global-recompute behavior fails the assert (and,
//!   belt-and-braces, CI's wrapping `timeout`).

use std::time::{Duration, Instant};

use harvest_cluster::ServerId;
use harvest_net::{Fabric, NetworkConfig, ReshareScope, Topology};
use harvest_sim::SimTime;
use harvest_trace::datacenter::DatacenterProfile;
use std::hint::black_box;

const MB: u64 = 1024 * 1024;
const RACK_SIZE: u32 = harvest_cluster::datacenter::RACK_SIZE;
const GROUP: u64 = 20;

/// Builds and fully drains one convoy of `n_flows`, returning the
/// completion count (sanity-checked by callers).
fn run_convoy(topo: &Topology, n_flows: u64, scope: ReshareScope) -> usize {
    let mut fabric = Fabric::new(topo.clone(), &NetworkConfig::datacenter());
    fabric.set_reshare_scope(scope);
    // Only full racks host convoy lanes (the trailing rack may be
    // partial and its missing servers would be out of range).
    let full_racks = topo.n_servers() as u64 / RACK_SIZE as u64;
    let pairs = full_racks / 2;
    for i in 0..n_flows {
        let group = i / GROUP;
        let lane = (i % GROUP) as u32;
        let pair = group % pairs;
        let src_rack = (2 * pair) as u32;
        let dst_rack = (2 * pair + 1) as u32;
        let src = ServerId(src_rack * RACK_SIZE + lane);
        let dst = ServerId(dst_rack * RACK_SIZE + lane);
        // Staggered within 97 ms so the whole convoy overlaps.
        fabric.schedule_flow(SimTime::from_millis(i % 97), src, dst, 64 * MB, i);
    }
    let done = fabric.drain().len();
    assert_eq!(done as u64, n_flows, "convoy lost flows");
    done
}

/// Median wall-clock seconds over `iters` runs.
fn measure(topo: &Topology, n_flows: u64, scope: ReshareScope, iters: usize) -> f64 {
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(run_convoy(topo, n_flows, scope));
        samples.push(t0.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2].as_secs_f64()
}

fn main() {
    let profile = DatacenterProfile::dc(9);
    let n_servers = profile.expected_servers();
    let topo = Topology::synthetic(n_servers, &NetworkConfig::datacenter());
    println!(
        "reshare bench: unscaled {} topology, {} servers / {} racks / {} links",
        profile.name(),
        topo.n_servers(),
        topo.n_racks(),
        topo.n_links(),
    );

    if std::env::var_os("RESHARE_SMOKE").is_some() {
        // CI budget guards (ceilings sit well above the component
        // baselines in BENCH_reshare.json yet well below the quadratic
        // global regime, so either assert firing means re-sharing has
        // regressed toward the global recompute).
        for (n, baseline, ceiling) in [(2_000u64, 0.029, 1.0), (10_000, 0.25, 50.0)] {
            let secs = measure(&topo, n, ReshareScope::Component, 1);
            println!("bench reshare/convoy_{n}_component           {secs:>10.3}s (smoke)");
            assert!(
                secs < ceiling,
                "{n}-flow convoy took {secs:.2}s against a {ceiling}s budget — re-sharing has \
                 regressed toward the quadratic global recompute (component baseline ~{baseline}s)"
            );
        }
        return;
    }

    let mut json_rows: Vec<String> = Vec::new();
    for &n in &[200u64, 2_000, 10_000] {
        let comp_iters = if n >= 10_000 { 3 } else { 5 };
        let comp = measure(&topo, n, ReshareScope::Component, comp_iters);
        println!(
            "bench reshare/convoy_{n}_component           {comp:>10.4}s median of {comp_iters}"
        );
        // The global reference is the pre-optimization algorithm; at
        // 10k flows it is far into the quadratic regime, so record it
        // only where it terminates in reasonable time.
        let glob = if n <= 2_000 {
            let iters = if n <= 200 { 5 } else { 1 };
            let g = measure(&topo, n, ReshareScope::Global, iters);
            println!("bench reshare/convoy_{n}_global              {g:>10.4}s median of {iters}");
            Some(g)
        } else {
            println!("bench reshare/convoy_{n}_global              skipped (quadratic regime)");
            None
        };
        let (glob_str, speedup_str) = match glob {
            Some(g) => (format!("{g:.6}"), format!("{:.2}", g / comp)),
            None => ("null".into(), "null".into()),
        };
        json_rows.push(format!(
            "    \"convoy_{n}\": {{ \"component_secs\": {comp:.6}, \"global_secs\": {glob_str}, \"speedup\": {speedup_str} }}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"reshare\",\n  \"topology\": {{ \"profile\": \"{}\", \"servers\": {}, \"racks\": {}, \"links\": {} }},\n  \"workload\": \"rack-pair convoy, 64 MiB flows, {}-flow groups, starts staggered over 97 ms\",\n  \"convoys\": {{\n{}\n  }}\n}}\n",
        profile.name(),
        topo.n_servers(),
        topo.n_racks(),
        topo.n_links(),
        GROUP,
        json_rows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reshare.json");
    std::fs::write(path, &json).expect("write BENCH_reshare.json");
    println!("wrote {path}");
}
