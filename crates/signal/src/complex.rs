//! A minimal complex-number type for the FFT.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Returns `e^(iθ)` — the unit complex number at angle `theta` radians.
    pub fn from_polar_unit(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// The complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// The squared magnitude `re² + im²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;

    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;

    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;

    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;

    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z, Complex::new(-3.0, 4.0));
    }

    #[test]
    fn multiplication() {
        // (1 + 2i)(3 + 4i) = 3 + 4i + 6i + 8i² = -5 + 10i
        let p = Complex::new(1.0, 2.0) * Complex::new(3.0, 4.0);
        assert_eq!(p, Complex::new(-5.0, 10.0));
    }

    #[test]
    fn norms() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        // z * conj(z) is |z|² on the real axis.
        let zz = z * z.conj();
        assert!((zz.re - 25.0).abs() < 1e-12 && zz.im.abs() < 1e-12);
    }

    #[test]
    fn polar_unit_circle() {
        let i = Complex::from_polar_unit(std::f64::consts::FRAC_PI_2);
        assert!((i.re).abs() < 1e-12);
        assert!((i.im - 1.0).abs() < 1e-12);
        // e^{iπ} = -1.
        let m1 = Complex::from_polar_unit(std::f64::consts::PI);
        assert!((m1.re + 1.0).abs() < 1e-12);
    }
}
