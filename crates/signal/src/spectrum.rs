//! Power spectra and periodicity measures for utilization traces.
//!
//! The classifier needs two spectral quantities: how much of a trace's
//! energy sits at the diurnal frequency and its harmonics (periodicity
//! strength, cf. Figure 1b's spike at frequency 31 for a 31-day month),
//! and how "noise-like" the spectrum is overall (spectral flatness, cf.
//! Figure 1d's decaying profile).

use crate::complex::Complex;
use crate::fft::fft_in_place;

/// Reusable buffers for spectral analysis.
///
/// One spectrum costs two allocations (the complex FFT workspace and
/// the power vector); a classification sweep over thousands of tenant
/// traces costs thousands — unless each worker carries one scratch and
/// threads it through every call. The scratch carries no information
/// between calls (both buffers are fully overwritten), so reuse never
/// changes a result.
#[derive(Debug, Default)]
pub struct SpectrumScratch {
    data: Vec<Complex>,
    powers: Vec<f64>,
}

impl SpectrumScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Power spectrum (|X[k]|²) of the non-redundant half of a real signal.
///
/// The signal is mean-subtracted (so the DC level and its window leakage do
/// not pollute low bins), Hann-windowed, and *truncated* to the largest
/// power-of-two prefix (rather than zero-padded) so bin positions stay
/// meaningful and leakage is controlled. Bin `k` corresponds to frequency
/// `k / (n · dt)` where `n` is the truncated length.
///
/// Returns `(powers, n)` where `powers.len() == n / 2 + 1`.
pub fn power_spectrum_truncated(signal: &[f64]) -> (Vec<f64>, usize) {
    let mut scratch = SpectrumScratch::new();
    let n = power_spectrum_truncated_into(signal, &mut scratch);
    (std::mem::take(&mut scratch.powers), n)
}

/// [`power_spectrum_truncated`] into reusable scratch buffers.
///
/// Returns the truncated length `n`; the powers (`n / 2 + 1` of them)
/// are left in `scratch.powers` for the caller to read.
pub fn power_spectrum_truncated_into(signal: &[f64], scratch: &mut SpectrumScratch) -> usize {
    assert!(!signal.is_empty(), "cannot take spectrum of empty signal");
    let n = if signal.len().is_power_of_two() {
        signal.len()
    } else {
        (signal.len() + 1).next_power_of_two() / 2
    };
    let n = n.max(1);
    let mean = signal[..n].iter().sum::<f64>() / n as f64;
    let data = &mut scratch.data;
    data.clear();
    data.reserve(n);
    data.extend((0..n).map(|i| {
        let w = hann(i, n);
        Complex::from_real((signal[i] - mean) * w)
    }));
    fft_in_place(data);
    let half = n / 2;
    scratch.powers.clear();
    scratch.powers.reserve(half + 1);
    scratch
        .powers
        .extend(data[..=half].iter().map(|z| z.norm_sqr()));
    n
}

fn hann(i: usize, n: usize) -> f64 {
    if n <= 1 {
        return 1.0;
    }
    let x = std::f64::consts::PI * i as f64 / (n - 1) as f64;
    x.sin().powi(2)
}

/// How strongly a trace repeats with the given period, in `[0, 1]`.
///
/// Computes the fraction of non-DC spectral power that falls within ±2 bins
/// of the fundamental at `period_samples` and its first three harmonics.
/// Values near 1 mean nearly all variation is at that period; values near 0
/// mean none is.
///
/// `period_samples` is the period expressed in samples (e.g. a diurnal
/// cycle on a two-minute grid is 720 samples).
pub fn periodicity_strength(signal: &[f64], period_samples: f64) -> f64 {
    periodicity_strength_with(signal, period_samples, &mut SpectrumScratch::new())
}

/// [`periodicity_strength`] with caller-owned scratch buffers, for hot
/// loops classifying many traces.
pub fn periodicity_strength_with(
    signal: &[f64],
    period_samples: f64,
    scratch: &mut SpectrumScratch,
) -> f64 {
    if signal.len() < 8 || period_samples <= 0.0 {
        return 0.0;
    }
    let n = power_spectrum_truncated_into(signal, scratch);
    let powers = &scratch.powers;
    // Skip DC and near-DC bins: slow drift is not periodicity.
    let first_bin = 2usize;
    let total: f64 = powers.iter().skip(first_bin).sum();
    if total <= 1e-9 {
        return 0.0;
    }
    let fundamental = n as f64 / period_samples;
    let mut band = 0.0;
    for harmonic in 1..=4u32 {
        let center = fundamental * harmonic as f64;
        let lo = (center - 2.0).floor().max(first_bin as f64) as usize;
        let hi = ((center + 2.0).ceil() as usize).min(powers.len().saturating_sub(1));
        if lo <= hi {
            band += powers[lo..=hi].iter().sum::<f64>();
        }
    }
    (band / total).clamp(0.0, 1.0)
}

/// Spectral flatness (Wiener entropy) of the non-DC spectrum, in `[0, 1]`.
///
/// 1.0 for white noise (flat spectrum), near 0 for tonal signals.
pub fn spectral_flatness(signal: &[f64]) -> f64 {
    if signal.len() < 8 {
        return 1.0;
    }
    let (powers, _) = power_spectrum_truncated(signal);
    let body = &powers[1..];
    let n = body.len() as f64;
    let eps = 1e-12;
    let log_mean = body.iter().map(|&p| (p + eps).ln()).sum::<f64>() / n;
    let mean = body.iter().sum::<f64>() / n + eps;
    (log_mean.exp() / mean).clamp(0.0, 1.0)
}

/// The dominant non-DC period of a signal, in samples, or `None` for
/// signals too short to analyze.
pub fn dominant_period_samples(signal: &[f64]) -> Option<f64> {
    if signal.len() < 8 {
        return None;
    }
    let (powers, n) = power_spectrum_truncated(signal);
    let (best_bin, _) = powers
        .iter()
        .enumerate()
        .skip(2)
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN power"))?;
    Some(n as f64 / best_bin as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal_signal(days: usize, samples_per_day: usize, noise: f64) -> Vec<f64> {
        let n = days * samples_per_day;
        (0..n)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * i as f64 / samples_per_day as f64;
                let pseudo_noise = ((i as f64 * 12.9898).sin() * 43_758.547).fract();
                0.5 + 0.3 * phase.sin() + noise * (pseudo_noise - 0.5)
            })
            .collect()
    }

    #[test]
    fn pure_diurnal_has_high_strength() {
        let sig = diurnal_signal(30, 720, 0.0);
        let s = periodicity_strength(&sig, 720.0);
        assert!(s > 0.8, "strength {s} too low for pure tone");
    }

    #[test]
    fn noisy_diurnal_still_detected() {
        let sig = diurnal_signal(30, 720, 0.2);
        let s = periodicity_strength(&sig, 720.0);
        assert!(s > 0.3, "strength {s} too low for noisy diurnal");
    }

    #[test]
    fn white_noise_has_low_strength_and_high_flatness() {
        // LCG noise: spectrally white, unlike sin-based pseudo-noise.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let sig: Vec<f64> = (0..21_600)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let s = periodicity_strength(&sig, 720.0);
        assert!(s < 0.1, "strength {s} too high for noise");
        let f = spectral_flatness(&sig);
        assert!(f > 0.3, "flatness {f} too low for noise");
    }

    #[test]
    fn tonal_signal_has_low_flatness() {
        let sig = diurnal_signal(30, 720, 0.0);
        let f = spectral_flatness(&sig);
        assert!(f < 0.05, "flatness {f} too high for tone");
    }

    #[test]
    fn dominant_period_finds_diurnal() {
        let sig = diurnal_signal(30, 720, 0.05);
        let p = dominant_period_samples(&sig).unwrap();
        assert!(
            (p - 720.0).abs() / 720.0 < 0.15,
            "dominant period {p} not ~720"
        );
    }

    #[test]
    fn constant_signal_has_zero_strength() {
        let sig = vec![0.4; 4_096];
        assert_eq!(periodicity_strength(&sig, 720.0), 0.0);
    }

    #[test]
    fn short_signals_are_safe() {
        assert_eq!(periodicity_strength(&[1.0, 2.0], 2.0), 0.0);
        assert_eq!(dominant_period_samples(&[1.0]), None);
        assert_eq!(spectral_flatness(&[1.0, 2.0, 3.0]), 1.0);
    }

    #[test]
    fn scratch_reuse_is_bitwise_identical_across_mixed_lengths() {
        // One scratch over signals of different truncated lengths must
        // reproduce the allocating path bit for bit (no stale state).
        let mut scratch = SpectrumScratch::new();
        for len in [4_096usize, 1_000, 21_600, 64] {
            let sig: Vec<f64> = (0..len).map(|i| (i as f64 * 0.011).sin() + 0.5).collect();
            let fresh = periodicity_strength(&sig, 720.0);
            let reused = periodicity_strength_with(&sig, 720.0, &mut scratch);
            assert_eq!(fresh.to_bits(), reused.to_bits(), "len {len}");
        }
    }
}
