//! Checkpoint/resume overhead bench: the fig15 durability sweep (the
//! widest task matrix in `repro`) with the crash-safe journal off, on,
//! and restoring.
//!
//! The resilience harness itself (per-task `catch_unwind`, the straggler
//! watchdog) is always on and gated by the suite bench's 1.05x guard;
//! this bench prices the parts that are opt-in:
//!
//! * `checkpoint` — every completed task appended to a checksummed
//!   journal through `obs::json`, fsync'd in batches of 32. The report
//!   must stay byte-identical to the journal-free run.
//! * `resume` — a second run restoring every task from that journal,
//!   computing nothing. This is the crash-recovery payoff: wall clock
//!   collapses to parse + render.
//!
//! Modes:
//! * default — times each path once and writes `BENCH_supervise.json`
//!   at the workspace root.
//! * `SUPERVISE_SMOKE=1` — a reduced slice for CI, best-of-two per
//!   path, asserting byte-identical reports, a full restore, and a
//!   bounded journaling overhead (<= 1.25x + 0.1s absolute slack; the
//!   journal is tens of lines, so the budget is mostly fsync).

use std::sync::Arc;
use std::time::Instant;

use harvest_core::{run_experiment, Checkpoint, Scale};
use harvest_sim::par::default_jobs;

const EXPERIMENT: &str = "fig15";

fn scale(smoke: bool) -> Scale {
    let mut s = Scale::quick();
    s.jobs = default_jobs();
    if smoke {
        s.runs = 2;
        s.durability_months = 3;
        s.utilizations = vec![0.45];
    }
    s
}

/// Runs fig15 with the given journal wiring, returning (wall seconds,
/// report, results restored from the journal).
fn run(smoke: bool, write: Option<&str>, resume: Option<&str>) -> (f64, String, u64) {
    let mut s = scale(smoke);
    let cp = Checkpoint::open(write, resume)
        .expect("journal opens")
        .map(|(cp, _, _)| Arc::new(cp));
    s.harness.checkpoint = cp.clone();
    let t0 = Instant::now();
    let report = run_experiment(EXPERIMENT, &s).expect("experiment runs");
    let secs = t0.elapsed().as_secs_f64();
    if let Some(cp) = cp {
        cp.flush().expect("journal flushes");
    }
    (secs, report, s.harness.stats.take().restored)
}

fn main() {
    let smoke = std::env::var_os("SUPERVISE_SMOKE").is_some();
    let journal =
        std::env::temp_dir().join(format!("harvest-supervise-{}.journal", std::process::id()));
    let journal = journal.to_str().expect("utf-8 temp path");
    println!(
        "supervise bench: {EXPERIMENT} at quick scale{}, journal off vs on vs restoring",
        if smoke { " (smoke slice)" } else { "" },
    );

    let iters = if smoke { 2 } else { 1 };
    let best = |write: Option<&str>, resume: Option<&str>| -> (f64, String, u64) {
        (0..iters)
            .map(|_| run(smoke, write, resume))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("iters >= 1")
    };

    let (off_secs, off_report, _) = best(None, None);
    println!("bench supervise/journal-off      {off_secs:>10.3}s");
    let (on_secs, on_report, _) = best(Some(journal), None);
    println!("bench supervise/journal-on       {on_secs:>10.3}s");
    // The resume pass restores from the journal the timed pass above
    // just finished writing (best-of-N reuses the same path, so the
    // file is always the complete run).
    let (resume_secs, resume_report, restored) = best(None, Some(journal));
    println!("bench supervise/resume           {resume_secs:>10.3}s ({restored} restored)");
    let overhead = on_secs / off_secs;
    println!("bench supervise/journal overhead {overhead:>10.3}x");

    assert_eq!(off_report, on_report, "journaling changed the report bytes");
    assert_eq!(
        off_report, resume_report,
        "restoring changed the report bytes"
    );
    assert!(restored > 0, "resume pass restored nothing");
    assert!(
        resume_secs < off_secs,
        "restoring every task ({resume_secs:.3}s) should beat recomputing ({off_secs:.3}s)"
    );

    if smoke {
        assert!(
            on_secs <= off_secs * 1.25 + 0.1,
            "journaling cost {:.1}% over the journal-free sweep",
            (overhead - 1.0) * 100.0
        );
        let _ = std::fs::remove_file(journal);
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"supervise\",\n  \"workload\": \"repro {EXPERIMENT} at quick scale under the resilience harness\",\n  \"overhead\": {{ \"journal_off_secs\": {off_secs:.3}, \"journal_on_secs\": {on_secs:.3}, \"journal_overhead\": {overhead:.3}, \"resume_secs\": {resume_secs:.3}, \"restored\": {restored} }},\n  \"note\": \"journal-on appends checksummed lines with batched fsync and must keep the report byte-identical; resume restores every task from the journal and computes nothing\"\n}}\n",
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_supervise.json");
    std::fs::write(path, &json).expect("write BENCH_supervise.json");
    println!("wrote {path}");
    let _ = std::fs::remove_file(journal);
}
