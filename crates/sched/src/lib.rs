//! The primary-tenant-aware cluster scheduler (YARN-H / Tez-H).
//!
//! This crate implements both halves of the paper's compute-harvesting
//! design (§4.1, §5.3):
//!
//! * **Primary-tenant awareness** — node managers report the primary's
//!   rounded-up usage, keep a resource reserve free for bursts, and kill
//!   the *youngest* harvested containers when the reserve is violated;
//! * **Smart task scheduling** — a clustering service ([`classes`]) that
//!   groups tenants by utilization pattern (FFT + K-Means, daily), and
//!   Algorithm 1 ([`select`]) which picks the tenant *class* whose
//!   history predicts enough headroom for the job's expected length,
//!   using per-(job-type, pattern) ranking weights ([`headroom`]).
//!
//! Three scheduler variants mirror the paper's comparisons ([`policy`]):
//! `Stock` (primary-oblivious), `PrimaryAware` ("YARN-PT": reserve +
//! kills, no history), and `History` ("YARN-H/Tez-H": reserve + kills +
//! Algorithm 1).
//!
//! [`sim`] is the discrete-event co-location simulator that runs a
//! workload of DAG jobs against a [`harvest_cluster::Datacenter`] under
//! any of the three policies, producing per-job execution times, kill
//! counts, and utilization — the quantities behind Figures 10, 11, 13,
//! and 14. With a [`harvest_net::NetworkConfig`] the simulator also
//! carries inter-stage shuffles over the shared fabric, so stage
//! runtimes stretch under network contention. Its tick path is
//! change-driven ([`sim::TickSweep`], backed by the indices in
//! [`roster`]): a tick costs O(changed + occupied) rather than
//! O(fleet), with the full-sweep reference pinned bitwise identical.

pub mod classes;
pub mod headroom;
pub mod policy;
pub mod roster;
pub mod select;
pub mod sim;
pub mod stats;

pub use classes::{ClusteringService, TenantClass};
pub use policy::SchedPolicy;
pub use sim::{SchedSim, SchedSimConfig, TickSweep};
pub use stats::{JobResult, SimStats};
