//! Algorithm 2's two-dimensional clustering scheme (Figure 8).
//!
//! "Our replica placement algorithm creates a two-dimensional clustering
//! scheme, where one dimension corresponds to durability (disk reimages)
//! and the other to availability (peak CPU utilization). It splits the
//! two-dimensional space into 3×3 classes …, each of which has the same
//! amount of available storage for harvesting S/9."
//!
//! Tenants are first split into three *columns* of equal space along the
//! reimage axis, then each column is split into three *rows* of equal
//! space along the peak-utilization axis — which is why "the rows
//! defining the peak utilization classes do not align" in Figure 8. Each
//! tenant lands in exactly one cell ("we prevent this situation by
//! selecting a single class for each tenant"), trading perfect space
//! balance for placement diversity.

use harvest_cluster::{Datacenter, TenantId};

/// A cell of the 3×3 grid: (reimage column, peak-utilization row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cell {
    /// Reimage-frequency column: 0 = infrequent … 2 = frequent.
    pub col: u8,
    /// Peak-utilization row: 0 = low … 2 = high.
    pub row: u8,
}

impl Cell {
    /// The cell's index in `0..9` (row-major).
    pub fn index(self) -> usize {
        self.row as usize * 3 + self.col as usize
    }
}

/// The 3×3 tenant clustering used by Algorithm 2.
#[derive(Debug, Clone)]
pub struct Grid2D {
    /// Cell of each tenant, indexed by tenant id.
    tenant_cell: Vec<Cell>,
    /// Member tenants per cell (row-major index).
    members: Vec<Vec<TenantId>>,
    /// Total harvestable blocks per cell.
    space: [u64; 9],
}

impl Grid2D {
    /// Clusters the datacenter's tenants from their reimage models and
    /// utilization traces.
    ///
    /// The reimage axis uses each tenant's expected monthly reimage rate;
    /// the availability axis uses the tenant's peak trace utilization.
    /// In production both would come from telemetry; callers with
    /// measured statistics can use [`Grid2D::from_stats`].
    pub fn build(dc: &Datacenter) -> Self {
        let stats: Vec<(f64, f64, u64)> = dc
            .tenants
            .iter()
            .map(|t| {
                let space: u64 = t
                    .server_ids()
                    .map(|sid| dc.server(sid).harvest_blocks as u64)
                    .sum();
                (t.reimage.expected_monthly_rate(), t.trace.peak(), space)
            })
            .collect();
        Self::from_stats(&stats)
    }

    /// Clusters from explicit per-tenant `(reimage_rate, peak_util,
    /// harvestable_blocks)` triples. Tenant `i` of the slice is
    /// [`TenantId`] `i`.
    ///
    /// # Panics
    ///
    /// Panics if `stats` is empty.
    pub fn from_stats(stats: &[(f64, f64, u64)]) -> Self {
        assert!(!stats.is_empty(), "cannot build a grid with no tenants");
        let n = stats.len();

        // Column split: order by reimage rate, cut into three runs of
        // equal cumulative space.
        let mut by_rate: Vec<usize> = (0..n).collect();
        by_rate.sort_by(|&a, &b| {
            stats[a]
                .0
                .partial_cmp(&stats[b].0)
                .expect("NaN reimage rate")
                .then(a.cmp(&b))
        });
        let cols = split_equal_space(&by_rate, |i| stats[i].2, 3);

        let mut tenant_cell = vec![Cell { col: 0, row: 0 }; n];
        let mut members: Vec<Vec<TenantId>> = vec![Vec::new(); 9];
        let mut space = [0u64; 9];

        for (c, col_members) in cols.iter().enumerate() {
            // Row split within the column: order by peak utilization.
            let mut by_peak = col_members.clone();
            by_peak.sort_by(|&a, &b| {
                stats[a]
                    .1
                    .partial_cmp(&stats[b].1)
                    .expect("NaN peak util")
                    .then(a.cmp(&b))
            });
            let rows = split_equal_space(&by_peak, |i| stats[i].2, 3);
            for (r, row_members) in rows.iter().enumerate() {
                let cell = Cell {
                    col: c as u8,
                    row: r as u8,
                };
                for &t in row_members {
                    tenant_cell[t] = cell;
                    members[cell.index()].push(TenantId(t as u32));
                    space[cell.index()] += stats[t].2;
                }
            }
        }

        Grid2D {
            tenant_cell,
            members,
            space,
        }
    }

    /// The cell a tenant belongs to.
    pub fn cell_of(&self, tenant: TenantId) -> Cell {
        self.tenant_cell[tenant.0 as usize]
    }

    /// Member tenants of a cell.
    pub fn members(&self, cell: Cell) -> &[TenantId] {
        &self.members[cell.index()]
    }

    /// Harvestable blocks in a cell.
    pub fn space(&self, cell: Cell) -> u64 {
        self.space[cell.index()]
    }

    /// All nine cells, row-major.
    pub fn cells() -> impl Iterator<Item = Cell> {
        (0..3u8).flat_map(|row| (0..3u8).map(move |col| Cell { col, row }))
    }

    /// The ratio of the largest to the smallest cell's space — 1.0 is a
    /// perfect split; large tenants make it worse (the space-vs-diversity
    /// tradeoff of §4.2).
    pub fn space_imbalance(&self) -> f64 {
        let max = self.space.iter().max().copied().unwrap_or(0);
        let min = self.space.iter().min().copied().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

/// Splits an ordered index list into `k` consecutive runs whose space
/// sums are as equal as a greedy sweep can make them, without splitting
/// any single index across runs.
fn split_equal_space(order: &[usize], space: impl Fn(usize) -> u64, k: usize) -> Vec<Vec<usize>> {
    let total: u64 = order.iter().map(|&i| space(i)).sum();
    let target = total as f64 / k as f64;
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut run = 0usize;
    let mut acc = 0u64;
    for (pos, &i) in order.iter().enumerate() {
        let remaining_slots = k - run - 1;
        let remaining_items = order.len() - pos;
        // Never leave a later run empty.
        if run < k - 1
            && acc as f64 >= target * (run + 1) as f64
            && remaining_items > remaining_slots
        {
            run += 1;
        }
        // Force a move if we'd otherwise starve the remaining runs.
        if remaining_items == remaining_slots && run < k - 1 && !out[run].is_empty() {
            run += 1;
        }
        out[run].push(i);
        acc += space(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_trace::datacenter::DatacenterProfile;

    fn uniform_stats(n: usize) -> Vec<(f64, f64, u64)> {
        (0..n)
            .map(|i| {
                let rate = (i % 10) as f64 / 10.0;
                let peak = ((i * 7) % 10) as f64 / 10.0;
                (rate, peak, 100)
            })
            .collect()
    }

    #[test]
    fn nine_cells_with_equal_space_for_uniform_tenants() {
        let grid = Grid2D::from_stats(&uniform_stats(90));
        for cell in Grid2D::cells() {
            assert_eq!(grid.space(cell), 1_000, "cell {cell:?}");
        }
        assert!((grid.space_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn columns_respect_reimage_ordering() {
        let grid = Grid2D::from_stats(&uniform_stats(90));
        // Max rate in column 0 must not exceed min rate in column 2.
        let stats = uniform_stats(90);
        let col_rates = |c: u8| -> Vec<f64> {
            (0..90)
                .filter(|&t| grid.cell_of(TenantId(t as u32)).col == c)
                .map(|t| stats[t].0)
                .collect()
        };
        let c0 = col_rates(0);
        let c2 = col_rates(2);
        let max0 = c0.iter().cloned().fold(f64::MIN, f64::max);
        let min2 = c2.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max0 <= min2, "column ordering violated: {max0} > {min2}");
    }

    #[test]
    fn rows_respect_peak_ordering_within_a_column() {
        let stats = uniform_stats(90);
        let grid = Grid2D::from_stats(&stats);
        for col in 0..3u8 {
            let peak_of_row = |r: u8| -> Vec<f64> {
                (0..90)
                    .filter(|&t| {
                        let c = grid.cell_of(TenantId(t as u32));
                        c.col == col && c.row == r
                    })
                    .map(|t| stats[t].1)
                    .collect()
            };
            let r0 = peak_of_row(0);
            let r2 = peak_of_row(2);
            if r0.is_empty() || r2.is_empty() {
                continue;
            }
            let max0 = r0.iter().cloned().fold(f64::MIN, f64::max);
            let min2 = r2.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max0 <= min2, "row ordering violated in col {col}");
        }
    }

    #[test]
    fn every_tenant_in_exactly_one_cell() {
        let stats = uniform_stats(50);
        let grid = Grid2D::from_stats(&stats);
        let total: usize = Grid2D::cells().map(|c| grid.members(c).len()).sum();
        assert_eq!(total, 50);
        for t in 0..50u32 {
            let cell = grid.cell_of(TenantId(t));
            assert!(grid.members(cell).contains(&TenantId(t)));
        }
    }

    #[test]
    fn no_cell_is_empty_even_with_skewed_sizes() {
        // One huge tenant plus small ones.
        let mut stats = vec![(0.5, 0.5, 100_000u64)];
        stats.extend((0..20).map(|i| (i as f64 / 20.0, (i % 5) as f64 / 5.0, 100u64)));
        let grid = Grid2D::from_stats(&stats);
        // A tenant holding most of the space starves some cells — the
        // §4.2 space-vs-diversity tradeoff. Placement tolerates empty
        // cells, but most must stay populated.
        let populated = Grid2D::cells()
            .filter(|&c| !grid.members(c).is_empty())
            .count();
        assert!(populated >= 5, "only {populated} populated cells");
        // Imbalance is real and measurable (space-vs-diversity tradeoff).
        assert!(grid.space_imbalance() > 10.0);
    }

    #[test]
    fn nine_tenants_one_per_cell() {
        let stats: Vec<(f64, f64, u64)> = (0..9)
            .map(|i| ((i / 3) as f64, (i % 3) as f64, 500))
            .collect();
        let grid = Grid2D::from_stats(&stats);
        for cell in Grid2D::cells() {
            assert_eq!(grid.members(cell).len(), 1, "cell {cell:?}");
        }
    }

    #[test]
    fn builds_from_a_real_datacenter() {
        let dc = harvest_cluster::Datacenter::generate(&DatacenterProfile::dc(3).scaled(0.1), 7);
        let grid = Grid2D::build(&dc);
        let total_space: u64 = Grid2D::cells().map(|c| grid.space(c)).sum();
        assert_eq!(total_space, dc.total_harvest_blocks());
        // With dozens of tenants the split should be reasonably balanced.
        assert!(grid.space_imbalance() < 8.0, "{}", grid.space_imbalance());
    }

    #[test]
    fn cell_index_is_row_major() {
        assert_eq!(Cell { col: 0, row: 0 }.index(), 0);
        assert_eq!(Cell { col: 2, row: 0 }.index(), 2);
        assert_eq!(Cell { col: 0, row: 1 }.index(), 3);
        assert_eq!(Cell { col: 2, row: 2 }.index(), 8);
    }
}
