//! Validate the files `repro --trace-out` / `--metrics-out` wrote.
//!
//! ```sh
//! cargo run --release --bin repro -- micro --net --disk \
//!     --trace-out /tmp/trace.json --metrics-out /tmp/metrics.json
//! cargo run --release --example validate_obs /tmp/trace.json /tmp/metrics.json
//! ```
//!
//! Parses both exports with the in-repo JSON parser and checks the
//! shape the viewers rely on: the trace has events, at least one
//! sim-time complete span (pid 1) and one wall-time event (pid 2), and
//! the metrics report has a counters object. Wait-state events (`cat`
//! `"state"`) are validated structurally: every state name comes from
//! the known vocabulary, every entity's `b`/`e` pairs balance with
//! monotone non-decreasing timestamps, and at least one state event is
//! present. Exits non-zero (with the reason on stderr) on any failure,
//! so CI can smoke the export path.

use std::process::ExitCode;

use harvest::sim::obs::json::{self, Value};

fn check(trace_text: &str, metrics_text: &str) -> Result<(), String> {
    let trace = json::parse(trace_text).map_err(|e| format!("trace does not parse: {e}"))?;
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("trace lacks a traceEvents array")?;
    if events.is_empty() {
        return Err("trace has no events".into());
    }
    let pid = |e: &Value| e.get("pid").and_then(Value::as_f64).unwrap_or(0.0) as i64;
    let ph = |e: &Value| {
        e.get("ph")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string()
    };
    let sim_spans = events
        .iter()
        .filter(|e| pid(e) == 1 && (ph(e) == "X" || ph(e) == "i"))
        .count();
    if sim_spans == 0 {
        return Err("trace has no sim-time spans (pid 1, ph X/i)".into());
    }
    let wall_events = events.iter().filter(|e| pid(e) == 2).count();
    if wall_events == 0 {
        return Err("trace has no wall-time events (pid 2)".into());
    }

    // Wait-state events: known vocabulary, balanced begin/end pairs per
    // (track, entity), monotone non-decreasing timestamps per entity.
    const STATES: [&str; 9] = [
        "queued",
        "running",
        "blocked_on_net",
        "blocked_on_disk_read",
        "blocked_on_disk_write",
        "throttle_parked",
        "reserve_evicted",
        "failed",
        "retrying",
    ];
    let mut state_events = 0usize;
    // (tid, entity id) -> (open state name, last timestamp).
    let mut open: std::collections::HashMap<(i64, String), (String, f64)> =
        std::collections::HashMap::new();
    // (tid, entity id) -> timestamp of the last event seen, to check
    // that each entity's event stream is monotone non-decreasing.
    let mut last_ts: std::collections::HashMap<(i64, String), f64> =
        std::collections::HashMap::new();
    for e in events {
        if e.get("cat").and_then(Value::as_str) != Some("state") {
            continue;
        }
        state_events += 1;
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or("state event lacks a name")?;
        if !STATES.contains(&name) {
            return Err(format!("unknown state name {name:?}"));
        }
        let tid = e.get("tid").and_then(Value::as_f64).unwrap_or(-1.0) as i64;
        let id = e
            .get("id")
            .and_then(Value::as_str)
            .ok_or("state event lacks an entity id")?
            .to_string();
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or("state event lacks a timestamp")?;
        let key = (tid, id);
        let prev_ts = last_ts.entry(key.clone()).or_insert(ts);
        if ts < *prev_ts {
            return Err(format!(
                "entity {:?} timestamps go backwards ({ts} after {prev_ts})",
                key.1
            ));
        }
        *prev_ts = ts;
        match ph(e).as_str() {
            "b" => {
                if let Some((prev, _)) = &open.get(&key) {
                    return Err(format!(
                        "entity {:?} begins {name:?} while {prev:?} is open",
                        key.1
                    ));
                }
                open.insert(key, (name.to_string(), ts));
            }
            "e" => {
                let Some((entered, since)) = open.remove(&key) else {
                    return Err(format!("entity {:?} ends {name:?} it never began", key.1));
                };
                if entered != name {
                    return Err(format!(
                        "entity {:?} began {entered:?} but ended {name:?}",
                        key.1
                    ));
                }
                if ts < since {
                    return Err(format!(
                        "entity {:?} state {name:?} ends at {ts} before it begins at {since}",
                        key.1
                    ));
                }
            }
            other => return Err(format!("state event with unexpected ph {other:?}")),
        }
    }
    if state_events == 0 {
        return Err("trace has no wait-state events (cat \"state\")".into());
    }
    if let Some(((_, id), (name, _))) = open.iter().next() {
        return Err(format!("entity {id:?} never ends its {name:?} interval"));
    }

    let metrics = json::parse(metrics_text).map_err(|e| format!("metrics do not parse: {e}"))?;
    let counters = metrics
        .get("counters")
        .and_then(Value::as_obj)
        .ok_or("metrics report lacks a counters object")?;
    if counters.is_empty() {
        return Err("metrics report has no counters".into());
    }
    eprintln!(
        "ok: {} trace events ({} sim-time spans, {} wall-time events, \
         {} balanced state events), {} counters",
        events.len(),
        sim_spans,
        wall_events,
        state_events,
        counters.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [trace_path, metrics_path] = args.as_slice() else {
        eprintln!("usage: validate_obs TRACE.json METRICS.json");
        return ExitCode::FAILURE;
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let result = read(trace_path)
        .and_then(|t| read(metrics_path).map(|m| (t, m)))
        .and_then(|(t, m)| check(&t, &m));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("validate_obs: {e}");
            ExitCode::FAILURE
        }
    }
}
