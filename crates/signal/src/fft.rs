//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! The paper runs an FFT over each tenant's month of two-minute CPU
//! samples to expose periodicity (§3.2, Figure 1). Month-long traces are
//! not power-of-two length, so [`fft_real_padded`] zero-pads to the next
//! power of two — adequate for peak detection, which is all the
//! classifier needs.

use crate::complex::Complex;

/// Returns the smallest power of two `>= n` (and `>= 1`).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT. The input length must be a power of two.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT (including the 1/N normalization). The input length
/// must be a power of two.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft_in_place(data: &mut [Complex]) {
    transform(data, true);
    let scale = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(scale);
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let levels = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - levels)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterfly passes.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar_unit(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
///
/// Returns the full complex spectrum of the padded signal (length
/// `next_pow2(signal.len())`).
pub fn fft_real_padded(signal: &[f64]) -> Vec<Complex> {
    let mut data = Vec::new();
    fft_real_padded_into(signal, &mut data);
    data
}

/// [`fft_real_padded`] into a caller-owned buffer, so hot loops (e.g.
/// classifying thousands of tenant traces) reuse one allocation instead
/// of building a fresh spectrum vector per call.
///
/// `out` is cleared and overwritten with the full complex spectrum of
/// the padded signal (length `next_pow2(signal.len())`); its capacity is
/// retained across calls.
pub fn fft_real_padded_into(signal: &[f64], out: &mut Vec<Complex>) {
    let n = next_pow2(signal.len());
    out.clear();
    out.reserve(n);
    out.extend(signal.iter().map(|&x| Complex::from_real(x)));
    out.resize(n, Complex::ZERO);
    fft_in_place(out);
}

/// Magnitudes of the non-redundant half of a real signal's spectrum
/// (bins `0 ..= N/2` of the padded FFT).
pub fn magnitude_spectrum(signal: &[f64]) -> Vec<f64> {
    let spec = fft_real_padded(signal);
    let half = spec.len() / 2;
    spec[..=half].iter().map(|z| z.norm()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(21_600), 32_768);
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let signal = vec![5.0; 64];
        let spec = fft_real_padded(&signal);
        assert_close(spec[0].re, 5.0 * 64.0, 1e-9);
        for z in &spec[1..] {
            assert!(z.norm() < 1e-9);
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        let n = 256;
        let freq = 8;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq as f64 * i as f64 / n as f64).sin())
            .collect();
        let mags = magnitude_spectrum(&signal);
        let peak = mags[1..]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
            + 1;
        assert_eq!(peak, freq);
        // The tone bin should hold essentially all the energy: |X[f]| = n/2.
        assert_close(mags[freq], n as f64 / 2.0, 1e-6);
    }

    #[test]
    fn padded_into_reuses_buffer_and_matches_allocating_path() {
        let signal: Vec<f64> = (0..100).map(|i| (i as f64 * 0.13).sin()).collect();
        let fresh = fft_real_padded(&signal);
        let mut buf = Vec::new();
        fft_real_padded_into(&signal, &mut buf);
        assert_eq!(buf.len(), 128);
        assert_eq!(fresh, buf);
        let cap = buf.capacity();
        // A second, shorter signal must not reallocate and must match
        // its own allocating result exactly (no stale-tail leakage).
        let short: Vec<f64> = (0..60).map(|i| (i as f64 * 0.31).cos()).collect();
        fft_real_padded_into(&short, &mut buf);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(fft_real_padded(&short), buf);
    }

    #[test]
    fn round_trip_inverse() {
        let n = 128;
        let signal: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        for (orig, z) in signal.iter().zip(&data) {
            assert_close(z.re, *orig, 1e-9);
            assert!(z.im.abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let n = 512;
        let signal: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.37).sin() * 2.0 + 1.0)
            .collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real_padded(&signal);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert_close(time_energy, freq_energy, 1e-6);
    }

    #[test]
    fn linearity() {
        let n = 64;
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.5).sin()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let fa = fft_real_padded(&a);
        let fb = fft_real_padded(&b);
        let fsum = fft_real_padded(&sum);
        for i in 0..n {
            let expect = fa[i] + fb[i];
            assert_close(fsum[i].re, expect.re, 1e-9);
            assert_close(fsum[i].im, expect.im, 1e-9);
        }
    }

    #[test]
    fn tiny_inputs() {
        let mut one = vec![Complex::from_real(3.0)];
        fft_in_place(&mut one);
        assert_eq!(one[0], Complex::from_real(3.0));

        let mut two = vec![Complex::from_real(1.0), Complex::from_real(2.0)];
        fft_in_place(&mut two);
        assert_close(two[0].re, 3.0, 1e-12);
        assert_close(two[1].re, -1.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn non_pow2_panics() {
        let mut data = vec![Complex::ZERO; 12];
        fft_in_place(&mut data);
    }
}
