//! The durability simulation (Figure 15).
//!
//! Places a population of blocks, then replays months of per-server disk
//! reimages — independent reimages plus correlated redeployment sweeps —
//! repairing lost replicas through the throttled pipeline. A block whose
//! replicas are all destroyed before repair completes is lost forever.
//!
//! The paper simulates one year and 4 M blocks per datacenter; block
//! count scales with cluster size here (see
//! [`DurabilityConfig::fill_fraction`]), which preserves the per-server
//! replica density that determines loss dynamics.

use std::collections::BinaryHeap;

use harvest_cluster::{Datacenter, ServerId};
use harvest_sim::rng::stream_rng;
use harvest_sim::SimTime;
use rand::RngExt;

use crate::placement::{Placer, PlacementPolicy};
use crate::repair::{RepairConfig, RepairPipeline};
use crate::store::{BlockId, BlockStore};

/// Durability-simulation parameters.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Placement policy under test.
    pub policy: PlacementPolicy,
    /// Replicas per block (the paper evaluates 3 and 4).
    pub replication: usize,
    /// Fraction of the cluster's harvestable space to fill with blocks
    /// (replicas / capacity). The paper's 4 M blocks × 3 replicas lands
    /// around 50% of a production cluster's spare space.
    pub fill_fraction: f64,
    /// Simulated months (the paper uses 12).
    pub months: usize,
    /// Master seed.
    pub seed: u64,
    /// Repair timing.
    pub repair: RepairConfig,
}

impl DurabilityConfig {
    /// The paper's one-year setup for a given policy and replication.
    pub fn paper(policy: PlacementPolicy, replication: usize, seed: u64) -> Self {
        DurabilityConfig {
            policy,
            replication,
            fill_fraction: 0.5,
            months: 12,
            seed,
            repair: RepairConfig::default(),
        }
    }
}

/// Outcome of a durability simulation.
#[derive(Debug, Clone)]
pub struct DurabilityResult {
    /// Blocks created.
    pub n_blocks: u64,
    /// Blocks that lost every replica.
    pub lost_blocks: u64,
    /// Total server reimages replayed.
    pub reimages: u64,
    /// Replicas successfully re-created.
    pub repairs: u64,
    /// Repairs abandoned because the block was already lost.
    pub repairs_too_late: u64,
    /// Percentage of blocks lost (Figure 15's y-axis).
    pub lost_percent: f64,
}

/// An entry in the repair heap (min-heap by completion time).
#[derive(Debug, PartialEq, Eq)]
struct Repair {
    at: SimTime,
    block: BlockId,
}

impl Ord for Repair {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at).then(other.block.cmp(&self.block))
    }
}

impl PartialOrd for Repair {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs the durability simulation.
pub fn simulate_durability(dc: &Datacenter, cfg: &DurabilityConfig) -> DurabilityResult {
    assert!(cfg.replication >= 1, "replication must be at least 1");
    assert!(
        (0.0..=0.95).contains(&cfg.fill_fraction),
        "fill fraction must be in [0, 0.95]"
    );
    let placer = Placer::new(dc, cfg.policy);
    let mut store = BlockStore::new(dc);
    let mut rng = stream_rng(cfg.seed, "durability");

    // --- Phase 1: fill the store. ---
    let capacity = dc.total_harvest_blocks();
    let n_blocks = ((capacity as f64 * cfg.fill_fraction) / cfg.replication as f64) as u64;
    let n_servers = dc.n_servers();
    let mut created = 0u64;
    for _ in 0..n_blocks {
        // Writers are uniform over servers, as block creators in the
        // batch workload are.
        let writer = ServerId(rng.random_range(0..n_servers) as u32);
        match placer.place_new(&mut rng, &store, writer, cfg.replication, None) {
            Some(p) => {
                store.create_block(&p.servers);
                created += 1;
            }
            None => break,
        }
    }

    // --- Phase 2: generate the reimage schedule. ---
    let mut events: Vec<(SimTime, ServerId)> = Vec::new();
    for tenant in &dc.tenants {
        let mut trng = stream_rng(
            cfg.seed ^ (0xD15C_0000 + tenant.id.0 as u64),
            "tenant-reimages",
        );
        let (tenant_events, _) = tenant.reimage.generate(&mut trng, tenant.n_servers(), cfg.months);
        for e in tenant_events {
            let global = ServerId(tenant.server_range.start + e.server as u32);
            events.push((e.time, global));
        }
    }
    events.sort_by_key(|&(t, s)| (t, s));

    // --- Phase 3: replay reimages, repairing through the pipeline. ---
    let mut pipeline = RepairPipeline::new(cfg.repair, n_servers);
    let mut heap: BinaryHeap<Repair> = BinaryHeap::new();
    let mut repairs = 0u64;
    let mut too_late = 0u64;
    let reimage_count = events.len() as u64;

    for (now, server) in events {
        // Complete repairs due before this reimage.
        while heap.peek().map(|r| r.at <= now).unwrap_or(false) {
            let r = heap.pop().expect("peeked");
            apply_repair(
                &placer, &mut store, &mut rng, r.block, cfg.replication, &mut repairs,
                &mut too_late, &mut heap, &mut pipeline, r.at,
            );
        }
        // The reimage destroys this server's replicas.
        for block in store.reimage_server(server) {
            if store.replica_count(block) > 0 {
                let at = pipeline.schedule(now);
                heap.push(Repair { at, block });
            }
        }
    }
    // Drain the remaining repair queue.
    while let Some(r) = heap.pop() {
        apply_repair(
            &placer, &mut store, &mut rng, r.block, cfg.replication, &mut repairs,
            &mut too_late, &mut heap, &mut pipeline, r.at,
        );
    }

    let lost = store.lost_blocks();
    DurabilityResult {
        n_blocks: created,
        lost_blocks: lost,
        reimages: reimage_count,
        repairs,
        repairs_too_late: too_late,
        lost_percent: if created == 0 {
            0.0
        } else {
            lost as f64 / created as f64 * 100.0
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_repair(
    placer: &Placer<'_>,
    store: &mut BlockStore,
    rng: &mut rand::rngs::StdRng,
    block: BlockId,
    replication: usize,
    repairs: &mut u64,
    too_late: &mut u64,
    heap: &mut BinaryHeap<Repair>,
    pipeline: &mut RepairPipeline,
    now: SimTime,
) {
    let count = store.replica_count(block);
    if count == 0 {
        *too_late += 1;
        return;
    }
    if count >= replication {
        return; // already fully replicated (duplicate repair entries)
    }
    let existing: Vec<u32> = store.replicas(block).to_vec();
    if let Some(dest) = placer.place_repair(rng, store, &existing, None) {
        store.add_replica(block, dest);
        *repairs += 1;
        // Still short? (More than one replica was lost.) Queue another.
        if store.replica_count(block) < replication {
            let at = pipeline.schedule(now);
            heap.push(Repair { at, block });
        }
    } else {
        // No destination (cluster full): retry after a detection delay.
        let at = pipeline.schedule(now);
        heap.push(Repair { at, block });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_trace::datacenter::DatacenterProfile;

    fn dc(scale: f64) -> Datacenter {
        Datacenter::generate(&DatacenterProfile::dc(3).scaled(scale), 23)
    }

    fn run(policy: PlacementPolicy, replication: usize, months: usize) -> DurabilityResult {
        let dc = dc(0.02);
        let mut cfg = DurabilityConfig::paper(policy, replication, 5);
        cfg.months = months;
        simulate_durability(&dc, &cfg)
    }

    #[test]
    fn blocks_are_created_to_fill_target() {
        let dc = dc(0.02);
        let cfg = DurabilityConfig::paper(PlacementPolicy::Stock, 3, 1);
        let result = simulate_durability(&dc, &cfg);
        let expected = dc.total_harvest_blocks() / 2 / 3;
        assert!(
            result.n_blocks as f64 > expected as f64 * 0.95,
            "created {} of expected {expected}",
            result.n_blocks
        );
    }

    #[test]
    fn reimages_happen_and_repairs_run() {
        let r = run(PlacementPolicy::Stock, 3, 3);
        assert!(r.reimages > 0);
        assert!(r.repairs > 0);
    }

    #[test]
    fn history_placement_loses_fewer_blocks_than_stock() {
        // DC-3 has the paper's highest reimage rate; three months of a
        // small cluster is enough for Stock to lose blocks.
        let stock = run(PlacementPolicy::Stock, 3, 6);
        let hist = run(PlacementPolicy::History, 3, 6);
        assert!(
            stock.lost_blocks > 0,
            "expected Stock losses in a high-reimage DC"
        );
        assert!(
            hist.lost_blocks * 5 < stock.lost_blocks.max(1),
            "HDFS-H ({}) not clearly better than Stock ({})",
            hist.lost_blocks,
            stock.lost_blocks
        );
    }

    #[test]
    fn four_way_replication_is_more_durable() {
        let r3 = run(PlacementPolicy::Stock, 3, 6);
        let r4 = run(PlacementPolicy::Stock, 4, 6);
        assert!(
            r4.lost_blocks <= r3.lost_blocks,
            "R=4 ({}) lost more than R=3 ({})",
            r4.lost_blocks,
            r3.lost_blocks
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(PlacementPolicy::History, 3, 2);
        let b = run(PlacementPolicy::History, 3, 2);
        assert_eq!(a.lost_blocks, b.lost_blocks);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.n_blocks, b.n_blocks);
    }

    #[test]
    fn lost_percent_is_consistent() {
        let r = run(PlacementPolicy::Stock, 3, 3);
        let expect = r.lost_blocks as f64 / r.n_blocks as f64 * 100.0;
        assert!((r.lost_percent - expect).abs() < 1e-12);
    }
}
