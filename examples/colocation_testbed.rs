//! Reproduce the paper's 102-server testbed comparison: run the same
//! TPC-DS workload under YARN-Stock, YARN-PT, and YARN-H/Tez-H, and
//! report both sides of the co-location bargain — batch job performance
//! and the primary tenant's tail latency.
//!
//! ```sh
//! cargo run --release --example colocation_testbed
//! ```

use harvest::cluster::{Datacenter, UtilizationView};
use harvest::jobs::tpcds::tpcds_suite;
use harvest::jobs::workload::Workload;
use harvest::prelude::*;
use harvest::sched::sim::{SchedSim, SchedSimConfig};
use harvest::service::LatencyModel;
use harvest::sim::rng::stream_rng;
use harvest::sim::SimDuration;

fn main() {
    let seed = 42;
    let specs = DatacenterProfile::testbed_dc9(seed);
    let dc = Datacenter::from_specs("testbed".into(), &specs, seed);
    let view = UtilizationView::unscaled(&dc);
    let model = LatencyModel::paper_calibrated();
    println!(
        "testbed: {} servers, {} primary tenants (13 periodic / 3 constant / 5 unpredictable)\n",
        dc.n_servers(),
        dc.n_tenants()
    );

    let mut rng = stream_rng(seed, "testbed-wl");
    let workload = Workload::poisson(
        &mut rng,
        tpcds_suite(),
        SimDuration::from_secs(300),
        SimDuration::from_hours(3),
    );

    println!(
        "{:<14} {:>6} {:>10} {:>8} {:>14} {:>12}",
        "system", "jobs", "mean exec", "kills", "avg fleet p99", "worst minute"
    );
    for policy in SchedPolicy::ALL {
        let mut cfg = SchedSimConfig::testbed(policy, seed);
        cfg.horizon = SimDuration::from_hours(3);
        cfg.record_server_load = true;
        let stats = SchedSim::new(&dc, &view, &workload, cfg).run();

        // Tail latency from the recorded per-server loads.
        let n_ticks = stats.server_load[0].len();
        let mut sum = 0.0;
        let mut worst = 0.0f64;
        for k in 0..n_ticks {
            let loads: Vec<(f64, u32)> = stats
                .server_load
                .iter()
                .map(|s| (s[k].primary_util, s[k].secondary_cores))
                .collect();
            let p99 = model.fleet_p99_ms(&loads, seed, k as u64);
            sum += p99;
            worst = worst.max(p99);
        }
        println!(
            "{:<14} {:>6} {:>9.0}s {:>8} {:>12.0}ms {:>10.0}ms",
            policy.to_string(),
            stats.completed_jobs(),
            stats.mean_execution_secs(),
            stats.total_kills,
            sum / n_ticks as f64,
            worst,
        );
    }
    println!("\n(the paper's shape: Stock runs jobs fastest but wrecks the primary's p99;");
    println!(" PT protects the primary by killing tasks; H protects it while killing fewer.)");
}
