//! Experiment scale presets.
//!
//! The paper's simulations cover whole datacenters (thousands of servers)
//! for a month to a year; its testbed runs five hours. Those sizes are
//! reproducible here, but a laptop-friendly scale keeps every experiment
//! runnable in minutes. Shapes (who wins, by what factor) are stable
//! across scales because block density, reserve fractions, and tenant
//! mixes are scale-invariant.

use harvest_disk::DiskConfig;
use harvest_net::{NetworkConfig, SharingMode};
use harvest_sched::TickSweep;
use harvest_sim::fault::{ClusterShape, FaultPlan, FaultProfile};
use harvest_sim::SimDuration;

/// Scale parameters shared by the experiments.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Fraction of each datacenter profile to instantiate.
    pub dc_scale: f64,
    /// Network fabric the experiments run over: `None` keeps the seed
    /// model's free, instantaneous data movement; `Some` makes repair,
    /// remote reads, and shuffles pay for bandwidth (`repro --net`).
    pub network: Option<NetworkConfig>,
    /// Shared-disk model the experiments run over: `None` keeps disks
    /// free and instant; `Some` makes repairs, reads, and shuffle
    /// spills pay for platter bandwidth against the primary tenants'
    /// modeled I/O (`repro --disk`, composes with `--net`).
    pub disk: Option<DiskConfig>,
    /// Fair-sharing engine for the network fabric and disk pools
    /// (`repro --sharing auto|analytic|filling`). `Auto` (the default)
    /// lets single-bottleneck components and channels ride the
    /// analytic O(log n) fast path and falls back to progressive
    /// filling everywhere else; `Filling` pins the reference
    /// progressive-filling tier; `Analytic` asserts eligibility.
    /// Experiment results are identical across modes — only
    /// wall-clock and the transfer-model churn diagnostics change.
    pub sharing: SharingMode,
    /// Runs per data point (the paper uses five).
    pub runs: usize,
    /// Simulated hours for the scheduling sweeps.
    pub sched_hours: u64,
    /// Simulated months for the durability experiment (paper: 12).
    pub durability_months: usize,
    /// Simulated days for the availability experiment (paper: 30).
    pub availability_days: u64,
    /// Utilization sweep points for Figures 13/14/16.
    pub utilizations: Vec<f64>,
    /// How the scheduling simulations' tick visits the fleet:
    /// change-driven by default; `repro --full-sweep` switches to the
    /// full-fleet reference sweeps (bitwise-identical results, pre-index
    /// cost) for validation.
    pub tick_sweep: TickSweep,
    /// Worker threads for the sweep matrices (`repro --jobs N`).
    /// Defaults to every available core; `1` is the sequential
    /// reference path. Reports are byte-identical at any value — the
    /// experiments fan out over [`harvest_sim::par::par_map`], whose
    /// order-preserving writes make thread count unobservable.
    pub jobs: usize,
    /// Fault profile to arm (`repro --faults PROFILE`): experiments
    /// that take a [`FaultPlan`] draw one per run via
    /// [`Scale::fault_plan`]. `None` hands them [`FaultPlan::none`],
    /// which keeps every report byte-identical to a build without the
    /// fault machinery.
    pub faults: Option<FaultProfile>,
    /// Resilience context for the sweeps (`repro --checkpoint` /
    /// `--resume` / `--task-deadline`): an open checkpoint journal,
    /// an optional per-task deadline, and shared outcome counters.
    /// The default is inert — no journal, automatic flag-only
    /// deadlines — and changes no output.
    pub harness: crate::checkpoint::Harness,
    /// Whether the harness is collecting an observability trace
    /// (`repro --trace-out` / `--metrics-out`). Recording never
    /// changes an experiment's report — stdout is byte-identical with
    /// it on or off — it only makes recording-aware experiments feed
    /// the run's [`harvest_sim::obs::Recorder`].
    pub record: bool,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Minutes-scale preset (default for `repro`): one run per point,
    /// small clusters, short horizons.
    pub fn quick() -> Self {
        Scale {
            dc_scale: 0.03,
            network: None,
            disk: None,
            sharing: SharingMode::default(),
            runs: 1,
            sched_hours: 8,
            durability_months: 6,
            availability_days: 5,
            utilizations: vec![0.30, 0.45, 0.60],
            tick_sweep: TickSweep::Incremental,
            jobs: harvest_sim::par::default_jobs(),
            faults: None,
            harness: crate::checkpoint::Harness::default(),
            record: false,
            seed: 42,
        }
    }

    /// Fuller preset (`repro --full`): the paper's five runs per data
    /// point, bigger clusters, longer horizons. The sweep matrix fans
    /// out over every available core by default (`--jobs N` to pin);
    /// sequential (`--jobs 1`) it is several hours of single-core time,
    /// so let the parallel harness pay for the fifth run.
    pub fn full() -> Self {
        Scale {
            dc_scale: 0.06,
            network: None,
            disk: None,
            sharing: SharingMode::default(),
            runs: 5,
            sched_hours: 12,
            durability_months: 12,
            availability_days: 15,
            utilizations: vec![0.25, 0.35, 0.45, 0.55, 0.65],
            tick_sweep: TickSweep::Incremental,
            jobs: harvest_sim::par::default_jobs(),
            faults: None,
            harness: crate::checkpoint::Harness::default(),
            record: false,
            seed: 42,
        }
    }

    /// The seed for run `r` of an experiment.
    pub fn run_seed(&self, experiment: &str, r: usize) -> u64 {
        harvest_sim::rng::derive_seed_indexed(self.seed, experiment, r as u64)
    }

    /// The fault plan one run should inject into a cluster of
    /// `n_servers` servers over `horizon`: the armed profile's draw
    /// (deterministic in `(profile, seed, shape, horizon)`), or
    /// [`FaultPlan::none`] when no profile is armed.
    pub fn fault_plan(&self, n_servers: usize, seed: u64, horizon: SimDuration) -> FaultPlan {
        match self.faults {
            None => FaultPlan::none(),
            Some(profile) => profile.plan(
                seed,
                ClusterShape {
                    n_servers,
                    rack_size: harvest_cluster::datacenter::RACK_SIZE as usize,
                },
                horizon,
            ),
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.dc_scale < f.dc_scale);
        assert!(q.runs < f.runs);
        assert!(q.utilizations.len() < f.utilizations.len());
    }

    #[test]
    fn run_seeds_differ() {
        let s = Scale::quick();
        assert_ne!(s.run_seed("fig13", 0), s.run_seed("fig13", 1));
        assert_ne!(s.run_seed("fig13", 0), s.run_seed("fig15", 0));
    }

    #[test]
    fn fault_plan_follows_the_armed_profile() {
        let mut s = Scale::quick();
        let horizon = SimDuration::from_days(30);
        assert!(s.fault_plan(100, 7, horizon).is_none());
        s.faults = Some(FaultProfile::RackLoss);
        let plan = s.fault_plan(100, 7, horizon);
        assert!(!plan.is_none());
        // Deterministic: the same scale draws the same plan.
        assert_eq!(plan, s.fault_plan(100, 7, horizon));
    }
}
