//! Fabric configuration.

/// Link speeds and oversubscription of the datacenter fabric.
///
/// The model is the classic three-tier datacenter network reduced to the
/// two places bandwidth is actually scarce: server NICs and the
/// rack-uplink tier. Aggregation and core are folded into the rack
/// uplinks' oversubscription ratio (a non-blocking core behind 4:1
/// oversubscribed ToR uplinks behaves, at flow level, like the uplinks
/// alone).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Server NIC speed in Gbit/s, full duplex (10 GbE by default —
    /// the paper's era of Microsoft datacenters).
    pub nic_gbps: f64,
    /// Rack-uplink oversubscription ratio: a rack of `RACK_SIZE` servers
    /// with `nic_gbps` NICs gets `RACK_SIZE * nic_gbps / oversubscription`
    /// of uplink capacity. 1.0 is a non-blocking fabric; production
    /// datacenters of the paper's era ran 4:1 and worse.
    pub oversubscription: f64,
    /// Fixed one-way latency added per traversed link, in milliseconds
    /// (serialization + switching; dwarfed by transfer time for blocks,
    /// visible for small reads).
    pub hop_latency_ms: f64,
}

impl NetworkConfig {
    /// 10 GbE NICs behind 4:1 oversubscribed rack uplinks.
    pub fn datacenter() -> Self {
        NetworkConfig {
            nic_gbps: 10.0,
            oversubscription: 4.0,
            hop_latency_ms: 0.05,
        }
    }

    /// A non-blocking fabric (useful as the "network off" baseline that
    /// still accounts NIC serialization).
    pub fn non_blocking() -> Self {
        NetworkConfig {
            nic_gbps: 10.0,
            oversubscription: 1.0,
            hop_latency_ms: 0.05,
        }
    }

    /// NIC capacity in bytes per second.
    pub fn nic_bytes_per_sec(&self) -> f64 {
        self.nic_gbps * 1e9 / 8.0
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a speed or ratio is non-positive or non-finite.
    pub fn validate(&self) {
        assert!(
            self.nic_gbps > 0.0 && self.nic_gbps.is_finite(),
            "NIC speed must be positive, got {}",
            self.nic_gbps
        );
        assert!(
            self.oversubscription >= 1.0 && self.oversubscription.is_finite(),
            "oversubscription must be >= 1, got {}",
            self.oversubscription
        );
        assert!(
            self.hop_latency_ms >= 0.0 && self.hop_latency_ms.is_finite(),
            "hop latency must be non-negative, got {}",
            self.hop_latency_ms
        );
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::datacenter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        NetworkConfig::datacenter().validate();
        NetworkConfig::non_blocking().validate();
    }

    #[test]
    fn nic_conversion() {
        let c = NetworkConfig::datacenter();
        assert_eq!(c.nic_bytes_per_sec(), 1.25e9);
    }

    #[test]
    #[should_panic(expected = "oversubscription")]
    fn undersubscription_rejected() {
        let mut c = NetworkConfig::datacenter();
        c.oversubscription = 0.5;
        c.validate();
    }
}
