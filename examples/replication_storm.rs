//! Reimage a whole tenant and replay the recovery under three transfer
//! models — free-instant (fabric off), network-priced (`--net`), and
//! network-plus-disk (`--net --disk`): time-to-full-durability is set by
//! whichever is scarcest — the name node's repair throttle, cross-rack
//! bandwidth, or destination-disk write bandwidth.
//!
//! ```sh
//! cargo run --release --example replication_storm
//! ```

use harvest::cluster::Datacenter;
use harvest::dfs::repair::{simulate_reimage_storm_recorded, StormConfig};
use harvest::disk::DiskConfig;
use harvest::net::{NetworkConfig, SharingMode};
use harvest::prelude::DatacenterProfile;
use harvest::sim::obs::{json, Recorder};
use harvest::sim::SimTime;

/// Reads one counter out of a parsed metrics report.
fn counter(report: &json::Value, name: &str) -> u64 {
    report
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0) as u64
}

fn main() {
    let seed = 42;
    let profile = DatacenterProfile::dc(9).scaled(0.03);
    let dc = Datacenter::generate(&profile, seed);
    let tenant = dc
        .tenants
        .iter()
        .max_by_key(|t| t.n_servers())
        .expect("datacenter has tenants");
    println!(
        "{}: {} servers in {} racks; reimaging tenant '{}' ({} servers) at t=0\n",
        dc.name,
        dc.n_servers(),
        dc.n_racks(),
        tenant.name,
        tenant.n_servers(),
    );

    // Two repair regimes: the paper's steady 30 blocks/hour/server
    // throttle (which hides the transfer models), and the §7 lesson-2
    // failure mode — an effectively unthrottled synchronous storm,
    // bounded only by HDFS's max-streams backpressure, where cross-rack
    // bandwidth and destination disks set the recovery time.
    for (regime, blocks_per_hour, streams) in [
        ("default throttle (30 blocks/h/server)", 30.0, None),
        (
            "unthrottled storm, 64 repair streams",
            1_000_000.0,
            Some(64),
        ),
    ] {
        println!("{regime}:");
        let mut base = StormConfig::new(tenant.id, seed);
        base.fill_fraction = 0.4;
        base.repair.blocks_per_server_per_hour = blocks_per_hour;
        base.max_repair_streams = streams;
        let mut recovered: Vec<SimTime> = Vec::new();
        let mut net_analytic_events: Vec<u64> = Vec::new();
        for (label, network, disk) in [
            ("fabric off  ", None, None),
            ("--net       ", Some(NetworkConfig::datacenter()), None),
            (
                "--net --disk",
                Some(NetworkConfig::datacenter()),
                Some(DiskConfig::datacenter()),
            ),
        ] {
            let mut cfg = base.clone();
            cfg.network = network;
            cfg.disk = disk;
            // Record the run and read every fingerprint back out of the
            // machine-readable metrics report — the same JSON
            // `repro --metrics-out` writes — rather than the in-memory
            // stats structs, demonstrating the report round-trip.
            let mut rec = Recorder::new("replication-storm");
            let r = simulate_reimage_storm_recorded(&dc, &cfg, &mut rec);
            let report = json::parse(&rec.metrics_json()).expect("metrics report parses");
            println!(
                "  {label}  {:>7} replicas lost, {:>7} repairs, full durability at {} \
                 (mean transfer {:.2}s)",
                counter(&report, "dfs/replicas_lost"),
                counter(&report, "dfs/repairs"),
                r.recovered_at,
                r.mean_transfer_secs,
            );
            // Storm churn, for tuning max_repair_streams: how hard the
            // fair-sharing engines worked and how concurrent the storm
            // actually ran.
            if r.fabric.is_some() {
                println!(
                    "                fabric: {} reshares, peak {} active flows, \
                     {} stale events dropped, peak heap {}",
                    counter(&report, "fabric/reshares"),
                    counter(&report, "fabric/peak_active"),
                    counter(&report, "fabric/stale_events_dropped"),
                    counter(&report, "fabric/peak_queue_len"),
                );
                // Which fair-sharing tier actually served the run:
                // under the default `Auto`, the classifier promotes
                // single-bottleneck components to the analytic
                // O(log n) engine and leaves the rest on progressive
                // filling.
                let promoted = counter(&report, "net/analytic_components");
                let analytic = counter(&report, "net/analytic_events");
                let migrations = counter(&report, "net/fallback_migrations");
                if analytic > 0 {
                    println!(
                        "                fabric sharing: analytic fast path \
                         ({promoted} components promoted, {analytic} completions \
                         in O(log n), {migrations} migrated back)",
                    );
                } else {
                    println!("                fabric sharing: progressive filling");
                }
                net_analytic_events.push(analytic);
            }
            if r.disk.is_some() {
                println!(
                    "                disks:  {} reshares, peak {} active streams, \
                     {} stale events dropped, peak heap {}",
                    counter(&report, "disk/reshares"),
                    counter(&report, "disk/peak_active"),
                    counter(&report, "disk/stale_events_dropped"),
                    counter(&report, "disk/peak_queue_len"),
                );
                let channels = counter(&report, "disk/analytic_channels");
                let analytic = counter(&report, "disk/analytic_events");
                if analytic > 0 {
                    println!(
                        "                disk sharing:   analytic fast path \
                         ({channels} channels promoted, {analytic} completions \
                         in O(log n))",
                    );
                } else {
                    println!("                disk sharing:   progressive filling");
                }
            }
            recovered.push(r.recovered_at);
        }
        let net_delta = recovered[1].since(recovered[0]);
        let disk_delta = recovered[2].since(recovered[1]);
        println!("  -> the fabric adds {net_delta}; disks add another {disk_delta} on top\n");
        assert!(
            recovered[2] > recovered[1],
            "disks must make recovery strictly slower than net-only"
        );
        if streams.is_some() {
            // The unthrottled storm is the analytic tier's home turf:
            // rack-localized repair convoys are single-bottleneck, so
            // under the default `Auto` the fabric must have served
            // completions analytically.
            assert!(
                net_analytic_events.iter().any(|&n| n > 0),
                "unthrottled storm never engaged the analytic fast path"
            );
            // And the fast path is a cost knob, not a behavior knob:
            // pinning the reference filling tier reproduces the same
            // recovery timestamp at second granularity.
            let mut pinned = base.clone();
            pinned.network = Some(NetworkConfig::datacenter());
            pinned.disk = Some(DiskConfig::datacenter());
            pinned.sharing = SharingMode::Filling;
            let mut rec = Recorder::off();
            let f = simulate_reimage_storm_recorded(&dc, &pinned, &mut rec);
            assert_eq!(
                f.recovered_at.as_secs(),
                recovered[2].as_secs(),
                "filling and analytic tiers disagree on recovery time"
            );
            println!(
                "  (pinned --sharing filling reproduces full durability at {} — \
                 same second, slower wall clock)\n",
                f.recovered_at
            );
        }
    }
    println!("(the 30 blocks/hour throttle hides both models; remove it — the paper's");
    println!(" synchronous-heartbeat storm — and the 256 MB destination writes, at");
    println!(" 120 MB/s against a 10 GbE fabric, become what sets time-to-durability.)");
}
