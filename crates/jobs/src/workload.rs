//! Job arrival processes.
//!
//! §6.1: "We assume Poisson inter-arrival times (mean 300 seconds) for
//! the queries."

use harvest_sim::{dist, SimDuration, SimTime};
use rand::{Rng, RngExt};

use crate::dag::DagJob;

/// One job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobArrival {
    /// When the job is submitted.
    pub time: SimTime,
    /// Index into the workload's query suite.
    pub query: usize,
}

/// Generates a Poisson arrival stream over `horizon`, choosing queries
/// uniformly at random from a suite of `n_queries`.
///
/// # Panics
///
/// Panics if `n_queries` is zero or `mean_gap` is zero.
pub fn poisson_arrivals<R: Rng + ?Sized>(
    rng: &mut R,
    n_queries: usize,
    mean_gap: SimDuration,
    horizon: SimDuration,
) -> Vec<JobArrival> {
    assert!(n_queries > 0, "need at least one query");
    assert!(mean_gap > SimDuration::ZERO, "mean gap must be positive");
    let rate = 1.0 / mean_gap.as_secs_f64();
    let mut arrivals = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        let gap = SimDuration::from_secs_f64(dist::exponential(rng, rate));
        t += gap;
        if t.since(SimTime::ZERO) >= horizon {
            break;
        }
        arrivals.push(JobArrival {
            time: t,
            query: rng.random_range(0..n_queries),
        });
    }
    arrivals
}

/// A workload: a query suite plus its arrival stream.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The query DAGs.
    pub queries: Vec<DagJob>,
    /// Submissions, sorted by time.
    pub arrivals: Vec<JobArrival>,
}

impl Workload {
    /// Builds a workload over `horizon` with Poisson arrivals of mean
    /// `mean_gap` drawn from `queries`.
    pub fn poisson<R: Rng + ?Sized>(
        rng: &mut R,
        queries: Vec<DagJob>,
        mean_gap: SimDuration,
        horizon: SimDuration,
    ) -> Self {
        let arrivals = poisson_arrivals(rng, queries.len(), mean_gap, horizon);
        Workload { queries, arrivals }
    }

    /// Number of submissions.
    pub fn n_jobs(&self) -> usize {
        self.arrivals.len()
    }

    /// The job DAG for an arrival.
    pub fn job_of(&self, arrival: &JobArrival) -> &DagJob {
        &self.queries[arrival.query]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcds::tpcds_suite;
    use harvest_sim::rng::stream_rng;

    #[test]
    fn arrivals_are_sorted_and_bounded() {
        let mut rng = stream_rng(3, "wl");
        let horizon = SimDuration::from_hours(5);
        let arrivals = poisson_arrivals(&mut rng, 52, SimDuration::from_secs(300), horizon);
        assert!(arrivals.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(arrivals
            .iter()
            .all(|a| a.time.since(SimTime::ZERO) < horizon));
        assert!(arrivals.iter().all(|a| a.query < 52));
    }

    #[test]
    fn mean_gap_is_respected() {
        let mut rng = stream_rng(5, "gap");
        let horizon = SimDuration::from_days(30);
        let arrivals = poisson_arrivals(&mut rng, 10, SimDuration::from_secs(300), horizon);
        // Expect ~8640 arrivals over 30 days at one per 300 s.
        let expected = horizon.as_secs_f64() / 300.0;
        let n = arrivals.len() as f64;
        assert!(
            (n - expected).abs() / expected < 0.05,
            "{n} arrivals vs expected {expected}"
        );
    }

    #[test]
    fn workload_lookup() {
        let mut rng = stream_rng(7, "wl2");
        let wl = Workload::poisson(
            &mut rng,
            tpcds_suite(),
            SimDuration::from_secs(300),
            SimDuration::from_hours(5),
        );
        assert!(wl.n_jobs() > 30, "5h at 300s gaps should yield ~60 jobs");
        for a in &wl.arrivals {
            let job = wl.job_of(a);
            assert!(!job.stages.is_empty());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let horizon = SimDuration::from_hours(2);
        let a = poisson_arrivals(
            &mut stream_rng(9, "det"),
            5,
            SimDuration::from_secs(100),
            horizon,
        );
        let b = poisson_arrivals(
            &mut stream_rng(9, "det"),
            5,
            SimDuration::from_secs(100),
            horizon,
        );
        assert_eq!(a, b);
    }
}
