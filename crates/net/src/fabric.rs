//! Event-driven flow-level simulation with max-min fair sharing.
//!
//! A [`Fabric`] carries [`Flow`]s between servers over a [`Topology`].
//! Whenever the active-flow set changes — a flow starts or finishes —
//! link bandwidth is re-divided max-min fairly (progressive filling) and
//! every in-flight flow's completion is re-predicted. Starts,
//! completions, and those re-share reschedules all travel through one
//! [`EventQueue`]; a stale completion (superseded by a later re-share) is
//! recognized by its version stamp and ignored, which is the standard
//! trick for event-driven flow models with time-varying rates.
//!
//! Everything is exact integer time plus deterministic `f64` arithmetic
//! over deterministically ordered collections, so a fabric replay is
//! bit-identical for identical inputs.
//!
//! # Cost model — three tiers
//!
//! The fabric serves each event with the cheapest allocator that is
//! provably exact for the component the event touches:
//!
//! 1. **Analytic** (O(log n) per event): a component whose flows all
//!    traverse one common saturated link — the reimage-storm shape —
//!    is served by a [`harvest_sim::fairshare::FairShare`] group: a
//!    virtual fair-work clock plus a completion-ordered heap, one live
//!    completion event for the whole group. The classifier is the
//!    filling itself: whenever a progressive-filling pass freezes the
//!    entire component in its *first* iteration, the bottleneck it
//!    picked is crossed by every flow and the component is promoted
//!    into a group. After that, a start that crosses the group's
//!    bottleneck (and shares no link with any loose flow) joins in
//!    O(log n), and a finish pops the heap in O(log n). A per-group
//!    lazy heap over (link fair-share, link id) re-checks, also in
//!    amortized O(log), that the stored bottleneck is still the
//!    lexicographic minimum the filling would pick — the instant it is
//!    not (a join lands on a NIC-bound path, the population shrinks
//!    until NICs bind, a fault changes capacity), the group *migrates*
//!    back to filling: every member's `remaining` is materialized from
//!    the clock, the component is re-filled, and nothing is lost or
//!    double-completed. Migration may immediately re-promote under the
//!    new bottleneck.
//! 2. **Component filling** (O(component links × filling iterations)
//!    per event): the general fallback. The fabric maintains a
//!    persistent inverted index (link → active flows crossing it), and
//!    a flow start/finish recomputes only the connected component of
//!    flows transitively sharing a link with the changed flow. Flows
//!    in disjoint components keep their rates, their per-flow progress
//!    stamps, and their already-predicted completion events untouched.
//!    Progress is advanced lazily, per flow, only when a flow's rate
//!    actually changes, and a superseded completion event is
//!    *cancelled* in the queue rather than left to fire stale, so the
//!    event heap stays O(active + scheduled) instead of
//!    O(re-shares × flows).
//! 3. **Global reference** ([`ReshareScope::Global`]): recomputes
//!    every active flow on every event with progressive filling — the
//!    pre-optimization *cost shape*, kept because it is the oracle the
//!    other two tiers are pinned against (the property tests in
//!    `tests/properties.rs`). Selecting it disables the analytic tier
//!    entirely: the reference *is* filling.
//!
//! **Exactness.** Component scoping is *bitwise* identical to global:
//! a component's progressive-filling arithmetic is unaffected by flows
//! it shares no link with, so scoping changes which flows are
//! *visited*, never what any flow gets. The analytic tier's rates are
//! also bitwise identical — its per-flow rate is
//! `capacity / n as f64`, the same division filling performs when its
//! first iteration splits the untouched bottleneck — but completion
//! *times* re-associate the float arithmetic: filling folds
//! `(r − a) − b − …` across re-shares while the fair-work clock
//! computes `r − (a + b + …)`, so predicted completions can drift by a
//! few ulps (≈1e-16 relative). Simulated time is integer milliseconds
//! and `SimDuration::from_secs_f64` rounds to the nearest millisecond,
//! so that drift virtually never moves a completion across a
//! millisecond boundary; the oracle tests pin analytic rates bitwise
//! and completion schedules at full `SimTime` resolution, and that is
//! the documented tolerance (see `sim::fairshare`). Which tier served
//! an event is visible: `analytic_components` / `analytic_events` /
//! `fallback_migrations` in [`FabricStats`] and as `net/*` counters.
//!
//! The worst case is a genuinely multi-bottleneck workload whose every
//! flow shares a link with every other (one giant component that never
//! classifies single-bottleneck): then a re-share still touches the
//! whole population, exactly as a global recompute would, and the old
//! guidance applies — offered load must not exceed fabric capacity for
//! sustained periods, or the backlog (and the simulation) grows without
//! bound. Callers injecting unthrottled demand must bound concurrency
//! themselves (see `StormConfig::max_repair_streams` in `harvest-dfs`
//! for the repair-path backpressure).
//!
//! Note the filling oracle's limit: both scopes share the lazy-advance
//! and cancellation machinery (they must, or bitwise comparison would
//! be impossible — the pre-PR code advanced every flow's `remaining`
//! in per-event steps, whose float rounding differs from one fused
//! multiply per rate change by ulps), so the pinned property is
//! "scoping never changes an allocation", not "this PR's trajectories
//! equal the old code's to the last bit".

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use harvest_cluster::ServerId;
use harvest_sim::engine::{EventKey, EventQueue};
use harvest_sim::fairshare::{FairShare, SharingMode};
use harvest_sim::obs::{GaugeId, HistogramId, Recorder, StateTrackId, TrackId};
use harvest_sim::{SimDuration, SimTime};

use crate::config::NetworkConfig;
use crate::topology::{LinkId, Path, Topology};

/// Identifies a flow within a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A finished transfer, as reported by [`Fabric::pump`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowCompletion {
    /// The flow that finished.
    pub flow: FlowId,
    /// When its last byte arrived.
    pub at: SimTime,
    /// The caller's tag, echoed back.
    pub tag: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// When the flow entered the fabric.
    pub started: SimTime,
}

/// How much of the fabric a re-share recomputes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReshareScope {
    /// Recompute only the connected component of flows transitively
    /// sharing a link with the changed flow (the default; see the
    /// module-level cost model).
    #[default]
    Component,
    /// Recompute every active flow on every event — the reference
    /// global recompute, with the pre-optimization cost shape but the
    /// same lazy-advance/cancellation machinery as `Component` (see the
    /// module docs for what the oracle does and does not pin). Bitwise
    /// identical to `Component`; kept for validation and benchmarking.
    Global,
}

/// One in-flight transfer.
#[derive(Debug, Clone)]
struct Flow {
    tag: u64,
    bytes: u64,
    /// Bytes left as of `last_update` (plus the folded-in latency
    /// padding).
    remaining: f64,
    /// Current max-min allocation in bytes/s.
    rate: f64,
    /// Bumped whenever the rate changes; completion events carry the
    /// version they were predicted under.
    version: u64,
    /// When `remaining` was last advanced. Flows advance lazily — only
    /// at rate changes — so disjoint components cost nothing per event.
    last_update: SimTime,
    /// The flow's live completion event, cancelled when superseded.
    pending: Option<EventKey>,
    /// Component-BFS visit stamp (see `Fabric::epoch`).
    seen: u64,
    started: SimTime,
    path: Path,
    /// The analytic group serving this flow, if any. While enrolled,
    /// `remaining`/`rate`/`last_update` are frozen at enrollment (the
    /// group's fair-work clock is authoritative) and `pending` is
    /// `None` — the group holds the single live completion event.
    group: Option<u32>,
}

/// Sentinel for `Fabric::link_of`: the link is not owned by any group.
const NO_GROUP: u32 = u32::MAX;

/// An analytic single-bottleneck component (cost-model tier 1).
#[derive(Debug)]
struct AnalyticGroup {
    /// The common saturated link every member crosses.
    bottleneck: u32,
    engine: FairShare,
    /// Lazy min-heap over the group's links: `(share bits, link id,
    /// flow count at push)`. An entry is valid iff the link is still
    /// owned by this group and its flow count still matches; a fresh
    /// entry is pushed whenever a link's count changes, so the valid
    /// minimum is exactly the `(share, link)` progressive filling
    /// would pick first. The group stays analytic iff that minimum is
    /// the stored bottleneck.
    links: BinaryHeap<Reverse<(u64, u32, u32)>>,
    /// The single live completion event for the whole group.
    event: Option<EventKey>,
}

/// A transfer waiting for its scheduled start time.
#[derive(Debug, Clone)]
struct PendingFlow {
    src: ServerId,
    dst: ServerId,
    bytes: u64,
    tag: u64,
}

#[derive(Debug)]
enum NetEvent {
    Start(FlowId),
    Complete(FlowId, u64),
}

/// Aggregate fabric counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FabricStats {
    /// Flows completed.
    pub completed: u64,
    /// Bytes delivered by completed flows.
    pub bytes_delivered: u64,
    /// High-water mark of concurrently active flows.
    pub peak_active: usize,
    /// Re-share passes run (a measure of contention churn).
    pub reshares: u64,
    /// Superseded completion events dropped — cancelled in the queue
    /// when a re-share re-predicted the flow, or (defensively)
    /// recognized stale by version at fire time, plus cancels that
    /// found nothing to cancel (the key had already fired — counted so
    /// fault-driven mass cancellation stays observable). High churn
    /// relative to `completed` means heavy rate turbulence.
    pub stale_events_dropped: u64,
    /// Flows aborted by fault injection (link or endpoint death) before
    /// their last byte arrived — scheduled-but-unstarted flows included.
    pub flows_aborted: u64,
    /// High-water mark of the event heap (including not-yet-collected
    /// tombstones) — the memory the fabric's future-event list peaked
    /// at.
    pub peak_queue_len: usize,
    /// Analytic groups created (a component classified single-
    /// bottleneck and promoted off the filling path).
    pub analytic_components: u64,
    /// Events (starts/finishes) served by the analytic tier in
    /// O(log n) instead of a filling pass.
    pub analytic_events: u64,
    /// Groups dissolved back to progressive filling (classification
    /// invalidated by a join, departure, or fault).
    pub fallback_migrations: u64,
}

/// The flow-level network simulator. See the module docs.
#[derive(Debug)]
pub struct Fabric {
    topo: Topology,
    queue: EventQueue<NetEvent>,
    pending: BTreeMap<u64, PendingFlow>,
    active: BTreeMap<u64, Flow>,
    /// Inverted index: `flows_on[link]` holds the active flows crossing
    /// `link`, ascending by id. This is what makes re-shares
    /// component-scoped and `link_load` O(flows-on-link).
    flows_on: Vec<Vec<u64>>,
    /// Component-BFS link visit stamps, paired with `epoch`.
    link_seen: Vec<u64>,
    /// Bumped per component walk; a link/flow is in the current walk
    /// iff its stamp equals this.
    epoch: u64,
    /// Running sum of active flows' `remaining` (as of each flow's own
    /// `last_update`), serving `in_flight_bytes` in O(1).
    in_flight_remaining: f64,
    /// Fault state: a down link contributes zero capacity to the
    /// filling, so flows crossing it starve (rate 0, parked completion)
    /// until the link comes back. All-true outside fault runs.
    link_up: Vec<bool>,
    /// Dead cancels already folded into `stats.stale_events_dropped`
    /// (see `sync_dead_cancels`).
    dead_cancels_seen: u64,
    scope: ReshareScope,
    /// Which sharing tiers are allowed (see the module cost model).
    mode: SharingMode,
    /// Analytic groups, indexed by the id in `Flow::group`/`link_of`;
    /// freed slots are recycled through `free_groups`.
    groups: Vec<Option<AnalyticGroup>>,
    free_groups: Vec<u32>,
    /// `link_of[link]` is the analytic group owning `link`
    /// (`NO_GROUP` if none). Invariant: every flow crossing an owned
    /// link is a member of the owning group — promotion covers whole
    /// components and joins preserve it — so loose flows and group
    /// members never share a link.
    link_of: Vec<u32>,
    /// High-water mark of event time, so mode/scope switches (which
    /// take no `now`) can materialize group state at the current
    /// instant.
    clock: SimTime,
    next_id: u64,
    hop_latency: SimDuration,
    stats: FabricStats,
    completions: Vec<FlowCompletion>,
    /// Observability sink ([`Recorder::off`] unless a caller attaches
    /// one); `obs` holds the registered ids iff recording is on, so a
    /// hot path pays exactly one `Option` check when off.
    rec: Recorder,
    obs: Option<FabricObs>,
}

/// Metric ids registered on [`Fabric::set_recorder`].
#[derive(Debug)]
struct FabricObs {
    track: TrackId,
    flow_secs: HistogramId,
    component_flows: HistogramId,
    queue_len: GaugeId,
    tombstones: GaugeId,
    /// Wait-state track keyed by flow id: `running` from wire start to
    /// last byte. Flows start at their scheduled instant (the fabric
    /// has no admission queue), so contention shows up as a longer
    /// `running` state, never a queue wait.
    states: StateTrackId,
}

impl Fabric {
    /// A fabric over an explicit topology.
    pub fn new(topo: Topology, config: &NetworkConfig) -> Self {
        let n_links = topo.n_links();
        Fabric {
            topo,
            queue: EventQueue::new(),
            pending: BTreeMap::new(),
            active: BTreeMap::new(),
            flows_on: vec![Vec::new(); n_links],
            link_seen: vec![0; n_links],
            epoch: 0,
            in_flight_remaining: 0.0,
            link_up: vec![true; n_links],
            dead_cancels_seen: 0,
            scope: ReshareScope::Component,
            mode: SharingMode::default(),
            groups: Vec::new(),
            free_groups: Vec::new(),
            link_of: vec![NO_GROUP; n_links],
            clock: SimTime::ZERO,
            next_id: 0,
            hop_latency: SimDuration::from_secs_f64(config.hop_latency_ms / 1_000.0),
            stats: FabricStats::default(),
            completions: Vec::new(),
            rec: Recorder::off(),
            obs: None,
        }
    }

    /// Attaches an observability recorder (typically a
    /// [`Recorder::child`] of the caller's). Recording never changes a
    /// trajectory: flow lifetimes land as spans on the `fabric` track,
    /// durations in `fabric/flow_secs`, re-share component sizes in
    /// `fabric/reshare_component_flows`, and event-heap depth/tombstone
    /// gauges sampled at each re-share.
    pub fn set_recorder(&mut self, mut rec: Recorder) {
        self.obs = rec.is_on().then(|| FabricObs {
            track: rec.track("fabric"),
            flow_secs: rec.histogram("fabric/flow_secs"),
            component_flows: rec.histogram("fabric/reshare_component_flows"),
            queue_len: rec.gauge("fabric/queue_len"),
            tombstones: rec.gauge("fabric/queue_tombstones"),
            states: rec.state_track("fabric/flow"),
        });
        self.rec = rec;
    }

    /// Detaches and returns the recorder, mirroring the final
    /// [`FabricStats`] into `fabric/*` counters first so the metrics
    /// report carries the same numbers as the struct.
    pub fn take_recorder(&mut self) -> Recorder {
        if self.rec.is_on() {
            let s = self.stats;
            for (name, v) in [
                ("fabric/completed", s.completed),
                ("fabric/bytes_delivered", s.bytes_delivered),
                ("fabric/peak_active", s.peak_active as u64),
                ("fabric/reshares", s.reshares),
                ("fabric/stale_events_dropped", s.stale_events_dropped),
                ("fabric/flows_aborted", s.flows_aborted),
                ("fabric/peak_queue_len", s.peak_queue_len as u64),
                ("net/analytic_components", s.analytic_components),
                ("net/analytic_events", s.analytic_events),
                ("net/fallback_migrations", s.fallback_migrations),
            ] {
                let id = self.rec.counter(name);
                self.rec.counter_set(id, v);
            }
        }
        self.obs = None;
        std::mem::take(&mut self.rec)
    }

    /// Builds topology and fabric for a datacenter in one step.
    pub fn from_datacenter(dc: &harvest_cluster::Datacenter, config: &NetworkConfig) -> Self {
        Fabric::new(Topology::from_datacenter(dc, config), config)
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The re-share scope in force.
    pub fn reshare_scope(&self) -> ReshareScope {
        self.scope
    }

    /// Switches the re-share scope. Safe at any point — both scopes
    /// produce bitwise-identical trajectories (see the module docs) —
    /// but `Global` exists for validation, not production use.
    /// `Global` *is* the filling reference, so selecting it dissolves
    /// any live analytic groups (state migrated exactly).
    pub fn set_reshare_scope(&mut self, scope: ReshareScope) {
        self.scope = scope;
        if scope == ReshareScope::Global {
            self.dissolve_all_groups();
        }
    }

    /// The sharing mode in force.
    pub fn sharing_mode(&self) -> SharingMode {
        self.mode
    }

    /// Switches the sharing mode. Selecting [`SharingMode::Filling`]
    /// dissolves any live analytic groups (state migrated exactly, so
    /// the trajectory is unchanged); selecting an analytic-capable
    /// mode lets the classifier promote components at their next
    /// re-share. Allocations are identical in every mode — the
    /// classifier only admits components where the analytic engine
    /// provably agrees with filling — so this is a cost knob, not a
    /// behavior knob.
    pub fn set_sharing_mode(&mut self, mode: SharingMode) {
        self.mode = mode;
        if !mode.analytic_allowed() {
            self.dissolve_all_groups();
        }
    }

    /// Dissolves every analytic group at the fabric's high-water
    /// clock and re-fills over the freed components.
    fn dissolve_all_groups(&mut self) {
        let mut seeds: Vec<LinkId> = Vec::new();
        for g in 0..self.groups.len() as u32 {
            let Some(grp) = &self.groups[g as usize] else {
                continue;
            };
            let ids: Vec<u64> = grp.engine.members().map(|(id, _)| id).collect();
            for id in ids {
                seeds.extend(self.active[&id].path.iter().copied());
            }
            self.dissolve_group(g, self.clock);
        }
        if !seeds.is_empty() {
            let now = self.clock;
            self.reshare(now, &seeds);
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Flows currently moving bytes.
    pub fn n_active(&self) -> usize {
        self.active.len()
    }

    /// Flows scheduled but not yet started.
    pub fn n_pending(&self) -> usize {
        self.pending.len()
    }

    /// Bytes still in flight across all active flows (each counted as
    /// of its own last rate change, since flows advance lazily), plus
    /// the folded-in latency padding. Served from a running total in
    /// O(1).
    pub fn in_flight_bytes(&self) -> f64 {
        self.in_flight_remaining.max(0.0)
    }

    /// A flow's current rate: the group engine's fair share for
    /// analytic members (whose stored per-flow rate is frozen at
    /// enrollment), the stored rate otherwise.
    fn rate_of(&self, f: &Flow) -> f64 {
        match f.group {
            Some(g) => self.groups[g as usize]
                .as_ref()
                .expect("member's group is live")
                .engine
                .rate(),
            None => f.rate,
        }
    }

    /// The current max-min rate of a flow in bytes/s, if it is active.
    pub fn flow_rate(&self, flow: FlowId) -> Option<f64> {
        self.active.get(&flow.0).map(|f| self.rate_of(f))
    }

    /// The re-prediction version of an active flow — bumped whenever a
    /// re-share changes its rate. Disjoint-component flows keep their
    /// version (and their scheduled completion event) across unrelated
    /// starts/finishes; tests pin that. Analytic-group members keep
    /// the version they enrolled with — the group serves rate changes
    /// without per-flow re-prediction, which is the point.
    pub fn flow_version(&self, flow: FlowId) -> Option<u64> {
        self.active.get(&flow.0).map(|f| f.version)
    }

    /// Ids of the currently active flows, ascending.
    pub fn active_flow_ids(&self) -> Vec<FlowId> {
        self.active.keys().map(|&id| FlowId(id)).collect()
    }

    /// The links a flow traverses, if it is active.
    pub fn flow_path(&self, flow: FlowId) -> Option<&[LinkId]> {
        self.active.get(&flow.0).map(|f| f.path.as_slice())
    }

    /// Sum of active-flow rates crossing `link`, in bytes/s. Served
    /// from the inverted index in O(flows-on-link).
    pub fn link_load(&self, link: LinkId) -> f64 {
        self.flows_on[link.0 as usize]
            .iter()
            .map(|id| self.rate_of(&self.active[id]))
            .sum()
    }

    /// Number of active flows crossing `link` (O(1) via the index).
    pub fn link_flows(&self, link: LinkId) -> usize {
        self.flows_on[link.0 as usize].len()
    }

    /// Schedules a `src → dst` transfer of `bytes` to start at `at`.
    /// Returns the flow's id; its completion will be reported by a later
    /// [`Fabric::pump`].
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `at` is before the fabric's clock —
    /// the fabric never runs backwards.
    pub fn schedule_flow(
        &mut self,
        at: SimTime,
        src: ServerId,
        dst: ServerId,
        bytes: u64,
        tag: u64,
    ) -> FlowId {
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.pending.insert(
            id.0,
            PendingFlow {
                src,
                dst,
                bytes,
                tag,
            },
        );
        self.queue.push(at, NetEvent::Start(id));
        self.stats.peak_queue_len = self.stats.peak_queue_len.max(self.queue.len());
        id
    }

    /// The next instant anything can happen in the fabric (`None` when
    /// it is idle). Superseded completion events are cancelled in the
    /// queue, so this is exact: the next event is a real flow start or
    /// a live predicted completion.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Advances the fabric through every event at or before `until`,
    /// returning the transfers that completed, in completion order.
    pub fn pump(&mut self, until: SimTime) -> Vec<FlowCompletion> {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            match ev {
                NetEvent::Start(id) => self.on_start(id, now),
                NetEvent::Complete(id, version) => self.on_complete(id, version, now),
            }
        }
        self.sync_dead_cancels();
        std::mem::take(&mut self.completions)
    }

    /// Folds the queue's dead-cancel count (cancels of already-fired
    /// keys — only fault-driven mass cancellation produces them) into
    /// `stale_events_dropped`. A no-op in fault-free runs.
    fn sync_dead_cancels(&mut self) {
        let d = self.queue.n_dead_cancels();
        self.stats.stale_events_dropped += d - self.dead_cancels_seen;
        self.dead_cancels_seen = d;
    }

    /// Drains the fabric to quiescence, returning all remaining
    /// completions. Useful at the end of a simulation.
    pub fn drain(&mut self) -> Vec<FlowCompletion> {
        self.pump(SimTime::MAX)
    }

    /// Whether a link is currently up (fault injection downs links).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_up[link.0 as usize]
    }

    /// Whether every link on the `src → dst` path is up. The empty path
    /// (a local copy) is trivially up; endpoint death is visible here
    /// only through the NIC links, so callers tracking dead *servers*
    /// must check those separately.
    pub fn path_up(&self, src: ServerId, dst: ServerId) -> bool {
        self.topo
            .path_links(src, dst)
            .as_slice()
            .iter()
            .all(|l| self.link_up[l.0 as usize])
    }

    /// Takes a link down: active flows crossing it abort (their tags
    /// are returned so the caller can retry elsewhere), scheduled but
    /// unstarted flows whose path crosses it abort too, and until
    /// [`Fabric::set_link_up`] the link contributes zero capacity — a
    /// new flow routed over it starves at rate 0 (parked completion)
    /// rather than erroring. Idempotent; a second down returns nothing.
    pub fn set_link_down(&mut self, now: SimTime, link: LinkId) -> Vec<u64> {
        if !self.link_up[link.0 as usize] {
            return Vec::new();
        }
        self.clock = self.clock.max(now);
        // A capacity change invalidates the owning group's
        // classification: migrate its state back to filling before the
        // abort sweep (survivors are re-filled — and possibly
        // re-promoted — by the re-share below).
        let owner = self.link_of[link.0 as usize];
        if owner != NO_GROUP {
            self.dissolve_group(owner, now);
        }
        self.link_up[link.0 as usize] = false;
        let ids: Vec<u64> = self.flows_on[link.0 as usize].clone();
        let mut tags = Vec::new();
        let mut seeds: Vec<LinkId> = vec![link];
        for id in ids {
            if let Some(tag) = self.abort_active(FlowId(id), now, &mut seeds) {
                tags.push(tag);
            }
        }
        let crossing: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| {
                self.topo
                    .path_links(p.src, p.dst)
                    .as_slice()
                    .contains(&link)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in crossing {
            let p = self.pending.remove(&id).expect("collected above");
            self.stats.flows_aborted += 1;
            tags.push(p.tag);
        }
        self.reshare(now, &seeds);
        self.sync_dead_cancels();
        tags
    }

    /// Brings a link back up and re-shares over it, rescuing any flows
    /// parked at rate 0 on its account. Idempotent.
    pub fn set_link_up(&mut self, now: SimTime, link: LinkId) {
        if self.link_up[link.0 as usize] {
            return;
        }
        self.clock = self.clock.max(now);
        self.link_up[link.0 as usize] = true;
        self.reshare(now, &[link]);
    }

    /// Kills a server as a network endpoint: both its NIC links go
    /// down, and every flow touching it — active, or scheduled but
    /// unstarted (including instant local copies) — aborts. Returns the
    /// aborted flows' tags.
    pub fn fail_endpoint(&mut self, now: SimTime, server: ServerId) -> Vec<u64> {
        let mut tags = self.set_link_down(now, self.topo.server_tx(server));
        tags.extend(self.set_link_down(now, self.topo.server_rx(server)));
        let touching: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.src == server || p.dst == server)
            .map(|(&id, _)| id)
            .collect();
        for id in touching {
            let p = self.pending.remove(&id).expect("collected above");
            self.stats.flows_aborted += 1;
            tags.push(p.tag);
        }
        tags
    }

    /// Brings a dead endpoint's NIC links back up.
    pub fn restore_endpoint(&mut self, now: SimTime, server: ServerId) {
        self.set_link_up(now, self.topo.server_tx(server));
        self.set_link_up(now, self.topo.server_rx(server));
    }

    /// Aborts every flow (active or scheduled) whose tag is in `tags` —
    /// the fault path for "this transfer's purpose just died" (e.g. a
    /// repair whose destination crashed). Returns the number aborted.
    pub fn abort_flows_with_tags(
        &mut self,
        now: SimTime,
        tags: &std::collections::HashSet<u64>,
    ) -> usize {
        self.clock = self.clock.max(now);
        let ids: Vec<u64> = self
            .active
            .iter()
            .filter(|(_, f)| tags.contains(&f.tag))
            .map(|(&id, _)| id)
            .collect();
        let mut n = 0;
        let mut seeds: Vec<LinkId> = Vec::new();
        for id in ids {
            if self.abort_active(FlowId(id), now, &mut seeds).is_some() {
                n += 1;
            }
        }
        let pend: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| tags.contains(&p.tag))
            .map(|(&id, _)| id)
            .collect();
        for id in pend {
            self.pending.remove(&id);
            self.stats.flows_aborted += 1;
            n += 1;
        }
        if !seeds.is_empty() {
            self.reshare(now, &seeds);
        }
        self.sync_dead_cancels();
        n
    }

    /// Removes an active flow without completing it, mirroring
    /// `on_complete`'s bookkeeping (index, running totals, pending
    /// event, obs state). Pushes the flow's links onto `seeds` so the
    /// caller can re-share once over everything it aborted.
    fn abort_active(&mut self, id: FlowId, now: SimTime, seeds: &mut Vec<LinkId>) -> Option<u64> {
        // An analytic member cannot be plucked out piecemeal — its
        // progress lives in the group clock. Migrate the whole group
        // to filling state first (exact), then abort normally; the
        // caller's re-share re-predicts the surviving ex-members.
        if let Some(g) = self.active.get(&id.0).and_then(|f| f.group) {
            self.dissolve_group(g, now);
        }
        let flow = self.active.remove(&id.0)?;
        self.in_flight_remaining -= flow.remaining;
        for l in &flow.path {
            let list = &mut self.flows_on[l.0 as usize];
            let pos = list.binary_search(&id.0).expect("flow indexed on link");
            list.remove(pos);
            seeds.push(*l);
        }
        if let Some(key) = flow.pending {
            if self.queue.cancel(key) {
                self.stats.stale_events_dropped += 1;
            }
        }
        self.stats.flows_aborted += 1;
        if let Some(obs) = &self.obs {
            self.rec.state_exit(obs.states, id.0, now);
        }
        Some(flow.tag)
    }

    fn on_start(&mut self, id: FlowId, now: SimTime) {
        self.clock = self.clock.max(now);
        let Some(p) = self.pending.remove(&id.0) else {
            return; // cancelled
        };
        let path = self.topo.path_links(p.src, p.dst);
        if let Some(obs) = &self.obs {
            self.rec.state_enter(obs.states, id.0, "running", now);
        }
        // Per-hop switching latency: charge it up front by extending the
        // effective start; for the empty path (local copy) the flow
        // completes immediately.
        if path.is_empty() {
            self.finish_flow(id, now, p.tag, p.bytes, now);
            return;
        }
        let latency = self.hop_latency.mul_f64(path.len() as f64);
        // Fold per-hop latency in as bottleneck-bytes so a tiny flow
        // still takes ≥ the path latency.
        let remaining = p.bytes as f64 + latency.as_secs_f64() * self.path_bottleneck(&path);
        self.active.insert(
            id.0,
            Flow {
                tag: p.tag,
                bytes: p.bytes,
                remaining,
                rate: 0.0,
                version: 0,
                last_update: now,
                pending: None,
                seen: 0,
                started: now,
                path,
                group: None,
            },
        );
        self.in_flight_remaining += remaining;
        for l in &path {
            let list = &mut self.flows_on[l.0 as usize];
            // Ids are assigned at schedule time but start in event-time
            // order, so keep each list sorted explicitly.
            let pos = list.binary_search(&id.0).unwrap_err();
            list.insert(pos, id.0);
        }
        self.stats.peak_active = self.stats.peak_active.max(self.active.len());
        if self.try_join_group(id, now) {
            return;
        }
        self.reshare(now, path.as_slice());
    }

    /// The analytic tier's O(log n) start path: if every link on the
    /// new flow's path is either owned by one analytic group or
    /// exclusively the flow's own, and the flow crosses the group's
    /// bottleneck, enroll it — no filling pass. Returns `true` when
    /// the start has been fully served (including the case where the
    /// join invalidated the classification and the component was
    /// migrated and re-filled). The flow must already be in
    /// `active`/`flows_on`.
    fn try_join_group(&mut self, id: FlowId, now: SimTime) -> bool {
        if self.scope != ReshareScope::Component || !self.mode.analytic_allowed() {
            return false;
        }
        let path = self.active[&id.0].path;
        let mut owner: Option<u32> = None;
        let mut merges = false;
        let mut loose = false;
        for l in &path {
            let g = self.link_of[l.0 as usize];
            if g == NO_GROUP {
                // Unowned: fine if the new flow is alone on it; any
                // other flow there is loose (never a member, by the
                // ownership invariant) and would bridge components.
                if self.flows_on[l.0 as usize].len() > 1 {
                    loose = true;
                }
            } else if owner.is_none() || owner == Some(g) {
                owner = Some(g);
            } else {
                merges = true;
            }
        }
        let Some(g) = owner else {
            return false; // purely loose start: filling (may promote)
        };
        let grp = self.groups[g as usize]
            .as_ref()
            .expect("owned link's group");
        if merges || loose || !path.contains(&LinkId(grp.bottleneck)) {
            // The join bridges groups/loose flows or skips the
            // bottleneck: the merged component is no longer provably
            // single-bottleneck. Migrate and re-fill (which re-runs
            // the classifier on the merged component).
            if merges {
                let owners: Vec<u32> = {
                    let mut v: Vec<u32> = path
                        .iter()
                        .map(|l| self.link_of[l.0 as usize])
                        .filter(|&g| g != NO_GROUP)
                        .collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                };
                for g in owners {
                    self.dissolve_group(g, now);
                }
            } else {
                self.dissolve_group(g, now);
            }
            self.reshare(now, path.as_slice());
            return true;
        }
        // Enroll: the flow's remaining was set at this instant, so it
        // enters the fair-work clock exactly.
        let remaining = self.active[&id.0].remaining;
        {
            let grp = self.groups[g as usize].as_mut().expect("checked above");
            grp.engine.insert(now, id.0, remaining);
        }
        self.active.get_mut(&id.0).expect("just started").group = Some(g);
        for l in &path {
            if self.link_of[l.0 as usize] == NO_GROUP {
                self.link_of[l.0 as usize] = g;
            }
            self.push_link_share(g, l.0);
        }
        if self.group_is_single_bottleneck(g) {
            self.stats.reshares += 1; // an allocation pass, served analytically
            self.stats.analytic_events += 1;
            self.repredict_group(g, now);
        } else {
            // The join moved the filling minimum off the bottleneck
            // (e.g. a NIC now binds): migrate and re-fill.
            self.dissolve_group(g, now);
            self.reshare(now, path.as_slice());
        }
        true
    }

    fn on_complete(&mut self, id: FlowId, version: u64, now: SimTime) {
        self.clock = self.clock.max(now);
        let stale = match self.active.get(&id.0) {
            Some(f) => f.version != version,
            None => true,
        };
        if stale {
            // Defensive: superseded events are cancelled at re-predict
            // time, so a stale fire indicates a missed cancellation.
            self.stats.stale_events_dropped += 1;
            return;
        }
        let flow = self.active.remove(&id.0).expect("checked above");
        self.in_flight_remaining -= flow.remaining;
        for l in &flow.path {
            let list = &mut self.flows_on[l.0 as usize];
            let pos = list.binary_search(&id.0).expect("flow indexed on link");
            list.remove(pos);
        }
        if let Some(g) = flow.group {
            self.on_analytic_complete(id, g, &flow.path, now);
            self.finish_flow(id, now, flow.tag, flow.bytes, flow.started);
            return;
        }
        self.finish_flow(id, now, flow.tag, flow.bytes, flow.started);
        self.reshare(now, flow.path.as_slice());
    }

    /// The analytic tier's O(log n) finish path: the group's single
    /// completion event just fired for member `id` (already removed
    /// from `active`/`flows_on`). Update the group and either
    /// re-predict the next completion or migrate if the departure
    /// moved the filling minimum off the bottleneck.
    fn on_analytic_complete(&mut self, id: FlowId, g: u32, path: &Path, now: SimTime) {
        {
            let grp = self.groups[g as usize].as_mut().expect("member's group");
            grp.event = None; // it just fired
            grp.engine.remove(now, id.0);
        }
        for l in path {
            if self.link_of[l.0 as usize] == g {
                if self.flows_on[l.0 as usize].is_empty() {
                    // The departed flow's exclusive links (its NICs)
                    // leave the group.
                    self.link_of[l.0 as usize] = NO_GROUP;
                } else {
                    self.push_link_share(g, l.0);
                }
            }
        }
        let grp = self.groups[g as usize].as_ref().expect("member's group");
        if grp.engine.is_empty() {
            self.stats.reshares += 1; // an allocation pass, served analytically
            self.stats.analytic_events += 1;
            self.groups[g as usize] = None;
            self.free_groups.push(g);
        } else if self.group_is_single_bottleneck(g) {
            self.stats.reshares += 1; // an allocation pass, served analytically
            self.stats.analytic_events += 1;
            self.repredict_group(g, now);
        } else {
            self.dissolve_group(g, now);
            self.reshare(now, path.as_slice());
        }
    }

    /// Pushes a fresh saturation-heap entry for `link` (owned by group
    /// `g`) at its current flow count. The share is the same division
    /// progressive filling would perform for this link in its first
    /// iteration, so the heap's valid minimum is exactly the filling's
    /// first pick.
    fn push_link_share(&mut self, g: u32, link: u32) {
        let cnt = self.flows_on[link as usize].len() as u32;
        debug_assert!(cnt > 0, "owned link with no flows");
        let share = self.effective_capacity(LinkId(link)) / cnt as f64;
        let grp = self.groups[g as usize]
            .as_mut()
            .expect("owned link's group");
        grp.links.push(Reverse((share.to_bits(), link, cnt)));
    }

    /// Whether group `g`'s stored bottleneck is still the
    /// lexicographically smallest `(fair share, link id)` among its
    /// links — i.e. the link progressive filling would pick first.
    /// Pops stale heap entries (dead links, outdated counts) lazily.
    fn group_is_single_bottleneck(&mut self, g: u32) -> bool {
        let link_of = &self.link_of;
        let flows_on = &self.flows_on;
        let grp = self.groups[g as usize].as_mut().expect("live group");
        let expected = (grp.engine.rate().to_bits(), grp.bottleneck);
        while let Some(&Reverse((bits, l, cnt))) = grp.links.peek() {
            if link_of[l as usize] == g && flows_on[l as usize].len() as u32 == cnt {
                return (bits, l) == expected;
            }
            grp.links.pop();
        }
        false
    }

    /// Re-predicts group `g`'s single completion event from the
    /// fair-work clock, cancelling the superseded one.
    fn repredict_group(&mut self, g: u32, now: SimTime) {
        let (top, eta) = {
            let grp = self.groups[g as usize].as_mut().expect("live group");
            if let Some(key) = grp.event.take() {
                if self.queue.cancel(key) {
                    self.stats.stale_events_dropped += 1;
                }
            }
            grp.engine.peek(now).expect("non-empty unparked group")
        };
        let version = self.active[&top].version;
        let key = self.queue.push_keyed(
            now + SimDuration::from_secs_f64(eta),
            NetEvent::Complete(FlowId(top), version),
        );
        self.groups[g as usize].as_mut().expect("live group").event = Some(key);
        self.stats.peak_queue_len = self.stats.peak_queue_len.max(self.queue.len());
    }

    /// Migrates group `g` back to progressive filling: every member's
    /// `remaining` is materialized from the fair-work clock at `now`,
    /// its per-flow stamps are re-anchored, and the group's links are
    /// released. Members are left without a live completion event —
    /// every dissolve site follows up with a re-share whose component
    /// covers all ex-members (they share the ex-bottleneck), which
    /// re-predicts them.
    fn dissolve_group(&mut self, g: u32, now: SimTime) {
        let Some(mut grp) = self.groups[g as usize].take() else {
            return;
        };
        grp.engine.advance(now);
        if let Some(key) = grp.event.take() {
            if self.queue.cancel(key) {
                self.stats.stale_events_dropped += 1;
            }
        }
        let rate = grp.engine.rate();
        for (id, remaining) in grp.engine.members() {
            let f = self.active.get_mut(&id).expect("group member is active");
            self.in_flight_remaining -= f.remaining - remaining;
            f.remaining = remaining;
            f.last_update = now;
            f.rate = rate;
            f.pending = None;
            f.group = None;
            let path = f.path;
            for l in &path {
                if self.link_of[l.0 as usize] == g {
                    self.link_of[l.0 as usize] = NO_GROUP;
                }
            }
        }
        self.free_groups.push(g);
        self.stats.fallback_migrations += 1;
    }

    fn finish_flow(&mut self, id: FlowId, now: SimTime, tag: u64, bytes: u64, started: SimTime) {
        self.stats.completed += 1;
        self.stats.bytes_delivered += bytes;
        if let Some(obs) = &self.obs {
            self.rec
                .observe(obs.flow_secs, now.since(started).as_secs_f64());
            self.rec
                .span_args(obs.track, "flow", started, now, &[("bytes", bytes as f64)]);
            self.rec.state_exit(obs.states, id.0, now);
        }
        self.completions.push(FlowCompletion {
            flow: id,
            at: now,
            tag,
            bytes,
            started,
        });
    }

    /// A link's capacity as the filling sees it: zero while the link is
    /// down (fault injection), the physical capacity otherwise. The
    /// all-up multiply-by-nothing path is the exact `topo.capacity`
    /// value, so fault-free runs are bitwise unaffected.
    fn effective_capacity(&self, link: LinkId) -> f64 {
        if self.link_up[link.0 as usize] {
            self.topo.capacity(link)
        } else {
            0.0
        }
    }

    fn path_bottleneck(&self, path: &[LinkId]) -> f64 {
        path.iter()
            .map(|&l| self.effective_capacity(l))
            .fold(f64::INFINITY, f64::min)
    }

    /// Collects the connected component of active flows transitively
    /// sharing a link with `seeds` (a changed flow's path): breadth-
    /// first over the inverted index, alternating link → flows and
    /// flow → links. Returns (flow ids, link ids), both ascending — the
    /// sort makes the filling order independent of discovery order.
    fn component(&mut self, seeds: &[LinkId]) -> (Vec<u64>, Vec<u32>) {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut flows: Vec<u64> = Vec::new();
        let mut links: Vec<u32> = Vec::new();
        let mut frontier: Vec<u32> = Vec::new();
        for l in seeds {
            if self.link_seen[l.0 as usize] != epoch {
                self.link_seen[l.0 as usize] = epoch;
                frontier.push(l.0);
            }
        }
        let flows_on = &self.flows_on;
        let active = &mut self.active;
        let link_seen = &mut self.link_seen;
        while let Some(l) = frontier.pop() {
            links.push(l);
            for fid in &flows_on[l as usize] {
                let f = active.get_mut(fid).expect("indexed flow is active");
                if f.seen == epoch {
                    continue;
                }
                f.seen = epoch;
                flows.push(*fid);
                for pl in f.path.as_slice() {
                    if link_seen[pl.0 as usize] != epoch {
                        link_seen[pl.0 as usize] = epoch;
                        frontier.push(pl.0);
                    }
                }
            }
        }
        flows.sort_unstable();
        links.sort_unstable();
        (flows, links)
    }

    /// Recomputes max-min fair rates (progressive filling) for the
    /// flows the event can affect and re-predicts their completions.
    /// `seeds` is the changed flow's path; under
    /// [`ReshareScope::Component`] only its connected component is
    /// recomputed, under [`ReshareScope::Global`] everything is.
    ///
    /// Progressive filling: repeatedly find the most-contended link (the
    /// one whose remaining capacity split across its unfrozen flows is
    /// smallest), freeze those flows at that fair share, subtract their
    /// demand everywhere, and repeat. The result is the unique max-min
    /// fair allocation; every flow ends up bottlenecked by (at least) one
    /// saturated link on its path. Filling over a component is bitwise
    /// identical to filling over the whole population restricted to it:
    /// a link's fair share involves only its own component's flows, so
    /// interleaving freezes across disjoint components never changes
    /// what any flow gets.
    fn reshare(&mut self, now: SimTime, seeds: &[LinkId]) {
        // Filling over group-owned links would corrupt group state
        // (members' stamps are frozen; the group holds their event):
        // any group this event reaches is migrated to filling state
        // first. Loose flows never share a link with members, so the
        // component walk can only enter a group through a seed — four
        // array reads on the no-group hot path.
        for l in seeds {
            let g = self.link_of[l.0 as usize];
            if g != NO_GROUP {
                self.dissolve_group(g, now);
            }
        }
        self.stats.reshares += 1;
        if self.active.is_empty() {
            return;
        }

        // The candidate set: one component, or everything. Sorted ids
        // keep the freeze order and the bottleneck tie-break identical
        // between the two scopes.
        let (ids, used): (Vec<u64>, Vec<u32>) = match self.scope {
            ReshareScope::Component => self.component(seeds),
            ReshareScope::Global => {
                let ids: Vec<u64> = self.active.keys().copied().collect();
                let mut used: Vec<u32> = ids
                    .iter()
                    .flat_map(|id| self.active[id].path.iter().map(|l| l.0))
                    .collect();
                used.sort_unstable();
                used.dedup();
                (ids, used)
            }
        };
        if ids.is_empty() {
            return;
        }
        if let Some(obs) = &self.obs {
            self.rec.observe(obs.component_flows, ids.len() as f64);
            self.rec
                .gauge_at(obs.queue_len, now, self.queue.len() as f64);
            self.rec
                .gauge_at(obs.tombstones, now, self.queue.n_stale() as f64);
        }

        let slot_of =
            |link: LinkId| -> usize { used.binary_search(&link.0).expect("link in used set") };
        let mut spare: Vec<f64> = used
            .iter()
            .map(|&l| self.effective_capacity(LinkId(l)))
            .collect();
        let mut unfrozen_on: Vec<u32> = vec![0; used.len()];
        for id in &ids {
            for l in &self.active[id].path {
                unfrozen_on[slot_of(*l)] += 1;
            }
        }
        let mut frozen: Vec<bool> = vec![false; ids.len()];
        let mut rates: Vec<f64> = vec![0.0; ids.len()];
        let mut left = ids.len();
        // The classifier rides the filling for free: remember the
        // first iteration's pick and how many iterations ran.
        let mut first: Option<(f64, u32)> = None;
        let mut iterations = 0usize;

        while left > 0 {
            // The bottleneck link and its fair share.
            let mut best: Option<(f64, usize)> = None;
            for (slot, &cnt) in unfrozen_on.iter().enumerate() {
                if cnt == 0 {
                    continue;
                }
                let share = spare[slot] / cnt as f64;
                match best {
                    Some((s, _)) if s <= share => {}
                    _ => best = Some((share, slot)),
                }
            }
            let Some((share, bottleneck)) = best else {
                break; // no unfrozen flow crosses any link
            };
            let share = share.max(0.0);
            let bottleneck = used[bottleneck];
            if iterations == 0 {
                first = Some((share, bottleneck));
            }
            iterations += 1;
            // Freeze every unfrozen flow crossing the bottleneck,
            // ascending by id straight off the inverted index (every
            // flow on a candidate link is itself a candidate).
            for fid in &self.flows_on[bottleneck as usize] {
                let i = ids.binary_search(fid).expect("flow in candidate set");
                if frozen[i] {
                    continue;
                }
                frozen[i] = true;
                rates[i] = share;
                left -= 1;
                for l in &self.active[fid].path {
                    let slot = slot_of(*l);
                    spare[slot] = (spare[slot] - share).max(0.0);
                    unfrozen_on[slot] -= 1;
                }
            }
        }

        // Single-bottleneck classification: one iteration froze the
        // whole component, so every flow crosses the picked link and
        // max-min degenerates to an equal split — promote the
        // component to the analytic tier (unless the reference filling
        // was explicitly requested, or the component is trivial, or
        // the bottleneck is a dead link parking everyone at 0).
        if let Some((share, bottleneck)) = first {
            if iterations == 1
                && share > 0.0
                && ids.len() >= 2
                && self.scope == ReshareScope::Component
                && self.mode.analytic_allowed()
            {
                self.promote(now, &ids, &used, bottleneck, share);
                return;
            }
        }

        // Apply rates and re-predict completions. A flow whose rate is
        // bitwise-unchanged keeps its pending Complete event: its
        // `remaining` hasn't been advanced since that event was
        // predicted, so the predicted absolute completion time is still
        // exact. A flow whose rate changes is advanced lazily — one
        // multiply covering the whole span since its own last change —
        // and its superseded event is cancelled in the queue.
        // (`version > 0 && pending` means a live event exists; a flow
        // freshly migrated from an analytic group has `version > 0`
        // but no event, and must be re-predicted even at an unchanged
        // rate.)
        let active = &mut self.active;
        let queue = &mut self.queue;
        let stats = &mut self.stats;
        for (i, id) in ids.iter().enumerate() {
            let f = active.get_mut(id).expect("active");
            debug_assert!(f.group.is_none(), "filling visited an analytic member");
            if f.version > 0 && rates[i] == f.rate && f.pending.is_some() {
                continue;
            }
            let dt = now.since(f.last_update).as_secs_f64();
            if dt > 0.0 {
                let advanced = (f.remaining - f.rate * dt).max(0.0);
                self.in_flight_remaining -= f.remaining - advanced;
                f.remaining = advanced;
            }
            f.last_update = now;
            if let Some(key) = f.pending.take() {
                if queue.cancel(key) {
                    stats.stale_events_dropped += 1;
                }
            }
            f.rate = rates[i];
            f.version += 1;
            let eta = if f.rate > 0.0 {
                SimDuration::from_secs_f64(f.remaining / f.rate)
            } else {
                // Starved flow (zero-capacity link): park the completion
                // far in the future; a later re-share will rescue it.
                SimDuration::from_days(365_000)
            };
            f.pending =
                Some(queue.push_keyed(now + eta, NetEvent::Complete(FlowId(*id), f.version)));
            stats.peak_queue_len = stats.peak_queue_len.max(queue.len());
        }
    }

    /// Promotes a component the filling just proved single-bottleneck
    /// (`ids` all cross `bottleneck`, each at fair share `share`) into
    /// an analytic group. Every member is advanced to `now` with the
    /// same fused multiply the filling apply loop uses, its per-flow
    /// event is cancelled, and it is enrolled in the fair-work clock —
    /// after which the first predicted completion is bitwise the one
    /// filling would have pushed (`v = 0`, so keys are exactly the
    /// remaining work).
    fn promote(&mut self, now: SimTime, ids: &[u64], used: &[u32], bottleneck: u32, share: f64) {
        let g = match self.free_groups.pop() {
            Some(g) => g,
            None => {
                self.groups.push(None);
                (self.groups.len() - 1) as u32
            }
        };
        let mut engine = FairShare::new(self.effective_capacity(LinkId(bottleneck)), now);
        for id in ids {
            let f = self.active.get_mut(id).expect("component flow is active");
            let dt = now.since(f.last_update).as_secs_f64();
            if dt > 0.0 {
                let advanced = (f.remaining - f.rate * dt).max(0.0);
                self.in_flight_remaining -= f.remaining - advanced;
                f.remaining = advanced;
            }
            f.last_update = now;
            if let Some(key) = f.pending.take() {
                if self.queue.cancel(key) {
                    self.stats.stale_events_dropped += 1;
                }
            }
            f.rate = share;
            f.version += 1;
            f.group = Some(g);
            engine.insert(now, *id, f.remaining);
        }
        // The component's crossed links are the group's links: claim
        // them and seed the saturation heap at current counts. (`used`
        // may also carry flowless seed links — a just-departed flow's
        // NICs — which stay unowned; they cannot be a bottleneck.)
        let mut links = BinaryHeap::with_capacity(used.len());
        for &l in used {
            let cnt = self.flows_on[l as usize].len() as u32;
            if cnt == 0 {
                continue;
            }
            self.link_of[l as usize] = g;
            let entry_share = self.effective_capacity(LinkId(l)) / cnt as f64;
            links.push(Reverse((entry_share.to_bits(), l, cnt)));
        }
        self.groups[g as usize] = Some(AnalyticGroup {
            bottleneck,
            engine,
            links,
            event: None,
        });
        self.stats.analytic_components += 1;
        self.repredict_group(g, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_cluster::Datacenter;
    use harvest_trace::datacenter::DatacenterProfile;

    const MB: u64 = 1024 * 1024;

    fn fabric() -> (Datacenter, Fabric) {
        let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 42);
        let f = Fabric::from_datacenter(&dc, &NetworkConfig::datacenter());
        (dc, f)
    }

    fn cross_rack_pair(dc: &Datacenter) -> (ServerId, ServerId) {
        let a = dc.servers[0].id;
        let b = dc
            .servers
            .iter()
            .find(|s| s.rack != dc.servers[0].rack)
            .expect("multi-rack dc")
            .id;
        (a, b)
    }

    #[test]
    fn single_flow_runs_at_nic_speed() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        f.schedule_flow(SimTime::ZERO, a, b, 1_250 * MB, 1);
        let done = f.drain();
        assert_eq!(done.len(), 1);
        // 1250 MiB at 1.25e9 B/s ≈ 1.05 s (MiB vs MB) + hop latency.
        let secs = done[0].at.since(done[0].started).as_secs_f64();
        assert!((1.0..1.2).contains(&secs), "single flow took {secs}s");
    }

    #[test]
    fn local_copy_is_instant() {
        let (dc, mut f) = fabric();
        let a = dc.servers[0].id;
        f.schedule_flow(SimTime::from_secs(5), a, a, 999 * MB, 7);
        let done = f.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, SimTime::from_secs(5));
        assert_eq!(done[0].tag, 7);
    }

    #[test]
    fn two_flows_share_a_nic_fairly() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        // Both flows leave server `a`: its TX NIC is the bottleneck.
        f.schedule_flow(SimTime::ZERO, a, b, 125 * MB, 1);
        f.schedule_flow(SimTime::ZERO, a, b, 125 * MB, 2);
        f.pump(SimTime::ZERO);
        let r1 = f.flow_rate(FlowId(0)).unwrap();
        let r2 = f.flow_rate(FlowId(1)).unwrap();
        assert!((r1 - r2).abs() < 1.0, "unequal shares {r1} vs {r2}");
        let nic = NetworkConfig::datacenter().nic_bytes_per_sec();
        assert!((r1 + r2 - nic).abs() / nic < 1e-9, "NIC not saturated");
        // Sharing doubles the transfer time vs. running alone.
        let done = f.drain();
        let secs = done[1].at.since(done[1].started).as_secs_f64();
        assert!((0.2..0.25).contains(&secs), "shared pair took {secs}s");
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let (dc, mut f) = fabric();
        // Two flows between entirely different rack pairs.
        let racks = dc.n_racks();
        assert!(racks >= 4, "need 4 racks, have {racks}");
        let by_rack = |r: u32| {
            dc.servers
                .iter()
                .find(|s| s.rack.0 == r)
                .expect("rack populated")
                .id
        };
        f.schedule_flow(SimTime::ZERO, by_rack(0), by_rack(1), 125 * MB, 1);
        f.schedule_flow(SimTime::ZERO, by_rack(2), by_rack(3), 125 * MB, 2);
        f.pump(SimTime::ZERO);
        let nic = NetworkConfig::datacenter().nic_bytes_per_sec();
        for id in [0, 1] {
            let r = f.flow_rate(FlowId(id)).unwrap();
            assert!((r - nic).abs() / nic < 1e-9, "flow {id} throttled to {r}");
        }
        f.drain();
    }

    #[test]
    fn oversubscribed_uplink_throttles_a_storm() {
        let (dc, mut f) = fabric();
        // Many flows out of one rack to distinct remote servers: the
        // 4:1-oversubscribed uplink (5 NICs worth) is the bottleneck.
        let rack0: Vec<ServerId> = dc
            .servers
            .iter()
            .filter(|s| s.rack.0 == 0)
            .map(|s| s.id)
            .collect();
        let remote: Vec<ServerId> = dc
            .servers
            .iter()
            .filter(|s| s.rack.0 != 0)
            .take(rack0.len())
            .map(|s| s.id)
            .collect();
        assert!(rack0.len() >= 10, "rack 0 has {}", rack0.len());
        for (i, (&s, &d)) in rack0.iter().zip(&remote).enumerate() {
            f.schedule_flow(SimTime::ZERO, s, d, 125 * MB, i as u64);
        }
        f.pump(SimTime::ZERO);
        let uplink = f.topology().rack_up(0);
        let cap = f.topology().capacity(uplink);
        let load = f.link_load(uplink);
        assert!(
            load <= cap * (1.0 + 1e-9),
            "uplink overloaded: {load} > {cap}"
        );
        assert!(
            load >= cap * (1.0 - 1e-9),
            "uplink not work-conserving: {load} < {cap}"
        );
        // Each flow gets the uplink fair share, which is below NIC speed.
        let nic = NetworkConfig::datacenter().nic_bytes_per_sec();
        let share = f.flow_rate(FlowId(0)).unwrap();
        assert!(share < nic, "share {share} not throttled below NIC {nic}");
        f.drain();
    }

    #[test]
    fn departures_release_bandwidth() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        // A short and a long flow share `a`'s NIC; after the short one
        // leaves, the long one speeds up, finishing sooner than it would
        // have at the half-rate.
        f.schedule_flow(SimTime::ZERO, a, b, 125 * MB, 1);
        f.schedule_flow(SimTime::ZERO, a, b, 1_250 * MB, 2);
        let done = f.drain();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].tag, 1, "short flow finishes first");
        let long_secs = done[1].at.as_secs_f64();
        // Alone: ~1.05 s. Always halved: ~2.1 s. With the short flow
        // departing around 0.21 s the long one lands near 1.16 s.
        assert!(
            (1.05..1.6).contains(&long_secs),
            "long flow took {long_secs}s — bandwidth not released?"
        );
    }

    #[test]
    fn staggered_starts_replay_deterministically() {
        let run = || {
            let (dc, mut f) = fabric();
            let (a, b) = cross_rack_pair(&dc);
            let mut ends = Vec::new();
            for i in 0..20u64 {
                f.schedule_flow(
                    SimTime::from_millis(i * 37),
                    dc.servers[(i as usize * 13) % dc.n_servers()].id,
                    if i % 3 == 0 { a } else { b },
                    (i + 1) * 10 * MB,
                    i,
                );
            }
            for c in f.drain() {
                ends.push((c.tag, c.at));
            }
            ends
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pump_respects_the_horizon() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        f.schedule_flow(SimTime::ZERO, a, b, 1_250 * MB, 1); // ~1 s
        let early = f.pump(SimTime::from_millis(500));
        assert!(early.is_empty(), "flow finished early: {early:?}");
        assert_eq!(f.n_active(), 1);
        let late = f.pump(SimTime::from_secs(10));
        assert_eq!(late.len(), 1);
        assert_eq!(f.n_active(), 0);
    }

    #[test]
    fn stats_track_the_population() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        f.schedule_flow(SimTime::ZERO, a, b, 10 * MB, 1);
        f.schedule_flow(SimTime::ZERO, a, b, 10 * MB, 2);
        f.drain();
        let s = f.stats();
        assert_eq!(s.completed, 2);
        assert_eq!(s.bytes_delivered, 20 * MB);
        assert_eq!(s.peak_active, 2);
        assert!(s.reshares >= 4);
        // The second flow's arrival re-predicted the first's completion,
        // which cancelled (dropped) the superseded event.
        assert!(s.stale_events_dropped >= 1);
        assert!(s.peak_queue_len >= 2);
    }

    /// The point of component scoping: an unrelated start/finish leaves
    /// a disjoint flow's rate, version, and scheduled completion event
    /// untouched.
    #[test]
    fn disjoint_flows_keep_their_event_version() {
        let (dc, mut f) = fabric();
        let racks = dc.n_racks();
        assert!(racks >= 4, "need 4 racks, have {racks}");
        let by_rack = |r: u32| {
            dc.servers
                .iter()
                .find(|s| s.rack.0 == r)
                .expect("rack populated")
                .id
        };
        // A long-lived flow between racks 0 and 1.
        let bystander = f.schedule_flow(SimTime::ZERO, by_rack(0), by_rack(1), 1_250 * MB, 1);
        f.pump(SimTime::ZERO);
        let v0 = f.flow_version(bystander).expect("active");
        let r0 = f.flow_rate(bystander).expect("active");
        // An unrelated flow between racks 2 and 3 starts and finishes.
        f.schedule_flow(SimTime::from_millis(10), by_rack(2), by_rack(3), 10 * MB, 2);
        f.pump(SimTime::from_millis(500));
        assert_eq!(f.stats().completed, 1, "unrelated flow should be done");
        assert_eq!(
            f.flow_version(bystander),
            Some(v0),
            "disjoint-component flow was re-predicted by an unrelated start/finish"
        );
        assert_eq!(f.flow_rate(bystander), Some(r0));
        // A flow that *does* share the bystander's links bumps it.
        f.schedule_flow(SimTime::from_secs(1), by_rack(0), by_rack(1), 10 * MB, 3);
        f.pump(SimTime::from_secs(1));
        assert!(
            f.flow_version(bystander).expect("active") > v0,
            "sharing flow must re-predict the bystander"
        );
        f.drain();
    }

    /// Component scoping and the global reference recompute must agree
    /// bitwise (the full randomized oracle lives in tests/properties.rs).
    #[test]
    fn component_scope_matches_global_scope() {
        let run = |scope: ReshareScope| {
            let (dc, mut f) = fabric();
            // This oracle probes *versions*, which the analytic tier
            // deliberately freezes — pin the filling machinery itself.
            // (The analytic-vs-global oracles live below and in
            // tests/properties.rs.)
            f.set_sharing_mode(SharingMode::Filling);
            f.set_reshare_scope(scope);
            let n = dc.n_servers();
            for i in 0..40u64 {
                f.schedule_flow(
                    SimTime::from_millis(i * 23),
                    dc.servers[(i as usize * 13) % n].id,
                    dc.servers[(i as usize * 7 + 1) % n].id,
                    (i % 64 + 1) * 4 * MB,
                    i,
                );
            }
            f.pump(SimTime::from_millis(300));
            let probe: Vec<(u64, u64, u64)> = f
                .active_flow_ids()
                .iter()
                .map(|&id| {
                    (
                        id.0,
                        f.flow_rate(id).unwrap().to_bits(),
                        f.flow_version(id).unwrap(),
                    )
                })
                .collect();
            let ends: Vec<(u64, SimTime)> = f.drain().into_iter().map(|c| (c.tag, c.at)).collect();
            (probe, ends)
        };
        let comp = run(ReshareScope::Component);
        let glob = run(ReshareScope::Global);
        assert_eq!(comp.0, glob.0, "mid-run rates/versions diverged");
        assert_eq!(comp.1, glob.1, "completion schedules diverged");
    }

    /// Recording is pure observation: the completion schedule and the
    /// stats struct are bitwise identical with a recorder attached, and
    /// the recorder mirrors the final stats as counters.
    #[test]
    fn recording_does_not_change_the_trajectory() {
        let run = |record: bool| {
            let (dc, mut f) = fabric();
            if record {
                f.set_recorder(Recorder::new("fabric-test"));
            }
            let n = dc.n_servers();
            for i in 0..40u64 {
                f.schedule_flow(
                    SimTime::from_millis(i * 23),
                    dc.servers[(i as usize * 13) % n].id,
                    dc.servers[(i as usize * 7 + 1) % n].id,
                    (i % 64 + 1) * 4 * MB,
                    i,
                );
            }
            let ends: Vec<(u64, SimTime)> = f.drain().into_iter().map(|c| (c.tag, c.at)).collect();
            let stats = *f.stats();
            (ends, stats, f.take_recorder())
        };
        let (ends_off, stats_off, rec_off) = run(false);
        let (ends_on, stats_on, rec_on) = run(true);
        assert_eq!(ends_off, ends_on, "recording changed the schedule");
        assert_eq!(stats_off, stats_on, "recording changed the stats");
        assert!(!rec_off.is_on());
        assert_eq!(
            rec_on.counter_value("fabric/completed"),
            Some(stats_on.completed)
        );
        assert_eq!(
            rec_on.counter_value("fabric/reshares"),
            Some(stats_on.reshares)
        );
        assert_eq!(
            rec_on.counter_value("fabric/stale_events_dropped"),
            Some(stats_on.stale_events_dropped)
        );
        assert_eq!(
            rec_on.counter_value("fabric/peak_queue_len"),
            Some(stats_on.peak_queue_len as u64)
        );
    }

    /// A rack-pair convoy (every flow through one oversubscribed
    /// uplink) classifies single-bottleneck, is served analytically,
    /// migrates back to filling when the population shrinks until the
    /// NICs bind — and the whole trajectory is exactly the filling
    /// reference's.
    #[test]
    fn storm_promotes_and_matches_filling_exactly() {
        let run = |mode: SharingMode| {
            let (dc, mut f) = fabric();
            f.set_sharing_mode(mode);
            let rack0: Vec<ServerId> = dc
                .servers
                .iter()
                .filter(|s| s.rack.0 == 0)
                .map(|s| s.id)
                .collect();
            let rack1: Vec<ServerId> = dc
                .servers
                .iter()
                .filter(|s| s.rack.0 == 1)
                .map(|s| s.id)
                .collect();
            assert!(rack0.len() >= 12 && rack1.len() >= 12);
            for i in 0..12u64 {
                f.schedule_flow(
                    SimTime::from_millis(i * 7),
                    rack0[i as usize],
                    rack1[i as usize],
                    64 * MB,
                    i,
                );
            }
            let ends: Vec<(u64, SimTime)> = f.drain().into_iter().map(|c| (c.tag, c.at)).collect();
            (ends, *f.stats())
        };
        let (ends_auto, stats_auto) = run(SharingMode::Auto);
        let (ends_fill, stats_fill) = run(SharingMode::Filling);
        assert_eq!(ends_auto, ends_fill, "analytic schedule diverged");
        assert_eq!(stats_auto.completed, 12);
        assert!(
            stats_auto.analytic_components >= 1,
            "storm never classified single-bottleneck: {stats_auto:?}"
        );
        assert!(stats_auto.analytic_events > 0);
        assert!(
            stats_auto.fallback_migrations >= 1,
            "NIC-bound tail never migrated: {stats_auto:?}"
        );
        assert_eq!(stats_fill.analytic_components, 0);
        assert_eq!(stats_fill.analytic_events, 0);
    }

    /// Mid-run rate allocations under the analytic tier are bitwise
    /// the global filling reference's (the randomized oracle lives in
    /// tests/properties.rs).
    #[test]
    fn analytic_rates_match_global_bitwise() {
        let run = |mode: SharingMode, scope: ReshareScope| {
            let (dc, mut f) = fabric();
            f.set_sharing_mode(mode);
            f.set_reshare_scope(scope);
            let rack0: Vec<ServerId> = dc
                .servers
                .iter()
                .filter(|s| s.rack.0 == 0)
                .map(|s| s.id)
                .collect();
            let rack1: Vec<ServerId> = dc
                .servers
                .iter()
                .filter(|s| s.rack.0 == 1)
                .map(|s| s.id)
                .collect();
            for i in 0..10u64 {
                f.schedule_flow(
                    SimTime::from_millis(i * 5),
                    rack0[i as usize],
                    rack1[i as usize],
                    256 * MB,
                    i,
                );
            }
            f.pump(SimTime::from_millis(60));
            let probe: Vec<(u64, u64)> = f
                .active_flow_ids()
                .iter()
                .map(|&id| (id.0, f.flow_rate(id).unwrap().to_bits()))
                .collect();
            let ends: Vec<(u64, SimTime)> = f.drain().into_iter().map(|c| (c.tag, c.at)).collect();
            (probe, ends)
        };
        let analytic = run(SharingMode::Analytic, ReshareScope::Component);
        let global = run(SharingMode::Filling, ReshareScope::Global);
        assert_eq!(analytic.0, global.0, "mid-run rates diverged bitwise");
        assert_eq!(analytic.1, global.1, "completion schedules diverged");
    }

    /// The fault-interplay regression: an uplink going down mid-storm
    /// invalidates the analytic classification. The group must migrate
    /// its state exactly — crossing flows abort (as filling would
    /// abort them), survivors re-promote under the new shape, and no
    /// flow is lost or double-completed.
    #[test]
    fn uplink_down_mid_storm_migrates_exactly() {
        let run = |mode: SharingMode| {
            let (dc, mut f) = fabric();
            f.set_sharing_mode(mode);
            let by_rack = |r: u32| -> Vec<ServerId> {
                dc.servers
                    .iter()
                    .filter(|s| s.rack.0 == r)
                    .map(|s| s.id)
                    .collect()
            };
            let (rack0, rack1, rack2) = (by_rack(0), by_rack(1), by_rack(2));
            // 8 flows to rack 1 and 8 to rack 2, all through rack 0's
            // uplink: one single-bottleneck component of 16.
            for i in 0..8u64 {
                f.schedule_flow(
                    SimTime::ZERO,
                    rack0[i as usize],
                    rack1[i as usize],
                    256 * MB,
                    i,
                );
                f.schedule_flow(
                    SimTime::ZERO,
                    rack0[8 + i as usize],
                    rack2[i as usize],
                    256 * MB,
                    100 + i,
                );
            }
            f.pump(SimTime::from_millis(50));
            // Rack 1's downlink dies mid-storm.
            let mut aborted = f.set_link_down(SimTime::from_millis(50), f.topology().rack_down(1));
            aborted.sort_unstable();
            let ends: Vec<(u64, SimTime)> = f.drain().into_iter().map(|c| (c.tag, c.at)).collect();
            (aborted, ends, *f.stats())
        };
        let (ab_auto, ends_auto, stats_auto) = run(SharingMode::Auto);
        let (ab_fill, ends_fill, stats_fill) = run(SharingMode::Filling);
        assert_eq!(ab_auto, ab_fill, "abort sets diverged");
        assert_eq!(ends_auto, ends_fill, "survivor schedules diverged");
        // Conservation: every scheduled flow either completed once or
        // aborted once — none lost, none double-completed.
        assert_eq!(ab_auto.len(), 8, "expected the rack-1 half to abort");
        assert_eq!(stats_auto.completed, 8);
        assert_eq!(stats_auto.flows_aborted, 8);
        assert_eq!(stats_fill.completed, 8);
        let mut seen = ends_auto.iter().map(|(tag, _)| *tag).collect::<Vec<_>>();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "a survivor completed twice");
        // The fault really did hit a live analytic group, and the
        // survivors re-promoted afterwards.
        assert!(stats_auto.fallback_migrations >= 1, "{stats_auto:?}");
        assert!(stats_auto.analytic_components >= 2, "{stats_auto:?}");
    }

    #[test]
    fn link_down_aborts_crossing_flows() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        f.schedule_flow(SimTime::ZERO, a, b, 1_250 * MB, 7);
        f.pump(SimTime::ZERO);
        assert_eq!(f.n_active(), 1);
        let tx = f.topology().server_tx(a);
        assert!(f.path_up(a, b));
        let tags = f.set_link_down(SimTime::from_millis(100), tx);
        assert_eq!(tags, vec![7]);
        assert_eq!(f.n_active(), 0);
        assert_eq!(f.stats().flows_aborted, 1);
        assert!(!f.link_is_up(tx));
        assert!(!f.path_up(a, b));
        // Idempotent: a second down aborts nothing.
        assert!(f.set_link_down(SimTime::from_millis(100), tx).is_empty());
        // The aborted flow never completes.
        assert!(f.drain().is_empty());
        assert_eq!(f.stats().completed, 0);
    }

    #[test]
    fn flow_over_a_dead_link_parks_until_link_up() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        let tx = f.topology().server_tx(a);
        f.set_link_down(SimTime::ZERO, tx);
        // Scheduled after the outage: it starts, starves at rate 0.
        let id = f.schedule_flow(SimTime::from_millis(10), a, b, 10 * MB, 1);
        f.pump(SimTime::from_millis(10));
        assert_eq!(f.n_active(), 1);
        assert_eq!(f.flow_rate(id), Some(0.0));
        // No completion while the link is down...
        assert!(f.pump(SimTime::from_secs(3_600)).is_empty());
        // ...and the link coming back rescues it.
        f.set_link_up(SimTime::from_secs(3_600), tx);
        let done = f.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 1);
        assert!(done[0].at >= SimTime::from_secs(3_600));
    }

    #[test]
    fn endpoint_death_aborts_everything_touching_the_server() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        f.schedule_flow(SimTime::ZERO, a, b, 500 * MB, 1); // outbound, active
        f.schedule_flow(SimTime::ZERO, b, a, 500 * MB, 2); // inbound, active
        f.schedule_flow(SimTime::from_secs(5), a, a, MB, 3); // pending local copy
        f.pump(SimTime::ZERO);
        let mut tags = f.fail_endpoint(SimTime::from_millis(50), a);
        tags.sort_unstable();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(f.n_active(), 0);
        assert_eq!(f.n_pending(), 0);
        assert_eq!(f.stats().flows_aborted, 3);
        // After restore, new transfers to the server work again.
        f.restore_endpoint(SimTime::from_secs(10), a);
        f.schedule_flow(SimTime::from_secs(10), b, a, 10 * MB, 4);
        let done = f.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 4);
    }

    #[test]
    fn abort_by_tag_takes_out_all_parts() {
        let (dc, mut f) = fabric();
        let (a, b) = cross_rack_pair(&dc);
        f.schedule_flow(SimTime::ZERO, a, b, 500 * MB, 9);
        f.schedule_flow(SimTime::ZERO, b, a, 500 * MB, 9);
        f.schedule_flow(SimTime::ZERO, a, b, 10 * MB, 2);
        f.pump(SimTime::ZERO);
        let dead: std::collections::HashSet<u64> = [9].into_iter().collect();
        assert_eq!(f.abort_flows_with_tags(SimTime::from_millis(1), &dead), 2);
        assert_eq!(f.n_active(), 1);
        let done = f.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 2);
    }

    /// link_load served from the inverted index agrees with a direct
    /// scan over flow paths.
    #[test]
    fn link_load_matches_path_scan() {
        let (dc, mut f) = fabric();
        let n = dc.n_servers();
        for i in 0..30u64 {
            f.schedule_flow(
                SimTime::ZERO,
                dc.servers[(i as usize * 11) % n].id,
                dc.servers[(i as usize * 3 + 2) % n].id,
                50 * MB,
                i,
            );
        }
        f.pump(SimTime::ZERO);
        for l in 0..f.topology().n_links() {
            let link = LinkId(l as u32);
            let scan: f64 = f
                .active_flow_ids()
                .iter()
                .filter(|&&id| f.flow_path(id).unwrap().contains(&link))
                .map(|&id| f.flow_rate(id).unwrap())
                .sum();
            assert_eq!(f.link_load(link), scan, "link {l}");
            assert_eq!(
                f.link_flows(link),
                f.active_flow_ids()
                    .iter()
                    .filter(|&&id| f.flow_path(id).unwrap().contains(&link))
                    .count()
            );
        }
        f.drain();
    }
}
