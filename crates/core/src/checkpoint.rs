//! Crash-safe checkpoint/resume and the supervised-sweep harness.
//!
//! Long sweeps die for harness reasons — OOM, SIGKILL, a power cut —
//! and without a journal, hour N of compute is gone. This module gives
//! every experiment sweep a resilient execution layer:
//!
//! * [`sweep`] / [`sweep_plain`] wrap
//!   [`harvest_sim::supervise::par_map_supervised_with`]: panic
//!   isolation with bounded retries, quarantine, and the
//!   deadline/straggler watchdog, keyed by *stable task keys* (the
//!   experiment's seed-stream names), with outcomes accounted in
//!   [`SweepStats`].
//! * [`Checkpoint`] journals each completed task's result as one line
//!   of `crc len {"k":KEY,"v":RESULT}` through the in-repo
//!   [`json`] (no serde), fsync'd in batches. On resume the journal is
//!   replayed by key and only the remainder is computed. Because every
//!   task owns a `derive_seed_indexed` stream named by its key, a
//!   killed-and-resumed run's stdout is **byte-identical** to an
//!   uninterrupted one at any `--jobs`.
//!
//! # Exactness
//!
//! [`json`]'s numbers are `f64`, which cannot round-trip every `u64`
//! (or a NaN payload). Journaled values therefore encode **every**
//! numeric field as a 16-hex-digit bit-pattern string
//! ([`hex_u64`]/[`hex_f64`]), decoded back with
//! `u64::from_str_radix(.., 16)` — bitwise exact for all values,
//! including NaN, infinities, and `u64 > 2^53`.
//!
//! # Torn writes
//!
//! A mid-write kill can leave a torn final line. Every line carries an
//! FNV-1a checksum and a byte length; a final line that is
//! unterminated or fails validation is detected, counted, and
//! *dropped* — never misparsed — and the file is truncated back to its
//! last valid line before new results are appended. A malformed line
//! anywhere *else* is real corruption and fails the resume with a
//! one-line error.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use harvest_sim::obs::json;
use harvest_sim::supervise::{par_map_supervised_with, CancelToken, SuperviseConfig, Supervised};

use crate::scale::Scale;

/// FNV-1a 64-bit over `bytes` — the journal line checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends of `pending` lines are batched before each fsync.
const FSYNC_BATCH: usize = 32;

fn journal_line(key: &str, value_json: &str) -> String {
    let payload = format!("{{\"k\":\"{key}\",\"v\":{value_json}}}");
    format!(
        "{:016x} {} {payload}\n",
        fnv1a64(payload.as_bytes()),
        payload.len()
    )
}

/// A parsed journal: results by key, plus recovery accounting.
#[derive(Debug)]
pub struct JournalData {
    /// Journaled results, last write per key wins.
    pub map: HashMap<String, json::Value>,
    /// Torn (unterminated or invalid) final lines dropped.
    pub torn_dropped: u64,
    /// Byte length of the valid prefix — truncate to this before
    /// appending.
    pub valid_len: u64,
}

fn parse_line(line: &str) -> Result<(String, json::Value), String> {
    let (crc_s, rest) = line.split_once(' ').ok_or("missing checksum field")?;
    let (len_s, payload) = rest.split_once(' ').ok_or("missing length field")?;
    let crc = u64::from_str_radix(crc_s, 16).map_err(|_| "bad checksum field".to_string())?;
    let len: usize = len_s.parse().map_err(|_| "bad length field".to_string())?;
    if payload.len() != len {
        return Err(format!("length mismatch ({} != {len})", payload.len()));
    }
    if fnv1a64(payload.as_bytes()) != crc {
        return Err("checksum mismatch".to_string());
    }
    let v = json::parse(payload)?;
    let key = v
        .get("k")
        .and_then(|k| k.as_str())
        .ok_or("payload missing \"k\"")?
        .to_string();
    let value = v.get("v").ok_or("payload missing \"v\"")?.clone();
    Ok((key, value))
}

/// Parses a journal file's contents. The final line is allowed to be
/// torn (dropped and counted); any earlier malformed line is an error.
pub fn parse_journal(text: &str) -> Result<JournalData, String> {
    let mut map = HashMap::new();
    let mut torn_dropped = 0u64;
    let mut valid_len = 0u64;
    let mut offset = 0usize;
    let mut lineno = 0usize;
    for chunk in text.split_inclusive('\n') {
        lineno += 1;
        let terminated = chunk.ends_with('\n');
        let line = chunk.strip_suffix('\n').unwrap_or(chunk);
        let end = offset + chunk.len();
        let last = end == text.len();
        match parse_line(line) {
            Ok((key, value)) if terminated => {
                map.insert(key, value);
                valid_len = end as u64;
            }
            // A checksum-valid but unterminated final line is still
            // torn: the fsync that covered it may not have landed.
            Ok(_) => torn_dropped += 1,
            Err(e) => {
                if last {
                    torn_dropped += 1;
                } else {
                    return Err(format!("corrupt journal line {lineno}: {e}"));
                }
            }
        }
        offset = end;
    }
    Ok(JournalData {
        map,
        torn_dropped,
        valid_len,
    })
}

struct JournalWriter {
    file: File,
    pending: usize,
}

impl JournalWriter {
    fn append(&mut self, key: &str, value_json: &str) -> std::io::Result<()> {
        self.file
            .write_all(journal_line(key, value_json).as_bytes())?;
        self.pending += 1;
        if self.pending >= FSYNC_BATCH {
            self.file.sync_data()?;
            self.pending = 0;
        }
        Ok(())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.pending > 0 {
            self.file.sync_data()?;
            self.pending = 0;
        }
        Ok(())
    }
}

/// An open checkpoint: restored results (from `--resume`) plus an
/// append-only journal writer (from `--checkpoint`). Shared across the
/// sweep's worker threads.
pub struct Checkpoint {
    restored: HashMap<String, json::Value>,
    writer: Mutex<Option<JournalWriter>>,
    /// Restored results must be re-journaled into a *fresh* write file
    /// (checkpoint path ≠ resume path); a same-file resume already has
    /// them on disk.
    rewrite_restored: bool,
    error: Mutex<Option<String>>,
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("restored", &self.restored.len())
            .finish_non_exhaustive()
    }
}

impl Checkpoint {
    /// Opens a checkpoint from the `--checkpoint` / `--resume` paths.
    /// Returns `Ok(None)` when neither is given; otherwise the
    /// checkpoint plus `(torn lines dropped, results restored)`.
    pub fn open(
        write_path: Option<&str>,
        resume_path: Option<&str>,
    ) -> Result<Option<(Checkpoint, u64, usize)>, String> {
        if write_path.is_none() && resume_path.is_none() {
            return Ok(None);
        }
        let mut restored = HashMap::new();
        let mut torn = 0u64;
        let mut valid_len = 0u64;
        if let Some(path) = resume_path {
            let mut text = String::new();
            File::open(path)
                .and_then(|mut f| f.read_to_string(&mut text))
                .map_err(|e| format!("cannot read resume journal {path}: {e}"))?;
            let data =
                parse_journal(&text).map_err(|e| format!("corrupt resume journal {path}: {e}"))?;
            restored = data.map;
            torn = data.torn_dropped;
            valid_len = data.valid_len;
        }
        let same_file = write_path.is_some() && write_path == resume_path;
        let writer = match write_path {
            None => None,
            Some(path) => {
                let file = if same_file {
                    let f = OpenOptions::new()
                        .read(true)
                        .write(true)
                        .open(path)
                        .map_err(|e| format!("cannot open checkpoint journal {path}: {e}"))?;
                    // Drop any torn tail before appending.
                    f.set_len(valid_len)
                        .map_err(|e| format!("cannot truncate checkpoint journal {path}: {e}"))?;
                    let mut f = f;
                    f.seek(SeekFrom::End(0))
                        .map_err(|e| format!("cannot seek checkpoint journal {path}: {e}"))?;
                    f
                } else {
                    File::create(path)
                        .map_err(|e| format!("cannot create checkpoint journal {path}: {e}"))?
                };
                Some(JournalWriter { file, pending: 0 })
            }
        };
        let n_restored = restored.len();
        Ok(Some((
            Checkpoint {
                restored,
                writer: Mutex::new(writer),
                rewrite_restored: writer_needs_rewrite(write_path, resume_path),
                error: Mutex::new(None),
            },
            torn,
            n_restored,
        )))
    }

    /// The restored result for `key`, if the resume journal had one.
    pub fn restored(&self, key: &str) -> Option<&json::Value> {
        self.restored.get(key)
    }

    /// Whether restored results should be re-journaled (fresh write
    /// file that does not already contain them).
    pub fn rewrite_restored(&self) -> bool {
        self.rewrite_restored
    }

    /// Appends one result line. I/O errors are latched and surfaced by
    /// [`Checkpoint::flush`] so worker threads never panic mid-sweep.
    pub fn journal(&self, key: &str, value_json: &str) {
        let mut guard = self.writer.lock().unwrap();
        if let Some(w) = guard.as_mut() {
            if let Err(e) = w.append(key, value_json) {
                self.error
                    .lock()
                    .unwrap()
                    .get_or_insert_with(|| format!("checkpoint journal write failed: {e}"));
            }
        }
    }

    /// Final fsync; returns the first latched write error, if any.
    pub fn flush(&self) -> Result<(), String> {
        if let Some(w) = self.writer.lock().unwrap().as_mut() {
            if let Err(e) = w.flush() {
                return Err(format!("checkpoint journal flush failed: {e}"));
            }
        }
        match self.error.lock().unwrap().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

fn writer_needs_rewrite(write_path: Option<&str>, resume_path: Option<&str>) -> bool {
    write_path.is_some() && resume_path.is_some() && write_path != resume_path
}

/// Monotonic counters for one run's sweep outcomes, shared by every
/// experiment through [`Harness::stats`] and drained per experiment by
/// `repro` ([`SweepStats::take`]).
#[derive(Debug, Default)]
pub struct SweepStats {
    restored: AtomicU64,
    journaled: AtomicU64,
    retries: AtomicU64,
    quarantined: AtomicU64,
    stragglers: AtomicU64,
    cancelled: AtomicU64,
}

/// A drained [`SweepStats`] reading.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepSnapshot {
    /// Results replayed from the resume journal.
    pub restored: u64,
    /// Results appended to the checkpoint journal.
    pub journaled: u64,
    /// Retry attempts consumed by panicking tasks.
    pub retries: u64,
    /// Tasks quarantined after exhausting the retry budget.
    pub quarantined: u64,
    /// Tasks flagged past the deadline (including cancelled ones).
    pub stragglers: u64,
    /// Stragglers cooperatively cancelled (results discarded).
    pub cancelled: u64,
}

impl SweepSnapshot {
    /// Whether anything noteworthy happened.
    pub fn any(&self) -> bool {
        *self != SweepSnapshot::default()
    }
}

impl SweepStats {
    /// Drains the counters into a snapshot (counters reset to zero).
    pub fn take(&self) -> SweepSnapshot {
        SweepSnapshot {
            restored: self.restored.swap(0, Ordering::Relaxed),
            journaled: self.journaled.swap(0, Ordering::Relaxed),
            retries: self.retries.swap(0, Ordering::Relaxed),
            quarantined: self.quarantined.swap(0, Ordering::Relaxed),
            stragglers: self.stragglers.swap(0, Ordering::Relaxed),
            cancelled: self.cancelled.swap(0, Ordering::Relaxed),
        }
    }

    fn add(&self, field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }
}

/// The per-run resilience context carried inside [`Scale`]: an optional
/// open checkpoint, an optional fixed task deadline (which also arms
/// cooperative cancellation), and the shared outcome counters.
#[derive(Debug, Clone, Default)]
pub struct Harness {
    /// Open checkpoint (`--checkpoint` / `--resume`), if any.
    pub checkpoint: Option<Arc<Checkpoint>>,
    /// Fixed per-task deadline (`--task-deadline SECS`). `None` uses
    /// the watchdog's automatic running-median deadline, flag-only.
    pub deadline: Option<Duration>,
    /// Sweep outcome counters, drained per experiment by `repro`.
    pub stats: Arc<SweepStats>,
}

/// A value that can round-trip through the checkpoint journal.
///
/// `decode(parse(encode(x)))` must be bitwise identical to `x` — use
/// [`hex_u64`]/[`hex_f64`] for every numeric field (see the module
/// docs for why plain JSON numbers are not exact).
pub trait Journaled: Sized {
    /// Encode as a JSON value (one journal line's `"v"`).
    fn encode(&self) -> String;
    /// Decode a parsed journal value; `None` on shape mismatch (the
    /// task is then simply recomputed).
    fn decode(v: &json::Value) -> Option<Self>;
}

/// A `u64` as a JSON-quoted 16-hex-digit string — bitwise exact.
pub fn hex_u64(v: u64) -> String {
    format!("\"{v:016x}\"")
}

/// An `f64` as its bit pattern via [`hex_u64`] — exact for every
/// value, including NaN and infinities.
pub fn hex_f64(v: f64) -> String {
    hex_u64(v.to_bits())
}

/// Reads a [`hex_u64`]-encoded field from a journal value.
pub fn get_u64(v: &json::Value, key: &str) -> Option<u64> {
    u64::from_str_radix(v.get(key)?.as_str()?, 16).ok()
}

/// Reads a [`hex_f64`]-encoded field from a journal value.
pub fn get_f64(v: &json::Value, key: &str) -> Option<f64> {
    get_u64(v, key).map(f64::from_bits)
}

/// Builds a JSON object from `(key, already-encoded value)` pairs.
pub fn obj(fields: &[(&str, String)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        s.push_str(k);
        s.push_str("\":");
        s.push_str(v);
    }
    s.push('}');
    s
}

/// One supervised sweep's outcome: per-task results in input order
/// (`None` exactly for quarantined/cancelled tasks) plus a
/// deterministic report note describing them, if any.
#[derive(Debug)]
pub struct Sweep<R> {
    /// One slot per task, input order.
    pub results: Vec<Option<R>>,
    /// Deterministic "harness:" note for the report when tasks were
    /// quarantined or cancelled; `None` on a clean sweep.
    pub note: Option<String>,
}

fn forced_panic_key() -> Option<&'static str> {
    static KEY: OnceLock<Option<String>> = OnceLock::new();
    KEY.get_or_init(|| std::env::var("HARVEST_FORCE_PANIC").ok())
        .as_deref()
}

#[allow(clippy::type_complexity)]
fn run_sweep<T, R, S>(
    scale: &Scale,
    stream: &str,
    tasks: &[T],
    key_of: &(dyn Fn(&T) -> String + Sync),
    init: &(dyn Fn() -> S + Sync),
    codec: Option<(
        &(dyn Fn(&R) -> String + Sync),
        &(dyn Fn(&json::Value) -> Option<R> + Sync),
    )>,
    f: &(dyn Fn(&mut S, &T, &CancelToken) -> R + Sync),
) -> Sweep<R>
where
    T: Sync,
    R: Send,
{
    let harness = &scale.harness;
    let keys: Vec<String> = tasks
        .iter()
        .map(|t| format!("{stream}/{}", key_of(t)))
        .collect();

    let mut results: Vec<Option<R>> = Vec::with_capacity(tasks.len());
    results.resize_with(tasks.len(), || None);

    // Restore pass: replay journaled results by key; a decode failure
    // just recomputes the task.
    if let (Some(cp), Some((encode, decode))) = (&harness.checkpoint, codec) {
        let mut n_restored = 0u64;
        for (i, key) in keys.iter().enumerate() {
            if let Some(r) = cp.restored(key).and_then(decode) {
                if cp.rewrite_restored() {
                    cp.journal(key, &encode(&r));
                }
                results[i] = Some(r);
                n_restored += 1;
            }
        }
        harness.stats.add(&harness.stats.restored, n_restored);
    }

    let todo: Vec<usize> = (0..tasks.len()).filter(|&i| results[i].is_none()).collect();
    if todo.is_empty() {
        return Sweep {
            results,
            note: None,
        };
    }

    let cfg = SuperviseConfig {
        deadline: harness.deadline,
        cancel_overdue: harness.deadline.is_some(),
        seed: scale.seed,
        ..SuperviseConfig::default()
    };
    let sup: Supervised<R> = par_map_supervised_with(
        scale.jobs,
        &todo,
        &cfg,
        init,
        |j| keys[todo[j]].clone(),
        |j, r| {
            if let (Some(cp), Some((encode, _))) = (&harness.checkpoint, codec) {
                cp.journal(&keys[todo[j]], &encode(r));
                harness.stats.add(&harness.stats.journaled, 1);
            }
        },
        |scratch, _j, &orig, token| {
            if forced_panic_key() == Some(keys[orig].as_str()) {
                panic!("forced panic ({})", keys[orig]);
            }
            f(scratch, &tasks[orig], token)
        },
    );

    harness.stats.add(&harness.stats.retries, sup.retries);
    harness
        .stats
        .add(&harness.stats.quarantined, sup.quarantined.len() as u64);
    harness
        .stats
        .add(&harness.stats.stragglers, sup.stragglers.len() as u64);
    let cancelled: Vec<_> = sup.stragglers.iter().filter(|s| s.cancelled).collect();
    harness
        .stats
        .add(&harness.stats.cancelled, cancelled.len() as u64);

    let mut notes: Vec<String> = Vec::new();
    for q in &sup.quarantined {
        notes.push(format!(
            "`{}` quarantined after {} attempts ({})",
            q.key, q.attempts, q.payload
        ));
    }
    for s in &cancelled {
        notes.push(format!(
            "`{}` cancelled past the task deadline",
            keys[todo[s.task]]
        ));
    }

    for (j, r) in sup.results.into_iter().enumerate() {
        if let Some(r) = r {
            debug_assert!(results[todo[j]].is_none());
            results[todo[j]] = Some(r);
        }
    }

    Sweep {
        results,
        note: (!notes.is_empty()).then(|| format!("harness: {}", notes.join("; "))),
    }
}

/// Supervised, checkpointable sweep over `tasks`. Task keys are
/// `"{stream}/{key_of(task)}"` and must be stable across runs and
/// `--jobs` values — they are what the resume journal indexes by.
/// Results journal through [`Journaled`] when a checkpoint is open.
pub fn sweep<T, R, F, K>(scale: &Scale, stream: &str, tasks: &[T], key_of: K, f: F) -> Sweep<R>
where
    T: Sync,
    R: Journaled + Send,
    K: Fn(&T) -> String + Sync,
    F: Fn(&T, &CancelToken) -> R + Sync,
{
    let encode = |r: &R| r.encode();
    let decode = |v: &json::Value| R::decode(v);
    run_sweep(
        scale,
        stream,
        tasks,
        &key_of,
        &|| (),
        Some((&encode, &decode)),
        &|(), t, token| f(t, token),
    )
}

/// Supervised sweep without journaling: panic isolation, retries, and
/// the watchdog, but results are always recomputed on resume (for
/// cheap per-row tasks whose results are not worth journaling).
pub fn sweep_plain<T, R, F, K>(
    scale: &Scale,
    stream: &str,
    tasks: &[T],
    key_of: K,
    f: F,
) -> Sweep<R>
where
    T: Sync,
    R: Send,
    K: Fn(&T) -> String + Sync,
    F: Fn(&T, &CancelToken) -> R + Sync,
{
    run_sweep(
        scale,
        stream,
        tasks,
        &key_of,
        &|| (),
        None,
        &|(), t, token| f(t, token),
    )
}

/// [`sweep_plain`] with per-worker scratch (the
/// [`harvest_sim::par::par_map_with`] shape).
pub fn sweep_plain_with<T, R, S, I, F, K>(
    scale: &Scale,
    stream: &str,
    tasks: &[T],
    key_of: K,
    init: I,
    f: F,
) -> Sweep<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    K: Fn(&T) -> String + Sync,
    F: Fn(&mut S, &T, &CancelToken) -> R + Sync,
{
    run_sweep(
        scale,
        stream,
        tasks,
        &key_of,
        &init,
        None,
        &|s, t, token| f(s, t, token),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Rec {
        a: u64,
        b: f64,
    }

    impl Journaled for Rec {
        fn encode(&self) -> String {
            obj(&[("a", hex_u64(self.a)), ("b", hex_f64(self.b))])
        }
        fn decode(v: &json::Value) -> Option<Self> {
            Some(Rec {
                a: get_u64(v, "a")?,
                b: get_f64(v, "b")?,
            })
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("harvest-ck-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn hex_codec_is_bitwise_exact() {
        for rec in [
            Rec {
                a: u64::MAX,
                b: f64::NAN,
            },
            Rec {
                a: (1 << 53) + 1,
                b: f64::INFINITY,
            },
            Rec { a: 0, b: -0.0 },
            Rec {
                a: 12345,
                b: 0.1 + 0.2,
            },
        ] {
            let v = json::parse(&rec.encode()).unwrap();
            let back = Rec::decode(&v).unwrap();
            assert_eq!(back.a, rec.a);
            assert_eq!(back.b.to_bits(), rec.b.to_bits());
        }
    }

    #[test]
    fn journal_round_trips() {
        let mut text = String::new();
        text.push_str(&journal_line("fig/x", &Rec { a: 7, b: 1.5 }.encode()));
        text.push_str(&journal_line("fig/y", &Rec { a: 8, b: 2.5 }.encode()));
        let data = parse_journal(&text).unwrap();
        assert_eq!(data.torn_dropped, 0);
        assert_eq!(data.valid_len, text.len() as u64);
        assert_eq!(data.map.len(), 2);
        let y = Rec::decode(&data.map["fig/y"]).unwrap();
        assert_eq!(y, Rec { a: 8, b: 2.5 });
    }

    #[test]
    fn torn_final_line_is_dropped_not_misparsed() {
        let mut text = String::new();
        text.push_str(&journal_line("fig/x", &Rec { a: 7, b: 1.5 }.encode()));
        let keep = text.len();
        let second = journal_line("fig/y", &Rec { a: 8, b: 2.5 }.encode());
        // Simulate a mid-write kill: half the second line, no newline.
        text.push_str(&second[..second.len() / 2]);
        let data = parse_journal(&text).unwrap();
        assert_eq!(data.torn_dropped, 1);
        assert_eq!(data.valid_len, keep as u64);
        assert_eq!(data.map.len(), 1);
        assert!(data.map.contains_key("fig/x"));
    }

    #[test]
    fn unterminated_but_valid_final_line_is_still_torn() {
        let mut text = journal_line("fig/x", &Rec { a: 7, b: 1.5 }.encode());
        text.pop(); // strip the newline only
        let data = parse_journal(&text).unwrap();
        assert_eq!(data.torn_dropped, 1);
        assert_eq!(data.valid_len, 0);
        assert!(data.map.is_empty());
    }

    #[test]
    fn corrupt_middle_line_is_an_error() {
        let mut text = String::new();
        text.push_str(&journal_line("fig/x", &Rec { a: 7, b: 1.5 }.encode()));
        text.push_str("deadbeef 4 junk\n");
        text.push_str(&journal_line("fig/y", &Rec { a: 8, b: 2.5 }.encode()));
        let err = parse_journal(&text).unwrap_err();
        assert!(err.contains("line 2"), "error: {err}");
    }

    #[test]
    fn resume_keys_are_stable_across_jobs() {
        let write = tmp("stable-w");
        let write_s = write.to_str().unwrap().to_string();
        let tasks: Vec<u64> = (0..20).collect();
        let run = |jobs: usize, ck: Option<&str>, resume: Option<&str>| -> Vec<Option<Rec>> {
            let mut scale = Scale::quick();
            scale.jobs = jobs;
            if let Some((cp, _, _)) = Checkpoint::open(ck, resume).unwrap() {
                scale.harness.checkpoint = Some(Arc::new(cp));
            }
            let s = sweep(
                &scale,
                "stab",
                &tasks,
                |t| format!("t{t}"),
                |&t, _| Rec {
                    a: t * 3,
                    b: t as f64 * 0.5,
                },
            );
            if let Some(cp) = &scale.harness.checkpoint {
                cp.flush().unwrap();
            }
            s.results
        };
        // Journal the full sweep at jobs=4 …
        let full = run(4, Some(&write_s), None);
        // … then resume at jobs=1 and jobs=3: every result restored
        // (keys match regardless of which worker computed them).
        for jobs in [1, 3] {
            let mut scale = Scale::quick();
            scale.jobs = jobs;
            let (cp, torn, restored) = Checkpoint::open(None, Some(&write_s)).unwrap().unwrap();
            assert_eq!(torn, 0);
            assert_eq!(restored, tasks.len());
            scale.harness.checkpoint = Some(Arc::new(cp));
            let s = sweep(
                &scale,
                "stab",
                &tasks,
                |t| format!("t{t}"),
                |&t, _| panic!("task t{t} must be restored, not recomputed"),
            );
            assert_eq!(s.results, full, "jobs={jobs}");
            assert_eq!(scale.harness.stats.take().restored, tasks.len() as u64);
        }
        std::fs::remove_file(&write).ok();
    }

    #[test]
    fn same_file_checkpoint_resume_truncates_torn_tail() {
        let path = tmp("torn-tail");
        let path_s = path.to_str().unwrap().to_string();
        let mut text = journal_line("r/t0", &Rec { a: 1, b: 1.0 }.encode());
        let second = journal_line("r/t1", &Rec { a: 2, b: 2.0 }.encode());
        text.push_str(&second[..second.len() - 3]);
        std::fs::write(&path, &text).unwrap();
        let (cp, torn, restored) = Checkpoint::open(Some(&path_s), Some(&path_s))
            .unwrap()
            .unwrap();
        assert_eq!(torn, 1);
        assert_eq!(restored, 1);
        cp.journal("r/t1", &Rec { a: 2, b: 2.0 }.encode());
        cp.flush().unwrap();
        drop(cp);
        // The torn tail was truncated before the append: the file now
        // parses cleanly with both keys.
        let data = parse_journal(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(data.torn_dropped, 0);
        assert_eq!(data.map.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unreadable_resume_is_a_one_line_error() {
        let err = Checkpoint::open(None, Some("/nonexistent/journal")).unwrap_err();
        assert!(err.contains("cannot read resume journal"), "{err}");
        assert!(!err.contains('\n'));
    }
}
