//! Offline stand-in for the subset of [`proptest`] the workspace uses.
//!
//! Provides the [`proptest!`] macro, [`Strategy`] implementations for
//! numeric ranges, tuples, and `prop::collection::vec`, plus the
//! [`prop_assert!`]/[`prop_assert_eq!`] assertion macros and
//! [`ProptestConfig`]. Unlike the real crate there is no shrinking: a
//! failing case reports the case number and panics. Cases are generated
//! deterministically (case index → seed), so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How a test's random cases are generated.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 48 keeps the workspace's
        // heavier properties (whole-datacenter placement) fast while
        // still exploring a meaningful slice of the input space.
        ProptestConfig { cases: 48 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "empty f32 strategy range");
        self.start + rng.random::<f32>() * (self.end - self.start)
    }
}

/// A strategy producing one constant value (`Just` in real proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection-size specification: a fixed size or a range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::RngExt;

        /// A strategy producing `Vec`s of values from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = if self.size.lo + 1 >= self.size.hi {
                    self.size.lo
                } else {
                    rng.random_range(self.size.lo..self.size.hi)
                };
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Builds a `Vec` strategy with the given element strategy and
        /// size (a `usize` or a `usize` range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Derives the RNG for one test case. Mixing the case index through
/// SplitMix64-style constants decorrelates consecutive cases.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in test_name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The error a failed property case produces.
pub type TestCaseError = String;

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        case_rng, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a property, failing the case (without
/// panicking mid-shrink, in real proptest) when it is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Declares property-based tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that runs the body over `ProptestConfig::cases` deterministic random
/// cases. An optional `#![proptest_config(...)]` header overrides the
/// config for the whole block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::case_rng(stringify!($name), case);
                $(
                    let $arg = $crate::Strategy::sample(&($strategy), &mut __proptest_rng);
                )+
                let result: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = result {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        msg
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3u64..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vecs_sized(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn fixed_size_vec(v in prop::collection::vec(0.0f64..1.0, 3)) {
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn tuples_work(t in (0u64..4, 0.0f64..1.0, 1usize..3)) {
            prop_assert!(t.0 < 4 && t.1 < 1.0 && t.2 >= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_override_applies(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = case_rng("t", 0);
        let mut b = case_rng("t", 0);
        assert_eq!((0u64..4).sample(&mut a), (0u64..4).sample(&mut b));
    }
}
