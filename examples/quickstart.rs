//! Quickstart: build a datacenter, classify its tenants, and co-locate a
//! batch workload under the history-based scheduler.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use harvest::jobs::tpcds::tpcds_suite;
use harvest::jobs::workload::Workload;
use harvest::prelude::*;
use harvest::sched::sim::{SchedSim, SchedSimConfig};
use harvest::sim::rng::stream_rng;
use harvest::sim::SimDuration;

fn main() {
    let seed = 42;

    // 1. A scaled-down DC-9: a few dozen primary tenants with one month
    //    of two-minute utilization history each.
    let profile = DatacenterProfile::dc(9).scaled(0.05);
    let dc = harvest::cluster::Datacenter::generate(&profile, seed);
    println!(
        "datacenter {}: {} tenants, {} servers, mean utilization {:.0}%",
        dc.name,
        dc.n_tenants(),
        dc.n_servers(),
        dc.mean_utilization() * 100.0
    );

    // 2. The clustering service: FFT classification + K-Means, as the
    //    paper's daily clustering job does.
    let svc = ClusteringService::build(&dc, seed);
    println!("clustering produced {} classes:", svc.class_count());
    for class in svc.classes() {
        println!(
            "  class {:>2} [{:>13}] {:>3} tenants {:>5} servers  avg {:>4.0}% peak {:>4.0}%",
            class.id,
            class.pattern.to_string(),
            class.tenants.len(),
            class.n_servers(),
            class.avg_util * 100.0,
            class.peak_util * 100.0,
        );
    }

    // 3. Five hours of TPC-DS-like jobs under YARN-H/Tez-H.
    let view = harvest::cluster::UtilizationView::unscaled(&dc);
    let mut rng = stream_rng(seed, "quickstart-workload");
    let workload = Workload::poisson(
        &mut rng,
        tpcds_suite(),
        SimDuration::from_secs(30),
        SimDuration::from_hours(5),
    );
    println!("\nsubmitting {} jobs over 5 hours...", workload.n_jobs());
    let cfg = SchedSimConfig::testbed(SchedPolicy::History, seed);
    let stats = SchedSim::new(&dc, &view, &workload, cfg).run();

    println!(
        "completed {}/{} jobs, mean execution {:.0}s, {} task kills",
        stats.completed_jobs(),
        stats.jobs.len(),
        stats.mean_execution_secs(),
        stats.total_kills,
    );
    println!(
        "cluster utilization: primary-only {:.1}% -> with harvesting {:.1}%",
        stats.avg_primary_utilization * 100.0,
        stats.avg_total_utilization * 100.0,
    );
}
