//! Job DAGs: stages of parallel tasks connected by dependencies.

use harvest_sim::SimDuration;

/// Index of a stage within its job's DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub usize);

/// One vertex of a job DAG: a set of identical parallel tasks (e.g.
/// "Mapper 2" with 469 tasks in Figure 7).
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Display name ("Mapper 2", "Reducer 5").
    pub name: String,
    /// Number of parallel tasks in the stage.
    pub tasks: u32,
    /// Duration of each task.
    pub task_duration: SimDuration,
    /// Stages that must fully complete before this one can start.
    pub deps: Vec<StageId>,
}

/// A batch job: a named DAG of stages.
#[derive(Debug, Clone, PartialEq)]
pub struct DagJob {
    /// Job name (used as the key for job-length history).
    pub name: String,
    /// The stages, in an order consistent with dependencies (deps always
    /// point to lower indices — enforced by [`DagJob::new`]).
    pub stages: Vec<Stage>,
}

impl DagJob {
    /// Creates a job, validating the DAG.
    ///
    /// # Panics
    ///
    /// Panics if the job has no stages, a stage has no tasks, or a
    /// dependency points at itself or a later stage (which guarantees
    /// acyclicity and gives a built-in topological order).
    pub fn new(name: impl Into<String>, stages: Vec<Stage>) -> Self {
        let name = name.into();
        assert!(!stages.is_empty(), "job {name} has no stages");
        for (i, s) in stages.iter().enumerate() {
            assert!(s.tasks > 0, "stage {} of {name} has zero tasks", s.name);
            assert!(
                s.task_duration > SimDuration::ZERO,
                "stage {} of {name} has zero duration",
                s.name
            );
            for d in &s.deps {
                assert!(
                    d.0 < i,
                    "stage {} of {name} depends on stage {} (must be earlier)",
                    s.name,
                    d.0
                );
            }
        }
        DagJob { name, stages }
    }

    /// Number of stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total number of tasks across all stages.
    pub fn total_tasks(&self) -> u64 {
        self.stages.iter().map(|s| s.tasks as u64).sum()
    }

    /// Total compute demand: Σ tasks × duration.
    pub fn total_work(&self) -> SimDuration {
        let ms: u64 = self
            .stages
            .iter()
            .map(|s| s.tasks as u64 * s.task_duration.as_millis())
            .sum();
        SimDuration::from_millis(ms)
    }

    /// The critical-path duration: the longest dependency chain, where a
    /// stage contributes one task duration (its tasks run in parallel).
    ///
    /// This is the job's minimum possible execution time given unlimited
    /// containers.
    pub fn critical_path(&self) -> SimDuration {
        let mut finish = vec![0u64; self.stages.len()];
        for (i, s) in self.stages.iter().enumerate() {
            let dep_finish = s.deps.iter().map(|d| finish[d.0]).max().unwrap_or(0);
            finish[i] = dep_finish + s.task_duration.as_millis();
        }
        SimDuration::from_millis(finish.into_iter().max().unwrap_or(0))
    }

    /// Stages with no dependencies.
    pub fn roots(&self) -> Vec<StageId> {
        self.stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.deps.is_empty())
            .map(|(i, _)| StageId(i))
            .collect()
    }

    /// The depth (BFS level) of every stage: roots are level 0, and each
    /// stage sits one past its deepest dependency.
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.stages.len()];
        for (i, s) in self.stages.iter().enumerate() {
            level[i] = s.deps.iter().map(|d| level[d.0] + 1).max().unwrap_or(0);
        }
        level
    }
}

/// Convenience constructor for a stage.
pub fn stage(name: impl Into<String>, tasks: u32, task_secs: u64, deps: Vec<usize>) -> Stage {
    Stage {
        name: name.into(),
        tasks,
        task_duration: SimDuration::from_secs(task_secs),
        deps: deps.into_iter().map(StageId).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DagJob {
        DagJob::new(
            "diamond",
            vec![
                stage("m1", 10, 30, vec![]),
                stage("m2", 20, 30, vec![]),
                stage("r1", 5, 60, vec![0, 1]),
                stage("r2", 1, 10, vec![2]),
            ],
        )
    }

    #[test]
    fn totals() {
        let j = diamond();
        assert_eq!(j.n_stages(), 4);
        assert_eq!(j.total_tasks(), 36);
        let work = 10 * 30 + 20 * 30 + 5 * 60 + 10;
        assert_eq!(j.total_work().as_secs(), work);
    }

    #[test]
    fn critical_path_longest_chain() {
        let j = diamond();
        // m (30) -> r1 (60) -> r2 (10) = 100s.
        assert_eq!(j.critical_path().as_secs(), 100);
    }

    #[test]
    fn roots_and_levels() {
        let j = diamond();
        assert_eq!(j.roots(), vec![StageId(0), StageId(1)]);
        assert_eq!(j.levels(), vec![0, 0, 1, 2]);
    }

    #[test]
    fn single_stage_job() {
        let j = DagJob::new("one", vec![stage("m", 3, 5, vec![])]);
        assert_eq!(j.critical_path().as_secs(), 5);
        assert_eq!(j.levels(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "has no stages")]
    fn empty_job_panics() {
        DagJob::new("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "zero tasks")]
    fn zero_tasks_panics() {
        DagJob::new("bad", vec![stage("m", 0, 5, vec![])]);
    }

    #[test]
    #[should_panic(expected = "must be earlier")]
    fn forward_dep_panics() {
        DagJob::new(
            "bad",
            vec![stage("a", 1, 5, vec![1]), stage("b", 1, 5, vec![])],
        );
    }

    #[test]
    #[should_panic(expected = "must be earlier")]
    fn self_dep_panics() {
        DagJob::new("bad", vec![stage("a", 1, 5, vec![0])]);
    }
}
