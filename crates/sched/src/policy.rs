//! Scheduler variants (§6.1's baselines).

/// Which scheduler runs the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// "YARN-Stock": stock YARN + Tez. Oblivious to primary tenants —
    /// containers use the full server, nothing is ever killed for the
    /// primary's sake, and the primary's latency pays for it.
    Stock,
    /// "YARN-PT": primary-tenant-aware YARN with stock Tez. Keeps the
    /// burst reserve and kills youngest containers when it is violated,
    /// but places tasks using only *current* utilization.
    PrimaryAware,
    /// "YARN-H/Tez-H": primary-tenant awareness plus history-based class
    /// selection (Algorithm 1).
    History,
}

impl SchedPolicy {
    /// All policies in the paper's comparison order.
    pub const ALL: [SchedPolicy; 3] = [
        SchedPolicy::Stock,
        SchedPolicy::PrimaryAware,
        SchedPolicy::History,
    ];

    /// Whether this policy respects the primary tenant (reserve + kills).
    pub fn primary_aware(self) -> bool {
        !matches!(self, SchedPolicy::Stock)
    }

    /// Whether this policy uses the clustering service and Algorithm 1.
    pub fn uses_history(self) -> bool {
        matches!(self, SchedPolicy::History)
    }

    /// The paper's name for the system.
    pub fn label(self) -> &'static str {
        match self {
            SchedPolicy::Stock => "YARN-Stock",
            SchedPolicy::PrimaryAware => "YARN-PT",
            SchedPolicy::History => "YARN-H/Tez-H",
        }
    }
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awareness_flags() {
        assert!(!SchedPolicy::Stock.primary_aware());
        assert!(SchedPolicy::PrimaryAware.primary_aware());
        assert!(SchedPolicy::History.primary_aware());
        assert!(SchedPolicy::History.uses_history());
        assert!(!SchedPolicy::PrimaryAware.uses_history());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(SchedPolicy::Stock.to_string(), "YARN-Stock");
        assert_eq!(SchedPolicy::PrimaryAware.to_string(), "YARN-PT");
        assert_eq!(SchedPolicy::History.to_string(), "YARN-H/Tez-H");
    }
}
