//! Disk-reimage history generation and analysis.
//!
//! §3.3: reimages come from (1) developers/operators re-deploying their
//! environments, (2) AutoPilot resilience testing, and (3) disk
//! maintenance. They are "often correlated, i.e. many servers might be
//! reimaged at the same time (e.g., when servers are repurposed from one
//! primary tenant to another)" — the property that threatens co-located
//! replicas. Per-tenant monthly rates vary month to month but tenants
//! "tend to rank consistently in the same part of the spectrum"
//! (Figure 6).

use harvest_sim::dist;
use harvest_sim::time::{SimDuration, SimTime};
use rand::Rng;

/// Why a disk was reimaged (§3.3's three types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReimageKind {
    /// Manual re-deployment or restart-from-scratch of an environment.
    Redeploy,
    /// AutoPilot resilience testing of production services.
    Resilience,
    /// Disk maintenance (e.g., tested for failure).
    Maintenance,
}

/// One reimage of one server's disk. Reimaging destroys every block
/// replica stored on the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReimageEvent {
    /// Index of the server *within its tenant*.
    pub server: usize,
    /// When the reimage happened.
    pub time: SimTime,
    /// Why it happened.
    pub kind: ReimageKind,
}

/// Duration of one month on the simulation clock (30 days).
pub const MONTH: SimDuration = SimDuration::from_days(30);

/// Per-tenant reimage behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReimageModel {
    /// Expected *independent* reimages per server per month (resilience
    /// testing + maintenance).
    pub base_rate: f64,
    /// Expected tenant-wide redeployment events per month. Each reimages
    /// a large fraction of the tenant's servers in a short window.
    pub redeploys_per_month: f64,
    /// Range of the fraction of servers a redeploy reimages.
    pub redeploy_fraction: (f64, f64),
    /// Sigma of the month-over-month log-normal drift applied to
    /// `base_rate` (0 = perfectly stable rates).
    pub rate_drift_sigma: f64,
}

impl TenantReimageModel {
    /// A model with no reimages at all (useful in scheduling-only tests).
    pub fn quiescent() -> Self {
        TenantReimageModel {
            base_rate: 0.0,
            redeploys_per_month: 0.0,
            redeploy_fraction: (0.0, 0.0),
            rate_drift_sigma: 0.0,
        }
    }

    /// The expected total reimages per server per month, counting both
    /// independent reimages and redeployment sweeps.
    pub fn expected_monthly_rate(&self) -> f64 {
        let (flo, fhi) = self.redeploy_fraction;
        self.base_rate + self.redeploys_per_month * 0.5 * (flo + fhi)
    }

    /// Generates `months` months of reimage events for a tenant with
    /// `n_servers` servers.
    ///
    /// Returns the events sorted by time, plus the realized per-month base
    /// rates (after drift), which the Figure 6 group-change analysis uses.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n_servers: usize,
        months: usize,
    ) -> (Vec<ReimageEvent>, Vec<f64>) {
        let mut events = Vec::new();
        let mut monthly_rates = Vec::with_capacity(months);
        let mut rate = self.base_rate;
        for m in 0..months {
            let month_start = SimTime::ZERO + MONTH.mul_f64(m as f64);
            monthly_rates.push(rate);

            // Independent per-server reimages.
            for server in 0..n_servers {
                let n = dist::poisson(rng, rate);
                for _ in 0..n {
                    let offset = MONTH.mul_f64(dist::uniform(rng, 0.0, 1.0));
                    let kind = if dist::bernoulli(rng, 0.5) {
                        ReimageKind::Resilience
                    } else {
                        ReimageKind::Maintenance
                    };
                    events.push(ReimageEvent {
                        server,
                        time: month_start + offset,
                        kind,
                    });
                }
            }

            // Correlated redeployment sweeps.
            let sweeps = dist::poisson(rng, self.redeploys_per_month);
            for _ in 0..sweeps {
                let f = dist::uniform(rng, self.redeploy_fraction.0, self.redeploy_fraction.1);
                let count = ((n_servers as f64 * f).round() as usize).min(n_servers);
                if count == 0 {
                    continue;
                }
                let start = month_start + MONTH.mul_f64(dist::uniform(rng, 0.0, 1.0));
                let mut order: Vec<usize> = (0..n_servers).collect();
                dist::shuffle(rng, &mut order);
                for &server in order.iter().take(count) {
                    // The sweep rolls through the tenant within an hour.
                    let jitter = SimDuration::from_secs_f64(dist::uniform(rng, 0.0, 3600.0));
                    events.push(ReimageEvent {
                        server,
                        time: start + jitter,
                        kind: ReimageKind::Redeploy,
                    });
                }
            }

            // Drift the base rate for next month: a mean-reverting walk in
            // log space, anchored at the tenant's long-run rate. This is
            // what Figure 6 shows — rates "sometimes change substantially"
            // month to month, yet tenants "tend to rank consistently in
            // the same part of the spectrum".
            if self.rate_drift_sigma > 0.0 && self.base_rate > 0.0 {
                let log_dev = (rate / self.base_rate).ln();
                let next_dev = 0.7 * log_dev + dist::normal(rng, 0.0, self.rate_drift_sigma);
                rate = self.base_rate * next_dev.clamp(-2.3, 2.3).exp();
            }
        }
        events.sort_by_key(|e| e.time);
        (events, monthly_rates)
    }
}

/// Average reimages per month for each server of a tenant.
pub fn per_server_monthly_rates(
    events: &[ReimageEvent],
    n_servers: usize,
    months: usize,
) -> Vec<f64> {
    let mut counts = vec![0u64; n_servers];
    for e in events {
        if e.server < n_servers {
            counts[e.server] += 1;
        }
    }
    counts
        .into_iter()
        .map(|c| c as f64 / months.max(1) as f64)
        .collect()
}

/// Average reimages per server per month for the whole tenant.
pub fn tenant_monthly_rate(events: &[ReimageEvent], n_servers: usize, months: usize) -> f64 {
    if n_servers == 0 || months == 0 {
        return 0.0;
    }
    events.len() as f64 / (n_servers as f64 * months as f64)
}

/// Per-month reimage counts for a tenant (for the Figure 6 analysis).
pub fn monthly_counts(events: &[ReimageEvent], months: usize) -> Vec<u64> {
    let mut counts = vec![0u64; months];
    for e in events {
        let m = (e.time.as_millis() / MONTH.as_millis()) as usize;
        if m < months {
            counts[m] += 1;
        }
    }
    counts
}

/// Reimage frequency groups (Figure 6 / Algorithm 2's durability axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FrequencyGroup {
    /// Bottom third of tenants by reimage rate.
    Infrequent,
    /// Middle third.
    Intermediate,
    /// Top third.
    Frequent,
}

/// Splits tenants into three equal-count frequency groups by rate.
///
/// Returns one group per input tenant, preserving order. Ties broken by
/// index so the split is deterministic and the groups have sizes as equal
/// as possible (paper: "three frequency groups, each with the same number
/// of tenants").
pub fn frequency_groups(rates: &[f64]) -> Vec<FrequencyGroup> {
    let n = rates.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        rates[a]
            .partial_cmp(&rates[b])
            .expect("NaN rate")
            .then(a.cmp(&b))
    });
    let mut groups = vec![FrequencyGroup::Infrequent; n];
    for (rank, &idx) in order.iter().enumerate() {
        groups[idx] = if rank * 3 < n {
            FrequencyGroup::Infrequent
        } else if rank * 3 < 2 * n {
            FrequencyGroup::Intermediate
        } else {
            FrequencyGroup::Frequent
        };
    }
    groups
}

/// Counts month-to-month group changes for each tenant.
///
/// `monthly_tenant_rates[m][t]` is tenant `t`'s reimage rate in month `m`.
/// Returns, per tenant, how many of the `months - 1` transitions changed
/// its frequency group (Figure 6's x-axis).
pub fn group_changes(monthly_tenant_rates: &[Vec<f64>]) -> Vec<u32> {
    if monthly_tenant_rates.is_empty() {
        return Vec::new();
    }
    let n_tenants = monthly_tenant_rates[0].len();
    let mut changes = vec![0u32; n_tenants];
    let mut prev = frequency_groups(&monthly_tenant_rates[0]);
    for month in &monthly_tenant_rates[1..] {
        assert_eq!(month.len(), n_tenants, "ragged monthly rate matrix");
        let cur = frequency_groups(month);
        for t in 0..n_tenants {
            if cur[t] != prev[t] {
                changes[t] += 1;
            }
        }
        prev = cur;
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim::rng::stream_rng;

    fn model() -> TenantReimageModel {
        TenantReimageModel {
            base_rate: 0.3,
            redeploys_per_month: 0.2,
            redeploy_fraction: (0.4, 0.9),
            rate_drift_sigma: 0.3,
        }
    }

    #[test]
    fn events_are_sorted_and_in_range() {
        let mut rng = stream_rng(11, "reimage");
        let (events, rates) = model().generate(&mut rng, 50, 12);
        assert_eq!(rates.len(), 12);
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        let end = SimTime::ZERO + MONTH.mul_f64(12.0) + SimDuration::from_hours(1);
        assert!(events.iter().all(|e| e.server < 50 && e.time < end));
    }

    #[test]
    fn rate_matches_expectation() {
        let mut rng = stream_rng(13, "rate");
        let m = TenantReimageModel {
            base_rate: 0.5,
            redeploys_per_month: 0.0,
            redeploy_fraction: (0.0, 0.0),
            rate_drift_sigma: 0.0,
        };
        let (events, _) = m.generate(&mut rng, 200, 36);
        let rate = tenant_monthly_rate(&events, 200, 36);
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn redeploys_create_correlated_bursts() {
        let mut rng = stream_rng(17, "burst");
        let m = TenantReimageModel {
            base_rate: 0.0,
            redeploys_per_month: 1.0,
            redeploy_fraction: (0.8, 1.0),
            rate_drift_sigma: 0.0,
        };
        let (events, _) = m.generate(&mut rng, 100, 6);
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.kind == ReimageKind::Redeploy));
        // At least one window of one hour should contain >= 50 reimages
        // (a sweep touches >= 80 of 100 servers within an hour).
        let has_burst = events.iter().enumerate().any(|(i, e)| {
            let window_end = e.time + SimDuration::from_hours(1);
            events[i..]
                .iter()
                .take_while(|x| x.time <= window_end)
                .count()
                >= 50
        });
        assert!(has_burst, "no correlated burst found");
    }

    #[test]
    fn quiescent_model_is_silent() {
        let mut rng = stream_rng(19, "quiet");
        let (events, _) = TenantReimageModel::quiescent().generate(&mut rng, 100, 12);
        assert!(events.is_empty());
    }

    #[test]
    fn per_server_rates_sum_to_total() {
        let mut rng = stream_rng(23, "sum");
        let (events, _) = model().generate(&mut rng, 40, 10);
        let per_server = per_server_monthly_rates(&events, 40, 10);
        let total: f64 = per_server.iter().sum::<f64>() * 10.0;
        assert!((total - events.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn monthly_counts_partition_events() {
        let mut rng = stream_rng(29, "months");
        let (events, _) = model().generate(&mut rng, 40, 10);
        let counts = monthly_counts(&events, 10);
        assert_eq!(counts.iter().sum::<u64>() as usize, events.len());
    }

    #[test]
    fn frequency_groups_are_balanced() {
        let rates: Vec<f64> = (0..99).map(|i| i as f64 / 100.0).collect();
        let groups = frequency_groups(&rates);
        let count = |g: FrequencyGroup| groups.iter().filter(|&&x| x == g).count();
        assert_eq!(count(FrequencyGroup::Infrequent), 33);
        assert_eq!(count(FrequencyGroup::Intermediate), 33);
        assert_eq!(count(FrequencyGroup::Frequent), 33);
        // Groups respect rate ordering.
        assert_eq!(groups[0], FrequencyGroup::Infrequent);
        assert_eq!(groups[98], FrequencyGroup::Frequent);
    }

    #[test]
    fn group_changes_zero_for_stable_rates() {
        let month: Vec<f64> = vec![0.1, 0.5, 0.9];
        let matrix = vec![month.clone(); 36];
        assert_eq!(group_changes(&matrix), vec![0, 0, 0]);
    }

    #[test]
    fn group_changes_detected_when_ranks_flip() {
        let m1 = vec![0.1, 0.5, 0.9];
        let m2 = vec![0.9, 0.5, 0.1];
        let changes = group_changes(&[m1, m2]);
        assert_eq!(changes, vec![1, 0, 1]);
    }

    #[test]
    fn expected_rate_accounts_for_sweeps() {
        let m = model();
        let expect = 0.3 + 0.2 * 0.65;
        assert!((m.expected_monthly_rate() - expect).abs() < 1e-12);
    }
}
