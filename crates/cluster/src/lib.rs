//! The datacenter model: servers, primary tenants, environments, racks,
//! resource reserves, and utilization playback.
//!
//! This crate is the substrate both the scheduler ([`harvest-sched`]) and
//! the file system ([`harvest-dfs`]) run against. It instantiates a
//! [`Datacenter`] from a [`harvest_trace::DatacenterProfile`] — concrete
//! servers grouped into primary tenants, tenants into environments, and
//! servers into racks — and answers "what is this server's primary
//! utilization at time T?" through a [`playback::UtilizationView`].
//!
//! Resource semantics follow the paper's testbed (§6.1): every server has
//! 12 cores and 32 GB of memory, of which 4 cores and 10 GB are reserved
//! for the primary tenant to burst into. Secondary (harvested) work may
//! only use what is left after the primary's rounded-up usage and the
//! reserve (§5.3), and storage accesses are denied outright when the
//! primary's CPU exceeds the reserve threshold (§5.4, the "66%" knee in
//! Figure 16).
//!
//! [`harvest-sched`]: ../harvest_sched/index.html
//! [`harvest-dfs`]: ../harvest_dfs/index.html

pub mod datacenter;
pub mod playback;
pub mod reserve;
pub mod resources;
pub mod server;

pub use datacenter::Datacenter;
pub use playback::UtilizationView;
pub use resources::Resources;
pub use server::{RackId, Server, ServerId, Tenant, TenantId};
