//! Core/memory resource vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A bundle of schedulable resources: CPU cores and memory.
///
/// YARN arbitrates exactly these two dimensions ("currently, cores and
/// memory", §5.1), so the model does too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Resources {
    /// CPU cores.
    pub cores: u32,
    /// Memory in MB.
    pub memory_mb: u32,
}

impl Resources {
    /// No resources.
    pub const ZERO: Resources = Resources {
        cores: 0,
        memory_mb: 0,
    };

    /// Creates a resource vector.
    pub const fn new(cores: u32, memory_mb: u32) -> Self {
        Resources { cores, memory_mb }
    }

    /// Whether a request of size `other` fits inside `self`.
    pub fn fits(&self, other: Resources) -> bool {
        self.cores >= other.cores && self.memory_mb >= other.memory_mb
    }

    /// Component-wise saturating subtraction.
    pub fn saturating_sub(self, other: Resources) -> Resources {
        Resources {
            cores: self.cores.saturating_sub(other.cores),
            memory_mb: self.memory_mb.saturating_sub(other.memory_mb),
        }
    }

    /// Component-wise minimum.
    pub fn min(self, other: Resources) -> Resources {
        Resources {
            cores: self.cores.min(other.cores),
            memory_mb: self.memory_mb.min(other.memory_mb),
        }
    }

    /// True if both components are zero.
    pub fn is_zero(&self) -> bool {
        self.cores == 0 && self.memory_mb == 0
    }

    /// The number of containers of size `unit` that fit in `self`
    /// (limited by the scarcer dimension).
    pub fn container_count(&self, unit: Resources) -> u32 {
        let by_cores = self.cores.checked_div(unit.cores).unwrap_or(u32::MAX);
        let by_mem = self
            .memory_mb
            .checked_div(unit.memory_mb)
            .unwrap_or(u32::MAX);
        by_cores.min(by_mem)
    }
}

impl Add for Resources {
    type Output = Resources;

    fn add(self, rhs: Resources) -> Resources {
        Resources {
            cores: self.cores + rhs.cores,
            memory_mb: self.memory_mb + rhs.memory_mb,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;

    fn sub(self, rhs: Resources) -> Resources {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c/{}MB", self.cores, self.memory_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_requires_both_dimensions() {
        let cap = Resources::new(8, 16_000);
        assert!(cap.fits(Resources::new(8, 16_000)));
        assert!(cap.fits(Resources::ZERO));
        assert!(!cap.fits(Resources::new(9, 1)));
        assert!(!cap.fits(Resources::new(1, 16_001)));
    }

    #[test]
    fn saturating_subtraction() {
        let a = Resources::new(4, 1_000);
        let b = Resources::new(6, 500);
        assert_eq!(a - b, Resources::new(0, 500));
    }

    #[test]
    fn container_count_limited_by_scarcer_dimension() {
        let cap = Resources::new(8, 18_000);
        let unit = Resources::new(1, 2_048);
        assert_eq!(cap.container_count(unit), 8);
        let mem_tight = Resources::new(8, 4_096);
        assert_eq!(mem_tight.container_count(unit), 2);
        assert_eq!(Resources::ZERO.container_count(unit), 0);
    }

    #[test]
    fn arithmetic_round_trip() {
        let mut r = Resources::new(2, 4_096);
        r += Resources::new(1, 2_048);
        assert_eq!(r, Resources::new(3, 6_144));
        r -= Resources::new(1, 2_048);
        assert_eq!(r, Resources::new(2, 4_096));
    }

    #[test]
    fn display() {
        assert_eq!(Resources::new(4, 10_240).to_string(), "4c/10240MB");
    }
}
