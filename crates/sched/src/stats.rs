//! Scheduling-simulation outputs.

use harvest_disk::DiskStats;
use harvest_net::FabricStats;
use harvest_sim::metrics::StreamingStats;
use harvest_sim::{SimDuration, SimTime};

/// The outcome of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Job (query) name.
    pub name: String,
    /// Index of the query in the workload suite.
    pub query: usize,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time (`None` if the simulation ended first).
    pub finished: Option<SimTime>,
    /// Submission-to-completion time.
    pub execution_time: Option<SimDuration>,
    /// Tasks of this job killed for primary bursts.
    pub kills: u64,
}

/// One per-server load sample (for the testbed latency experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSample {
    /// Sample time.
    pub time: SimTime,
    /// Primary CPU utilization at the sample.
    pub primary_util: f64,
    /// Cores allocated to secondary containers at the sample.
    pub secondary_cores: u32,
}

/// Aggregate results of one scheduling simulation.
///
/// `PartialEq` compares everything, floats by value — the tick-sweep
/// oracle tests assert [`crate::TickSweep::Incremental`] and
/// [`crate::TickSweep::Full`] runs are indistinguishable, stats
/// included.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobResult>,
    /// Total task kills.
    pub total_kills: u64,
    /// Total tasks started (including re-runs of killed tasks).
    pub tasks_started: u64,
    /// Fleet-average *total* (primary + secondary) CPU utilization over
    /// the run (the "33% → 54%" number of §6.3).
    pub avg_total_utilization: f64,
    /// Fleet-average primary-only CPU utilization over the run.
    pub avg_primary_utilization: f64,
    /// Per-server load samples (only when recording was enabled).
    pub server_load: Vec<Vec<LoadSample>>,
    /// Task kills attributed to each server.
    pub kills_per_server: Vec<u64>,
    /// Final fabric counters (re-shares, stale events dropped, peak
    /// queue length) when shuffles travelled a network model.
    pub fabric: Option<FabricStats>,
    /// Final disk-pool counters when shuffles paid for disk I/O.
    pub disks: Option<DiskStats>,
    /// Containers killed by injected faults (crashes and rack power
    /// loss) — disjoint from `total_kills`, which stays reserve-only.
    pub fault_kills: u64,
    /// Fault-interrupted stages re-dispatched after a backoff delay.
    pub fault_retries: u64,
    /// Jobs given up on after a stage exhausted its fault retry budget.
    pub jobs_abandoned: u64,
}

impl SimStats {
    /// Mean execution time over completed jobs, in seconds.
    pub fn mean_execution_secs(&self) -> f64 {
        let mut stats = StreamingStats::new();
        for j in &self.jobs {
            if let Some(d) = j.execution_time {
                stats.push(d.as_secs_f64());
            }
        }
        stats.mean()
    }

    /// Number of jobs that completed.
    pub fn completed_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.finished.is_some()).count()
    }

    /// Fraction of submitted jobs that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.jobs.is_empty() {
            return 1.0;
        }
        self.completed_jobs() as f64 / self.jobs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ignores_unfinished() {
        let stats = SimStats {
            jobs: vec![
                JobResult {
                    name: "a".into(),
                    query: 0,
                    submitted: SimTime::ZERO,
                    finished: Some(SimTime::from_secs(100)),
                    execution_time: Some(SimDuration::from_secs(100)),
                    kills: 0,
                },
                JobResult {
                    name: "b".into(),
                    query: 1,
                    submitted: SimTime::ZERO,
                    finished: None,
                    execution_time: None,
                    kills: 2,
                },
            ],
            total_kills: 2,
            tasks_started: 10,
            avg_total_utilization: 0.5,
            avg_primary_utilization: 0.3,
            server_load: Vec::new(),
            kills_per_server: Vec::new(),
            fabric: None,
            disks: None,
            fault_kills: 0,
            fault_retries: 0,
            jobs_abandoned: 0,
        };
        assert_eq!(stats.mean_execution_secs(), 100.0);
        assert_eq!(stats.completed_jobs(), 1);
        assert_eq!(stats.completion_rate(), 0.5);
    }
}
