//! Utilization playback: "what is this server's primary CPU utilization
//! at time T?"
//!
//! A [`UtilizationView`] holds the (optionally scaled) tenant traces and
//! answers per-server lookups. Servers of the same tenant share the
//! tenant's "average server" trace plus a small deterministic per-server
//! jitter, reflecting §3.2's observation that load "is not always evenly
//! balanced across all servers of a primary tenant".
//!
//! # Cost model
//!
//! The view is built once and queried millions of times, so queries are
//! index arithmetic, never scans:
//!
//! * [`UtilizationView::fleet_util`] is one array lookup into a
//!   server-weighted fleet [`TimeSeries`] precomputed at build time.
//!   The accumulation is per *tenant* (each tenant's sample times its
//!   server count), so the precompute is O(samples × tenants) — a few
//!   milliseconds even for an unscaled datacenter — instead of
//!   O(samples × servers), and a tick pays one lookup instead of an
//!   O(servers) sweep. [`UtilizationView::fleet_util_scan`] keeps the
//!   per-call recomputation of the same quantity as the
//!   bitwise-identical reference (same tenant-order accumulation); it
//!   differs from the naive per-server sum only by float-rounding ulps
//!   (well inside the 1e-9 the tests allow).
//! * [`UtilizationView::slot_of`], [`UtilizationView::tenant_sample_changed`],
//!   and [`UtilizationView::server_sample_changed`] expose the sampling
//!   grid so change-driven callers (the scheduler's incremental tick
//!   sweep) can skip tenants and servers whose sample did not move
//!   across a tick boundary, instead of re-reading the whole fleet.
//!
//! Everything stays deterministic: jitter is a hash of (seed, server,
//! slot), and "changed" compares samples bitwise, so a change-driven
//! replay touches exactly the servers whose playback value moved.

use harvest_sim::rng::splitmix64;
use harvest_sim::SimTime;
use harvest_trace::scaling::{scale, ScalingKind};
use harvest_trace::timeseries::TimeSeries;
use harvest_trace::SAMPLE_INTERVAL;

use crate::datacenter::Datacenter;
use crate::server::{ServerId, TenantId};

/// Default per-server jitter amplitude around the tenant trace.
pub const DEFAULT_JITTER: f64 = 0.01;

/// A scaled, queryable view of every tenant's utilization.
#[derive(Debug, Clone)]
pub struct UtilizationView {
    traces: Vec<TimeSeries>,
    server_tenant: Vec<u32>,
    /// Servers per tenant — the fleet-average weights.
    tenant_servers: Vec<f64>,
    jitter_amp: f64,
    jitter_seed: u64,
    /// Server-weighted fleet utilization, one sample per trace slot,
    /// precomputed at build time (`None` when the tenant traces do not
    /// share a sampling grid and the scan fallback must be used).
    fleet: Option<TimeSeries>,
}

impl UtilizationView {
    /// A view of the unscaled traces.
    pub fn unscaled(dc: &Datacenter) -> Self {
        Self::build(dc, None, DEFAULT_JITTER, 0)
    }

    /// A view with the given scaling applied to every tenant trace.
    pub fn scaled(dc: &Datacenter, kind: ScalingKind, param: f64) -> Self {
        Self::build(dc, Some((kind, param)), DEFAULT_JITTER, 0)
    }

    /// Full-control constructor.
    pub fn build(
        dc: &Datacenter,
        scaling: Option<(ScalingKind, f64)>,
        jitter_amp: f64,
        jitter_seed: u64,
    ) -> Self {
        let traces: Vec<TimeSeries> = dc
            .tenants
            .iter()
            .map(|t| match scaling {
                Some((kind, param)) => scale(&t.trace, kind, param),
                None => t.trace.clone(),
            })
            .collect();
        let server_tenant: Vec<u32> = dc.servers.iter().map(|s| s.tenant.0).collect();
        let mut tenant_servers = vec![0.0f64; traces.len()];
        for &tid in &server_tenant {
            tenant_servers[tid as usize] += 1.0;
        }
        let fleet = precompute_fleet(&traces, &tenant_servers, server_tenant.len());
        UtilizationView {
            traces,
            server_tenant,
            tenant_servers,
            jitter_amp,
            jitter_seed,
            fleet,
        }
    }

    /// The tenant's (average-server) utilization at `t`.
    pub fn tenant_util(&self, tenant: TenantId, t: SimTime) -> f64 {
        self.traces[tenant.0 as usize].at(t)
    }

    /// The scaled trace of a tenant.
    pub fn tenant_trace(&self, tenant: TenantId) -> &TimeSeries {
        &self.traces[tenant.0 as usize]
    }

    /// The server's utilization at `t`: its tenant's trace plus the
    /// server's deterministic jitter, clamped to `[0, 1]`.
    pub fn server_util(&self, server: ServerId, t: SimTime) -> f64 {
        let tenant = self.server_tenant[server.0 as usize];
        let base = self.traces[tenant as usize].at(t);
        (base + self.jitter_at_slot(server, self.slot_of(t))).clamp(0.0, 1.0)
    }

    /// The sampling-grid slot covering instant `t` (the grid is the
    /// trace sampling interval; the scheduler's tick sits on the same
    /// grid, so every instant within one tick maps to one slot).
    pub fn slot_of(&self, t: SimTime) -> u64 {
        t.as_millis() / SAMPLE_INTERVAL.as_millis()
    }

    /// Whether the tenant's sample at `slot` differs bitwise from its
    /// sample at the previous slot (slot 0 always counts as changed).
    pub fn tenant_sample_changed(&self, tenant: TenantId, slot: u64) -> bool {
        let tr = &self.traces[tenant.0 as usize];
        if tr.interval() == SAMPLE_INTERVAL {
            // Generated datacenters always sit on the sampling grid.
            return tr.sample_changed(slot);
        }
        // Off-grid trace: map the grid slots to instants instead.
        if slot == 0 {
            return true;
        }
        let ms = SAMPLE_INTERVAL.as_millis();
        tr.at(SimTime::from_millis(slot * ms)).to_bits()
            != tr.at(SimTime::from_millis((slot - 1) * ms)).to_bits()
    }

    /// Whether the server's playback value at `slot` can differ from its
    /// value at the previous slot: the tenant's sample moved, or the
    /// server's jitter re-rolled to a different offset. Conservative
    /// (clamping can still map two different raw values to the same
    /// utilization) but never reports "unchanged" for a moved value —
    /// change-driven callers may safely skip unchanged servers.
    pub fn server_sample_changed(&self, server: ServerId, slot: u64) -> bool {
        if slot == 0 {
            return true;
        }
        if self.jitter_amp != 0.0
            && self.jitter_at_slot(server, slot) != self.jitter_at_slot(server, slot - 1)
        {
            return true;
        }
        self.tenant_sample_changed(TenantId(self.server_tenant[server.0 as usize]), slot)
    }

    fn jitter_at_slot(&self, server: ServerId, slot: u64) -> f64 {
        if self.jitter_amp == 0.0 {
            return 0.0;
        }
        let h = splitmix64(
            self.jitter_seed
                ^ splitmix64(server.0 as u64)
                ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (unit * 2.0 - 1.0) * self.jitter_amp
    }

    /// Fleet-average utilization at `t` (per-server, without jitter —
    /// jitter is zero-mean so it would only add noise). One array
    /// lookup into the precomputed fleet series; falls back to
    /// [`UtilizationView::fleet_util_scan`] only if the tenant traces
    /// do not share a sampling grid.
    pub fn fleet_util(&self, t: SimTime) -> f64 {
        match &self.fleet {
            Some(fleet) => fleet.at(t),
            None => self.fleet_util_scan(t),
        }
    }

    /// Fleet-average utilization at `t` recomputed on the fly: the
    /// reference path, bitwise identical to
    /// [`UtilizationView::fleet_util`] (the precompute runs exactly
    /// this tenant-order accumulation per slot). Kept for the
    /// full-sweep reference tick mode and the oracle tests that pin
    /// the two paths together.
    pub fn fleet_util_scan(&self, t: SimTime) -> f64 {
        if self.server_tenant.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .traces
            .iter()
            .zip(&self.tenant_servers)
            .map(|(tr, &weight)| tr.at(t) * weight)
            .sum();
        sum / self.server_tenant.len() as f64
    }

    /// Fleet-average of the tenants' mean utilization, server-weighted
    /// (the x-axis of Figures 13 and 16).
    pub fn mean_fleet_util(&self) -> f64 {
        if self.server_tenant.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .server_tenant
            .iter()
            .map(|&tid| self.traces[tid as usize].mean())
            .sum();
        sum / self.server_tenant.len() as f64
    }

    /// Number of tenants in the view.
    pub fn n_tenants(&self) -> usize {
        self.traces.len()
    }

    /// Number of servers in the view.
    pub fn n_servers(&self) -> usize {
        self.server_tenant.len()
    }
}

/// Precomputes the server-weighted fleet series: for every trace slot,
/// the same tenant-order weighted accumulation
/// [`UtilizationView::fleet_util_scan`] performs at query time — the
/// identical iteration order makes the lookup bitwise equal to the
/// scan, and O(slots × tenants) keeps the build cost to milliseconds
/// even unscaled. Requires every trace to share one interval and
/// length (always true for generated datacenters, whose tenants all
/// carry month-long traces on the sampling grid).
fn precompute_fleet(
    traces: &[TimeSeries],
    tenant_servers: &[f64],
    n_servers: usize,
) -> Option<TimeSeries> {
    let first = traces.first()?;
    if n_servers == 0 {
        return None;
    }
    let uniform = traces
        .iter()
        .all(|tr| tr.len() == first.len() && tr.interval() == first.interval());
    if !uniform {
        return None;
    }
    let n = n_servers as f64;
    let values: Vec<f64> = (0..first.len() as u64)
        .map(|slot| {
            let sum: f64 = traces
                .iter()
                .zip(tenant_servers)
                .map(|(tr, &weight)| tr.at_slot(slot) * weight)
                .sum();
            sum / n
        })
        .collect();
    Some(TimeSeries::new(first.interval(), values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_trace::datacenter::DatacenterProfile;

    fn dc() -> Datacenter {
        Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 7)
    }

    #[test]
    fn server_util_tracks_tenant_trace() {
        let dc = dc();
        let view = UtilizationView::build(&dc, None, 0.0, 0);
        let t = SimTime::from_secs(3_600);
        for s in &dc.servers {
            let su = view.server_util(s.id, t);
            let tu = view.tenant_util(s.tenant, t);
            assert_eq!(su, tu, "no jitter => identical");
        }
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let dc = dc();
        let view = UtilizationView::unscaled(&dc);
        let t = SimTime::from_secs(7_200);
        for s in &dc.servers {
            let su = view.server_util(s.id, t);
            let tu = view.tenant_util(s.tenant, t);
            assert!((su - tu).abs() <= DEFAULT_JITTER + 1e-12);
            assert_eq!(su, view.server_util(s.id, t), "jitter not deterministic");
        }
    }

    #[test]
    fn scaling_changes_levels() {
        let dc = dc();
        let base = UtilizationView::unscaled(&dc);
        let doubled = UtilizationView::scaled(&dc, ScalingKind::Linear, 2.0);
        assert!(doubled.mean_fleet_util() > base.mean_fleet_util());
        let t = SimTime::from_secs(1_000);
        assert!(doubled.fleet_util(t) >= base.fleet_util(t) - 1e-9);
    }

    #[test]
    fn fleet_util_is_average_of_servers() {
        let dc = dc();
        let view = UtilizationView::build(&dc, None, 0.0, 0);
        let t = SimTime::from_secs(60);
        let manual: f64 = dc
            .servers
            .iter()
            .map(|s| view.server_util(s.id, t))
            .sum::<f64>()
            / dc.n_servers() as f64;
        assert!((view.fleet_util(t) - manual).abs() < 1e-9);
    }

    /// The precomputed fleet series is *bitwise* identical to the
    /// per-call fleet sweep it replaced, at any instant (including far
    /// past the trace span, where lookups wrap).
    #[test]
    fn fleet_lookup_matches_scan_bitwise() {
        let dc = dc();
        for view in [
            UtilizationView::unscaled(&dc),
            UtilizationView::scaled(&dc, ScalingKind::Linear, 1.7),
        ] {
            for &secs in &[0u64, 59, 120, 3_601, 86_400, 40 * 86_400] {
                let t = SimTime::from_secs(secs);
                assert_eq!(
                    view.fleet_util(t).to_bits(),
                    view.fleet_util_scan(t).to_bits(),
                    "fleet lookup diverged from the scan at {secs}s"
                );
            }
        }
    }

    #[test]
    fn slots_and_change_queries_track_the_grid() {
        let dc = dc();
        let view = UtilizationView::build(&dc, None, 0.0, 0);
        let tick = harvest_trace::SAMPLE_INTERVAL;
        // Every instant inside one tick maps to the tick's slot.
        assert_eq!(view.slot_of(SimTime::ZERO), 0);
        assert_eq!(view.slot_of(SimTime::from_millis(tick.as_millis() - 1)), 0);
        assert_eq!(view.slot_of(SimTime::from_millis(tick.as_millis())), 1);
        // Slot 0 always reads as changed; later slots change exactly
        // when the underlying sample moves bitwise.
        let tid = TenantId(0);
        assert!(view.tenant_sample_changed(tid, 0));
        let tr = view.tenant_trace(tid);
        for slot in 1..200u64 {
            let expect = tr.at_slot(slot).to_bits() != tr.at_slot(slot - 1).to_bits();
            assert_eq!(view.tenant_sample_changed(tid, slot), expect, "slot {slot}");
        }
    }

    #[test]
    fn server_change_is_conservative() {
        let dc = dc();
        // With jitter off, a server changes exactly with its tenant.
        let flat = UtilizationView::build(&dc, None, 0.0, 0);
        let s = dc.servers[0].id;
        let tid = TenantId(flat.server_tenant[s.0 as usize]);
        for slot in 1..100u64 {
            assert_eq!(
                flat.server_sample_changed(s, slot),
                flat.tenant_sample_changed(tid, slot)
            );
        }
        // With jitter on, "changed" must never be false when the
        // playback value actually moved across the boundary.
        let view = UtilizationView::unscaled(&dc);
        let ms = harvest_trace::SAMPLE_INTERVAL.as_millis();
        for slot in 1..100u64 {
            let now = view.server_util(s, SimTime::from_millis(slot * ms));
            let prev = view.server_util(s, SimTime::from_millis((slot - 1) * ms));
            if now.to_bits() != prev.to_bits() {
                assert!(view.server_sample_changed(s, slot), "missed move at {slot}");
            }
        }
    }

    #[test]
    fn utils_stay_in_unit_interval() {
        let dc = dc();
        let view = UtilizationView::scaled(&dc, ScalingKind::Linear, 5.0);
        for hour in 0..48 {
            let t = SimTime::from_secs(hour * 3_600);
            for s in &dc.servers {
                let u = view.server_util(s.id, t);
                assert!((0.0..=1.0).contains(&u), "util {u} out of range");
            }
        }
    }
}
