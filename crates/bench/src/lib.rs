//! Criterion bench harness (see benches/).
