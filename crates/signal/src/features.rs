//! Feature extraction from utilization traces.
//!
//! The clustering service tags each class with "the utilization pattern,
//! its average utilization, and its peak utilization" (§4.1). The feature
//! vector used for K-Means captures exactly the quantities the scheduler's
//! headroom formulas consume — average, peak, current variability — plus
//! the periodicity strength so diurnal tenants with different phases or
//! amplitudes separate cleanly.

use crate::spectrum::periodicity_strength;

/// Summary features of one tenant's utilization trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceFeatures {
    /// Mean utilization over the window, in `[0, 1]`.
    pub mean: f64,
    /// Peak utilization over the window, in `[0, 1]`.
    pub peak: f64,
    /// Standard deviation of utilization.
    pub std_dev: f64,
    /// Fraction of non-DC spectral power at the diurnal frequency.
    pub diurnal_strength: f64,
}

impl TraceFeatures {
    /// Extracts features from a trace sampled with `period_samples` as the
    /// candidate diurnal period (720 for two-minute sampling).
    pub fn extract(values: &[f64], period_samples: f64) -> Self {
        if values.is_empty() {
            return TraceFeatures {
                mean: 0.0,
                peak: 0.0,
                std_dev: 0.0,
                diurnal_strength: 0.0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let peak = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        TraceFeatures {
            mean,
            peak,
            std_dev: var.sqrt(),
            diurnal_strength: periodicity_strength(values, period_samples),
        }
    }

    /// The feature vector used by K-Means.
    pub fn to_vec(self) -> Vec<f64> {
        vec![self.mean, self.peak, self.std_dev, self.diurnal_strength]
    }
}

/// Z-score normalizes each dimension across a set of feature vectors.
///
/// Dimensions with zero variance are left centered at zero. Returns the
/// normalized vectors; the input order is preserved.
pub fn normalize_features(features: &[Vec<f64>]) -> Vec<Vec<f64>> {
    if features.is_empty() {
        return Vec::new();
    }
    let dim = features[0].len();
    let n = features.len() as f64;
    let mut means = vec![0.0; dim];
    for f in features {
        for (m, &x) in means.iter_mut().zip(f) {
            *m += x;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut stds = vec![0.0; dim];
    for f in features {
        for ((s, &x), &m) in stds.iter_mut().zip(f).zip(&means) {
            *s += (x - m) * (x - m);
        }
    }
    for s in &mut stds {
        *s = (*s / n).sqrt();
    }
    features
        .iter()
        .map(|f| {
            f.iter()
                .zip(&means)
                .zip(&stds)
                .map(|((&x, &m), &s)| if s > 1e-12 { (x - m) / s } else { 0.0 })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_basic_moments() {
        let values = vec![0.2, 0.4, 0.6, 0.8];
        let f = TraceFeatures::extract(&values, 720.0);
        assert!((f.mean - 0.5).abs() < 1e-12);
        assert_eq!(f.peak, 0.8);
        assert!(f.std_dev > 0.0);
    }

    #[test]
    fn empty_trace_is_zeroed() {
        let f = TraceFeatures::extract(&[], 720.0);
        assert_eq!(f.to_vec(), vec![0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn diurnal_feature_separates_patterns() {
        let spd = 720;
        let diurnal: Vec<f64> = (0..30 * spd)
            .map(|i| 0.5 + 0.3 * (2.0 * std::f64::consts::PI * i as f64 / spd as f64).sin())
            .collect();
        let flat = vec![0.5; 30 * spd];
        let fd = TraceFeatures::extract(&diurnal, spd as f64);
        let ff = TraceFeatures::extract(&flat, spd as f64);
        assert!(fd.diurnal_strength > 0.5);
        assert!(ff.diurnal_strength < 0.05);
    }

    #[test]
    fn normalization_zero_mean_unit_var() {
        let raw = vec![
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ];
        let norm = normalize_features(&raw);
        for d in 0..2 {
            let mean: f64 = norm.iter().map(|f| f[d]).sum::<f64>() / norm.len() as f64;
            let var: f64 = norm.iter().map(|f| f[d] * f[d]).sum::<f64>() / norm.len() as f64;
            assert!(mean.abs() < 1e-12, "dim {d} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "dim {d} var {var}");
        }
    }

    #[test]
    fn normalization_constant_dimension() {
        let raw = vec![vec![5.0, 1.0], vec![5.0, 2.0]];
        let norm = normalize_features(&raw);
        assert_eq!(norm[0][0], 0.0);
        assert_eq!(norm[1][0], 0.0);
        assert_ne!(norm[0][1], norm[1][1]);
    }

    #[test]
    fn normalization_empty_input() {
        assert!(normalize_features(&[]).is_empty());
    }
}
