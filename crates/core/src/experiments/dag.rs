//! Figure 7: the TPC-DS query 19 DAG and its concurrency estimate.

use harvest_jobs::estimate::max_concurrent_tasks;
use harvest_jobs::tpcds::query_19;

use crate::checkpoint::sweep_plain;
use crate::report::Table;
use crate::scale::Scale;

/// Figure 7: per-level concurrency of query 19 and the BFS estimate.
pub fn fig7(scale: &Scale) -> String {
    let q = query_19();
    let levels = q.levels();
    let max_level = levels.iter().copied().max().unwrap_or(0);

    let mut table = Table::new(
        "Figure 7: TPC-DS query 19 execution DAG",
        &["level", "vertices", "concurrent tasks"],
    );
    // Each level's row is an independent scan of the stage list.
    let level_ids: Vec<usize> = (0..=max_level).collect();
    let swept = sweep_plain(
        scale,
        "fig7",
        &level_ids,
        |&level| format!("lv{level}"),
        |&level, _cancel| {
            let members: Vec<String> = q
                .stages
                .iter()
                .enumerate()
                .filter(|(i, _)| levels[*i] == level)
                .map(|(_, s)| format!("{} ({})", s.name, s.tasks))
                .collect();
            let tasks: u32 = q
                .stages
                .iter()
                .enumerate()
                .filter(|(i, _)| levels[*i] == level)
                .map(|(_, s)| s.tasks)
                .sum();
            [level.to_string(), members.join(", "), tasks.to_string()]
        },
    );
    for (level, row) in level_ids.iter().zip(&swept.results) {
        match row {
            Some(row) => table.row(row),
            None => table.row(&[
                level.to_string(),
                "(quarantined)".to_string(),
                "-".to_string(),
            ]),
        };
    }
    if let Some(note) = swept.note {
        table.note(note);
    }
    let estimate = max_concurrent_tasks(&q);
    table.note(format!(
        "BFS max-concurrency estimate: {estimate} containers (paper: 469)"
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_estimate_matches_paper() {
        let out = fig7(&Scale::quick());
        assert!(out.contains("estimate: 469 containers"));
        assert!(out.contains("Mapper 2 (469)"));
    }
}
