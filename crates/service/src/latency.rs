//! Analytic tail-latency model for a co-located search server.
//!
//! A server has 12 cores; the primary's offered load needs
//! `util × 12` of them, and harvested containers hold `secondary`
//! cores. When the primary can no longer spread over all cores, queueing
//! delay grows with the effective utilization `ρ = demand / available`
//! in the M/M/c spirit: `p99 ≈ base × (1 + κ · ρ / (1 - ρ))`, saturating
//! at a timeout cap as `ρ → 1`.
//!
//! Calibration targets the paper's Figure 10: the no-harvesting testbed
//! at ~33% average CPU shows p99 between 369 and 406 ms; YARN-Stock
//! (oblivious, up to 12 harvested cores) blows past 1 s; YARN-PT stays
//! close to baseline; YARN-H nearly matches it (max 44 ms apart).

use harvest_cluster::reserve::SERVER_CAPACITY;
use harvest_disk::DiskConfig;
use harvest_signal::classify::UtilizationPattern;
use harvest_sim::rng::splitmix64;

/// Gain of the disk-interference term: how fast the disk's contribution
/// to p99 grows with its effective utilization. Higher than the CPU
/// `kappa` because a query's index read cannot be parallelized away —
/// one slow seek is one slow query.
const DISK_KAPPA: f64 = 4.0;

/// Fraction of the disk time ceded to secondary streams that a primary
/// operation actually waits behind: the primary's reservation has
/// priority, but an op cannot preempt a secondary transfer already in
/// service, so on average it waits out half of one.
const RESIDUAL_INTERFERENCE: f64 = 0.5;

/// The analytic p99 model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Service-time floor in ms (an uncongested query).
    pub base_ms: f64,
    /// Congestion gain: how fast p99 grows with ρ/(1-ρ).
    pub kappa: f64,
    /// Timeout cap in ms (saturated server).
    pub cap_ms: f64,
    /// Amplitude of per-sample noise in ms (measurement jitter).
    pub noise_ms: f64,
}

impl LatencyModel {
    /// Calibration reproducing Figure 10's bands: at 33% utilization and
    /// no harvesting, p99 ≈ 370–405 ms.
    pub fn paper_calibrated() -> Self {
        LatencyModel {
            base_ms: 300.0,
            kappa: 0.60,
            cap_ms: 3_000.0,
            noise_ms: 12.0,
        }
    }

    /// Deterministic p99 (no noise) for a primary at `util` with
    /// `secondary_cores` harvested away.
    pub fn p99_ms(&self, util: f64, secondary_cores: u32) -> f64 {
        let total = SERVER_CAPACITY.cores as f64;
        let available = (total - secondary_cores as f64).max(0.0);
        let demand = util.clamp(0.0, 1.0) * total;
        if available <= demand || available == 0.0 {
            return self.cap_ms;
        }
        let rho = demand / available;
        let p99 = self.base_ms * (1.0 + self.kappa * rho / (1.0 - rho));
        p99.min(self.cap_ms)
    }

    /// p99 including a disk-interference term (§6): each query pays an
    /// index read whose queueing grows with the disk's effective
    /// utilization as seen by a *primary* operation.
    ///
    /// The primary's bandwidth reservation is never taken by
    /// secondaries (the disk model grants the primary's demand first),
    /// so the interference is op-granular, not bandwidth-granular: a
    /// query's read cannot preempt a secondary transfer already in
    /// service, and on average it finds one mid-flight half the time
    /// the disk is doing secondary work. Its effective utilization is
    /// therefore its own demand plus [`RESIDUAL_INTERFERENCE`] of the
    /// time fraction the throttle cedes to active secondary streams —
    /// bounded away from saturation, so the term degrades smoothly
    /// instead of pinning at the cap.
    ///
    /// Under the paper's isolation manager a hot primary pushes the
    /// secondaries to their floor, so the ceded fraction collapses and
    /// the disk term falls back toward the primary-only wait — the
    /// protection Figure 10 credits to the manager. Without it
    /// (fair-share), active spill streams keep inflating every query's
    /// disk wait as the primary grows busier.
    pub fn p99_disk_ms(
        &self,
        util: f64,
        secondary_cores: u32,
        disk: &DiskConfig,
        pattern: UtilizationPattern,
        secondary_streams: u32,
    ) -> f64 {
        let cpu = self.p99_ms(util, secondary_cores);
        if cpu >= self.cap_ms {
            return self.cap_ms;
        }
        let primary = disk.primary.demand_fraction(pattern, util);
        // Secondary spill/fetch streams saturate whatever share the
        // throttle leaves them; none active, none used.
        let ceded = if secondary_streams > 0 {
            disk.throttle.secondary_fraction(primary)
        } else {
            0.0
        };
        let rho = (primary + ceded * RESIDUAL_INTERFERENCE).min(0.95);
        let disk_ms = disk.seek_ms * (1.0 + DISK_KAPPA * rho / (1.0 - rho));
        (cpu + disk_ms).min(self.cap_ms)
    }

    /// p99 with deterministic pseudo-noise derived from `(seed, server,
    /// minute)` — reproducible "measurement jitter" for the figures.
    pub fn p99_noisy_ms(&self, util: f64, secondary_cores: u32, seed: u64, tag: u64) -> f64 {
        let p = self.p99_ms(util, secondary_cores);
        if p >= self.cap_ms {
            return p;
        }
        let h = splitmix64(seed ^ splitmix64(tag));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        (p + (unit * 2.0 - 1.0) * self.noise_ms).max(self.base_ms * 0.5)
    }

    /// Fleet statistic for Figures 10/12: the average over servers of
    /// per-server p99 at one minute. `loads` gives each server's
    /// `(primary_util, secondary_cores)`.
    pub fn fleet_p99_ms(&self, loads: &[(f64, u32)], seed: u64, minute: u64) -> f64 {
        if loads.is_empty() {
            return 0.0;
        }
        let sum: f64 = loads
            .iter()
            .enumerate()
            .map(|(s, &(util, cores))| {
                self.p99_noisy_ms(util, cores, seed, minute << 20 | s as u64)
            })
            .sum();
        sum / loads.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_figure_10_band() {
        let m = LatencyModel::paper_calibrated();
        // No harvesting, 33% utilization: 369-406 ms in the paper.
        let p = m.p99_ms(0.33, 0);
        assert!((360.0..=410.0).contains(&p), "p99 {p} outside band");
    }

    #[test]
    fn harvesting_all_cores_saturates() {
        let m = LatencyModel::paper_calibrated();
        assert_eq!(m.p99_ms(0.33, 12), m.cap_ms);
        // Stock-like harvesting (10 cores at 33% primary) is painful.
        assert!(m.p99_ms(0.33, 10) > 1_000.0);
    }

    #[test]
    fn reserve_respecting_harvest_is_benign() {
        let m = LatencyModel::paper_calibrated();
        let baseline = m.p99_ms(0.33, 0);
        // With the 4-core reserve intact (primary 4 cores + secondary 8
        // leaves exactly demand available) latency grows but far less
        // than saturation; at lower secondary usage it's nearly flat.
        let with_reserve = m.p99_ms(0.33, 4);
        assert!(with_reserve - baseline < 120.0);
        assert!(with_reserve >= baseline);
    }

    #[test]
    fn monotone_in_both_inputs() {
        let m = LatencyModel::paper_calibrated();
        let mut last = 0.0;
        for u in [0.0, 0.2, 0.4, 0.6, 0.8, 0.95] {
            let p = m.p99_ms(u, 0);
            assert!(p >= last, "not monotone in util");
            last = p;
        }
        let mut last = 0.0;
        for c in 0..=12u32 {
            let p = m.p99_ms(0.4, c);
            assert!(p >= last, "not monotone in secondary cores");
            last = p;
        }
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let m = LatencyModel::paper_calibrated();
        let clean = m.p99_ms(0.3, 2);
        let a = m.p99_noisy_ms(0.3, 2, 42, 7);
        let b = m.p99_noisy_ms(0.3, 2, 42, 7);
        assert_eq!(a, b);
        assert!((a - clean).abs() <= m.noise_ms + 1e-12);
    }

    #[test]
    fn fleet_average_between_extremes() {
        let m = LatencyModel::paper_calibrated();
        let loads = [(0.2, 0u32), (0.6, 0u32)];
        let fleet = m.fleet_p99_ms(&loads, 1, 0);
        let lo = m.p99_ms(0.2, 0) - m.noise_ms;
        let hi = m.p99_ms(0.6, 0) + m.noise_ms;
        assert!(fleet > lo && fleet < hi);
        assert_eq!(m.fleet_p99_ms(&[], 1, 0), 0.0);
    }

    #[test]
    fn disk_term_is_benign_when_idle() {
        let m = LatencyModel::paper_calibrated();
        let d = DiskConfig::datacenter();
        let base = m.p99_ms(0.33, 0);
        let with_disk = m.p99_disk_ms(0.33, 0, &d, UtilizationPattern::Periodic, 0);
        // No harvested streams: the query pays its own index read plus
        // modest queueing behind the primary's background I/O.
        assert!(with_disk > base);
        assert!(with_disk - base < 100.0, "idle disk term too large");
    }

    #[test]
    fn isolation_manager_protects_the_disk_tail() {
        // §6 / Figure 10's claim, disk edition: with harvested streams
        // spilling, the isolation manager keeps the primary's disk wait
        // near baseline while naive fair sharing inflates it.
        let m = LatencyModel::paper_calibrated();
        let isolated = DiskConfig::datacenter();
        let fair = DiskConfig::fair_share();
        let util = 0.6; // periodic demand 0.53 — above the 0.5 threshold
        let p = UtilizationPattern::Periodic;
        let protected = m.p99_disk_ms(util, 2, &isolated, p, 4);
        let exposed = m.p99_disk_ms(util, 2, &fair, p, 4);
        assert!(
            exposed > protected + 50.0,
            "fair share {exposed:.0}ms not clearly worse than isolation {protected:.0}ms"
        );
        // Neither regime saturates: the interference term must degrade
        // smoothly, not pin at the timeout cap.
        assert!(exposed < m.cap_ms, "fair-share disk term pinned at cap");
        assert!(protected < m.cap_ms);
        // With no streams the two policies agree.
        assert_eq!(
            m.p99_disk_ms(util, 2, &isolated, p, 0),
            m.p99_disk_ms(util, 2, &fair, p, 0)
        );
    }

    #[test]
    fn disk_term_monotone_and_capped() {
        let m = LatencyModel::paper_calibrated();
        let d = DiskConfig::fair_share();
        let p = UtilizationPattern::Constant;
        let mut last = 0.0;
        for u in [0.0, 0.2, 0.4, 0.6, 0.8] {
            let v = m.p99_disk_ms(u, 0, &d, p, 1);
            assert!(v >= last, "not monotone in util");
            assert!(v < m.cap_ms, "disk term pinned at cap at util {u}");
            last = v;
        }
        // Saturated CPU dominates: the cap still binds.
        assert_eq!(m.p99_disk_ms(0.33, 12, &d, p, 8), m.cap_ms);
        assert!(m.p99_disk_ms(0.99, 0, &d, p, 8) <= m.cap_ms);
    }

    #[test]
    fn imbalance_raises_fleet_p99() {
        // Convexity: the same total harvested cores hurt more when
        // concentrated — the mechanism behind YARN-H's balanced placement
        // improving tail latency.
        let m = LatencyModel::paper_calibrated();
        let balanced = [(0.5, 3u32), (0.5, 3u32)];
        let skewed = [(0.5, 6u32), (0.5, 0u32)];
        assert!(m.fleet_p99_ms(&skewed, 0, 0) > m.fleet_p99_ms(&balanced, 0, 0));
    }
}
