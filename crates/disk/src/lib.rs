//! A deterministic shared-disk I/O model with primary-tenant contention.
//!
//! The network fabric (`harvest-net`) made the workspace pay for bytes
//! on the wire; this crate makes it pay for bytes on the platter. Each
//! server gets one disk with separate read and write channels, shared
//! between the primary tenant's I/O — derived from the utilization
//! playback through a configurable util→disk-bandwidth mapping per
//! tenant class — and the secondary streams the harvested systems
//! generate (re-replications, remote reads, shuffle spills).
//!
//! The paper's performance-isolation manager (§6) "throttles the
//! secondary tenants' disk activity when the primary tenant performs
//! substantial disk I/O". That policy is modeled as a pluggable
//! [`ThrottlePolicy`], because it is also the villain of §7's lesson 2:
//! the production DataNode's *synchronous* heartbeat thread queued
//! behind throttled disk streams, missed the name node's timeout, and
//! triggered a spurious replication storm. With this crate the incident
//! reproduces mechanistically (`harvest_dfs::heartbeat`) instead of
//! being scripted.
//!
//! * [`config`] — [`DiskConfig`]: channel bandwidths and seek latency;
//!   [`PrimaryIoModel`]: the per-tenant-class util→demand mapping;
//!   [`ThrottlePolicy`]: fair-share vs. the paper's isolation manager;
//! * [`pool`] — [`DiskPool`]: event-driven secondary streams with fair
//!   per-channel sharing, versioned completions through a
//!   [`harvest_sim::engine::EventQueue`], bit-identical replays.
//!
//! Consumers: `harvest-dfs` bounds repairs by the min of network,
//! source-disk-read, and dest-disk-write rates and prices remote reads'
//! disk service; `harvest-sched` gates shuffles on fetch reads and
//! spill writes; `harvest-service` adds a disk-interference term to the
//! p99 model; `harvest-core` threads a [`DiskConfig`] through the
//! experiment harness (`repro --disk`, composing with `--net`).
//!
//! # Examples
//!
//! ```
//! use harvest_cluster::ServerId;
//! use harvest_disk::{DiskConfig, DiskPool, IoDir};
//! use harvest_sim::SimTime;
//!
//! let mut pool = DiskPool::new(4, &DiskConfig::datacenter());
//! // The primary on disk 0 ramps up; the paper's isolation manager
//! // pauses the secondary read until it backs off.
//! pool.set_primary_util(SimTime::ZERO, ServerId(0), 0.9);
//! pool.schedule_stream(SimTime::ZERO, ServerId(0), IoDir::Read, 64_000_000, 1);
//! assert!(pool.pump(SimTime::from_secs(60)).is_empty());
//! pool.set_primary_util(SimTime::from_secs(60), ServerId(0), 0.1);
//! let done = pool.pump(SimTime::from_secs(120));
//! assert_eq!(done.len(), 1);
//! ```

pub mod config;
pub mod pool;

pub use config::{DiskConfig, PrimaryIoModel, ThrottlePolicy, MIN_SERVE_FRACTION};
pub use harvest_sim::fairshare::SharingMode;
pub use pool::{DiskPool, DiskStats, IoDir, ReshareScope, StreamCompletion, StreamId};
