//! Fault-machinery overhead bench: the `FaultPlan::none()` path must
//! cost nothing.
//!
//! Three configurations of the sched_tick workload (unscaled DC-9,
//! incremental ticks, disks on):
//!
//! * `none` — `FaultPlan::none()`, the default. This is byte-for-byte
//!   the configuration `BENCH_sched.json`'s incremental baseline
//!   measures, so its time is compared against that recorded number:
//!   the acceptance bar is ≤ 1.05× (the fault fields and the disarmed
//!   branches they gate must be free).
//! * `armed-idle` — a plan whose only event fires a year past the
//!   horizon: the machinery arms (down-server checks on every
//!   placement, counter mirrors) but never acts. The trajectory is
//!   pinned bitwise identical to `none` by unit tests; here the stats
//!   are re-asserted and the wall-clock overhead reported.
//! * `storm` — a rolling wave of 40 rack power blips, reported for
//!   scale (not asserted: the work is real).
//!
//! Modes:
//! * default — measures all three and (re)writes `BENCH_fault.json` at
//!   the workspace root; asserts `none` ≤ 1.05× the recorded
//!   `BENCH_sched.json` incremental baseline when that file exists
//!   (skipped with a notice otherwise — a fresh checkout has no
//!   baseline to hold the line against).
//! * `FAULT_SMOKE=1` — machine-independent CI guard: best-of-five
//!   `none` vs `armed-idle`, asserting identical stats and a bounded
//!   wall-clock ratio.

use std::time::{Duration, Instant};

use harvest_cluster::{Datacenter, UtilizationView};
use harvest_disk::DiskConfig;
use harvest_jobs::tpcds::{scale_job, tpcds_suite};
use harvest_jobs::workload::Workload;
use harvest_sched::policy::SchedPolicy;
use harvest_sched::sim::{SchedSim, SchedSimConfig, TickSweep};
use harvest_sched::SimStats;
use harvest_sim::fault::{FaultEvent, FaultKind, FaultPlan};
use harvest_sim::rng::stream_rng;
use harvest_sim::{SimDuration, SimTime};
use harvest_trace::datacenter::DatacenterProfile;
use std::hint::black_box;

const DURATION_FACTOR: f64 = 16.0;
const ARRIVAL_GAP: SimDuration = SimDuration::from_secs(900);
const HORIZON: SimDuration = SimDuration::from_hours(5);
const DRAIN: SimDuration = SimDuration::from_hours(2);

/// A plan that arms the machinery but never acts: its only event fires
/// a year past the horizon, so plan expansion drops it.
fn armed_idle_plan() -> FaultPlan {
    FaultPlan::with_events(vec![FaultEvent {
        at: SimTime::ZERO + SimDuration::from_days(365),
        kind: FaultKind::ServerCrash { server: 0 },
    }])
}

/// A rolling wave of 40 rack power blips, spread across the fleet and
/// the horizon so running containers actually get caught.
fn storm_plan(n_racks: u32) -> FaultPlan {
    let mut events = Vec::new();
    for k in 0..40u64 {
        let rack = (k as u32 * 37) % n_racks;
        let at = SimTime::ZERO + SimDuration::from_mins(10 + 7 * k);
        events.push(FaultEvent {
            at,
            kind: FaultKind::RackPowerLoss { rack },
        });
        events.push(FaultEvent {
            at: at + SimDuration::from_mins(12),
            kind: FaultKind::RackPowerRestore { rack },
        });
    }
    FaultPlan::with_events(events)
}

fn config(faults: FaultPlan) -> SchedSimConfig {
    let mut cfg = SchedSimConfig::testbed(SchedPolicy::PrimaryAware, 42);
    cfg.horizon = HORIZON;
    cfg.drain = DRAIN;
    cfg.disk = Some(DiskConfig::datacenter());
    cfg.sweep = TickSweep::Incremental;
    cfg.faults = faults;
    cfg
}

fn run_once(
    dc: &Datacenter,
    view: &UtilizationView,
    workload: &Workload,
    faults: &FaultPlan,
) -> (f64, SimStats) {
    let sim = SchedSim::new(dc, view, workload, config(faults.clone()));
    let t0 = Instant::now();
    let stats = black_box(sim.run());
    (t0.elapsed().as_secs_f64(), stats)
}

/// (median, best) wall seconds over `iters` deterministic runs + one
/// run's stats. The median goes in the report; the best — the least
/// noise-inflated estimate of the true cost — feeds the baseline gate.
fn measure(
    dc: &Datacenter,
    view: &UtilizationView,
    workload: &Workload,
    faults: &FaultPlan,
    iters: usize,
) -> (f64, f64, SimStats) {
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let (secs, stats) = run_once(dc, view, workload, faults);
        samples.push(Duration::from_secs_f64(secs));
        last = Some(stats);
    }
    samples.sort();
    (
        samples[samples.len() / 2].as_secs_f64(),
        samples[0].as_secs_f64(),
        last.expect("iters >= 1"),
    )
}

/// The recorded incremental-tick baseline out of `BENCH_sched.json`,
/// if the file exists and parses.
fn sched_baseline(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"incremental_secs\":";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

fn main() {
    let profile = DatacenterProfile::dc(9);
    let dc = Datacenter::generate(&profile, 42);
    let view = UtilizationView::unscaled(&dc);
    let suite: Vec<_> = tpcds_suite()
        .iter()
        .map(|q| scale_job(q, DURATION_FACTOR, 1.0))
        .collect();
    let mut wl_rng = stream_rng(42, "sched-tick-wl");
    let workload = Workload::poisson(&mut wl_rng, suite, ARRIVAL_GAP, HORIZON);
    println!(
        "fault bench: unscaled {} ({} servers), {} jobs over {}h + {}h drain, incremental ticks",
        profile.name(),
        dc.n_servers(),
        workload.n_jobs(),
        HORIZON.as_hours_f64(),
        DRAIN.as_hours_f64(),
    );

    let none = FaultPlan::none();
    let idle = armed_idle_plan();

    // The measured runs are milliseconds; warm the clocks and caches
    // first so the comparison against a baseline recorded mid-session
    // (sched_tick times its incremental run after ~0.2s of full
    // sweeps) is like-for-like.
    for _ in 0..5 {
        run_once(&dc, &view, &workload, &none);
    }

    if std::env::var_os("FAULT_SMOKE").is_some() {
        // Machine-independent guard: the armed-but-idle run must match
        // the no-fault run bitwise and cost at most a bounded sliver of
        // wall clock. Best of five per mode — the runs are milliseconds,
        // so one descheduling blip must not decide the ratio.
        let best = |faults: &FaultPlan| -> (f64, SimStats) {
            (0..5)
                .map(|_| run_once(&dc, &view, &workload, faults))
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("five runs")
        };
        let (t_none, s_none) = best(&none);
        let (t_idle, s_idle) = best(&idle);
        println!("bench fault/none        {t_none:>10.4}s (smoke, best of 5)");
        println!("bench fault/armed-idle  {t_idle:>10.4}s (smoke, best of 5)");
        assert!(s_none.tasks_started > 0, "smoke run placed nothing");
        assert_eq!(
            s_none, s_idle,
            "armed-idle trajectory diverged from no-fault"
        );
        assert!(
            t_idle <= t_none * 1.15 + 0.005,
            "armed-idle fault machinery cost {:.1}% over the no-fault path",
            (t_idle / t_none - 1.0) * 100.0
        );
        return;
    }

    let (t_none, best_none, s_none) = measure(&dc, &view, &workload, &none, 7);
    println!("bench fault/none        {t_none:>10.4}s median of 7");
    let (t_idle, _, s_idle) = measure(&dc, &view, &workload, &idle, 7);
    println!("bench fault/armed-idle  {t_idle:>10.4}s median of 7");
    let storm = storm_plan(dc.n_racks() as u32);
    let (t_storm, _, s_storm) = measure(&dc, &view, &workload, &storm, 7);
    println!("bench fault/storm       {t_storm:>10.4}s median of 7");
    println!(
        "bench fault/storm fallout: {} containers killed, {} retries, {} jobs abandoned",
        s_storm.fault_kills, s_storm.fault_retries, s_storm.jobs_abandoned,
    );

    assert!(s_none.tasks_started > 0, "bench placed nothing");
    assert_eq!(
        s_none, s_idle,
        "armed-idle trajectory diverged from no-fault"
    );

    let sched_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    let baseline = sched_baseline(sched_path);
    match baseline {
        Some(b) => {
            // Gate on the best sample, not the median: at ~8ms per run
            // a single descheduling blip shifts the median a multiple
            // of the 5% budget, while the minimum is the least
            // noise-inflated estimate of the true cost.
            let ratio = best_none / b;
            println!("bench fault/none vs BENCH_sched.json incremental: {ratio:.3}x (best of 7)");
            assert!(
                ratio <= 1.05,
                "FaultPlan::none() path is {ratio:.3}x the recorded tick baseline \
                 ({best_none:.4}s vs {b:.4}s) — the disarmed fault machinery must be free \
                 (re-run the sched_tick bench first if the baseline is from another machine)"
            );
        }
        None => {
            println!("no BENCH_sched.json baseline to compare against; skipping the 1.05x gate")
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"fault\",\n  \"cluster\": {{ \"profile\": \"{}\", \"servers\": {} }},\n  \"workload\": \"{} TPC-DS jobs over {}h horizon + {}h drain, disks on, YARN-PT, incremental ticks\",\n  \"overhead\": {{ \"none_secs\": {t_none:.6}, \"armed_idle_secs\": {t_idle:.6}, \"storm_secs\": {t_storm:.6}, \"sched_baseline_secs\": {}, \"none_vs_baseline\": {} }},\n  \"storm\": {{ \"fault_kills\": {}, \"fault_retries\": {}, \"jobs_abandoned\": {} }}\n}}\n",
        profile.name(),
        dc.n_servers(),
        workload.n_jobs(),
        HORIZON.as_hours_f64(),
        DRAIN.as_hours_f64(),
        baseline.map_or("null".into(), |b| format!("{b:.6}")),
        baseline.map_or("null".into(), |b| format!("{:.3}", t_none / b)),
        s_storm.fault_kills,
        s_storm.fault_retries,
        s_storm.jobs_abandoned,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fault.json");
    std::fs::write(path, &json).expect("write BENCH_fault.json");
    println!("wrote {path}");
}
