//! Block-store state: blocks, replicas, and space accounting.

use harvest_cluster::{Datacenter, ServerId, TenantId};

/// Identifies a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Size of one block in bytes (the paper's 256 MB HDFS default). Network
/// consumers use this to turn replica movement into flow bytes.
pub const BLOCK_BYTES: u64 = 256 * 1024 * 1024;

/// Replica locations and space accounting for every block in the cluster.
///
/// Blocks are 256 MB (the paper's HDFS default); capacities are counted
/// in blocks. The store keeps the forward map (block → servers), the
/// inverse map (server → blocks) needed to process disk reimages, and
/// per-server/per-tenant free-space counters the placement policies use.
#[derive(Debug, Clone)]
pub struct BlockStore {
    replicas: Vec<Vec<u32>>,
    server_blocks: Vec<Vec<u64>>,
    server_used: Vec<u32>,
    server_capacity: Vec<u32>,
    server_tenant: Vec<u32>,
    tenant_free: Vec<u64>,
    lost: u64,
}

impl BlockStore {
    /// An empty store over the datacenter's servers.
    pub fn new(dc: &Datacenter) -> Self {
        let server_capacity: Vec<u32> = dc.servers.iter().map(|s| s.harvest_blocks).collect();
        let server_tenant: Vec<u32> = dc.servers.iter().map(|s| s.tenant.0).collect();
        let mut tenant_free = vec![0u64; dc.n_tenants()];
        for s in &dc.servers {
            tenant_free[s.tenant.0 as usize] += s.harvest_blocks as u64;
        }
        BlockStore {
            replicas: Vec::new(),
            server_blocks: vec![Vec::new(); dc.n_servers()],
            server_used: vec![0; dc.n_servers()],
            server_capacity,
            server_tenant,
            tenant_free,
            lost: 0,
        }
    }

    /// Number of blocks ever created (including lost ones).
    pub fn n_blocks(&self) -> usize {
        self.replicas.len()
    }

    /// Number of blocks whose every replica has been destroyed.
    pub fn lost_blocks(&self) -> u64 {
        self.lost
    }

    /// The replica servers of a block (empty if the block is lost).
    pub fn replicas(&self, block: BlockId) -> &[u32] {
        &self.replicas[block.0 as usize]
    }

    /// Free blocks on a server.
    pub fn free_on(&self, server: ServerId) -> u32 {
        self.server_capacity[server.0 as usize] - self.server_used[server.0 as usize]
    }

    /// Whether the server has room for one more replica.
    pub fn has_space(&self, server: ServerId) -> bool {
        self.free_on(server) > 0
    }

    /// Free blocks across a whole tenant.
    pub fn tenant_free(&self, tenant: TenantId) -> u64 {
        self.tenant_free[tenant.0 as usize]
    }

    /// Total free blocks cluster-wide.
    pub fn total_free(&self) -> u64 {
        self.tenant_free.iter().sum()
    }

    /// Creates a block with the given replica locations.
    ///
    /// # Panics
    ///
    /// Panics if a location is full or duplicated.
    pub fn create_block(&mut self, locations: &[ServerId]) -> BlockId {
        let id = BlockId(self.replicas.len() as u64);
        let mut list = Vec::with_capacity(locations.len());
        for &sid in locations {
            assert!(
                !list.contains(&sid.0),
                "duplicate replica location {sid} for block {id:?}"
            );
            list.push(sid.0);
        }
        self.replicas.push(Vec::new());
        for &sid in locations {
            self.add_replica(id, sid);
        }
        self.replicas[id.0 as usize].shrink_to_fit();
        id
    }

    /// Adds one replica of `block` on `server`.
    ///
    /// # Panics
    ///
    /// Panics if the server is full or already holds the block.
    pub fn add_replica(&mut self, block: BlockId, server: ServerId) {
        let s = server.0 as usize;
        assert!(self.has_space(server), "server {server} is full");
        assert!(
            !self.replicas[block.0 as usize].contains(&server.0),
            "server {server} already holds block {block:?}"
        );
        self.replicas[block.0 as usize].push(server.0);
        self.server_blocks[s].push(block.0);
        self.server_used[s] += 1;
        self.tenant_free[self.server_tenant[s] as usize] -= 1;
    }

    /// Destroys every replica on `server` (a disk reimage), returning the
    /// affected blocks and marking any block that lost its final replica
    /// as lost.
    pub fn reimage_server(&mut self, server: ServerId) -> Vec<BlockId> {
        let s = server.0 as usize;
        let blocks = std::mem::take(&mut self.server_blocks[s]);
        let freed = blocks.len() as u32;
        self.server_used[s] -= freed;
        self.tenant_free[self.server_tenant[s] as usize] += freed as u64;
        let mut affected = Vec::with_capacity(blocks.len());
        for b in blocks {
            let list = &mut self.replicas[b as usize];
            if let Some(pos) = list.iter().position(|&x| x == server.0) {
                list.swap_remove(pos);
            }
            if list.is_empty() {
                self.lost += 1;
            }
            affected.push(BlockId(b));
        }
        affected
    }

    /// Number of surviving replicas of a block.
    pub fn replica_count(&self, block: BlockId) -> usize {
        self.replicas[block.0 as usize].len()
    }

    /// The tenant owning a server (placement helpers need this without a
    /// full datacenter reference).
    pub fn tenant_of(&self, server: ServerId) -> TenantId {
        TenantId(self.server_tenant[server.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_trace::datacenter::DatacenterProfile;

    fn dc() -> Datacenter {
        Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 11)
    }

    #[test]
    fn create_and_account() {
        let dc = dc();
        let mut store = BlockStore::new(&dc);
        let total = store.total_free();
        let locs = [ServerId(0), ServerId(1), ServerId(2)];
        let b = store.create_block(&locs);
        assert_eq!(store.replica_count(b), 3);
        assert_eq!(store.total_free(), total - 3);
        assert_eq!(store.free_on(ServerId(0)), dc.servers[0].harvest_blocks - 1);
    }

    #[test]
    fn reimage_destroys_and_frees() {
        let dc = dc();
        let mut store = BlockStore::new(&dc);
        let b1 = store.create_block(&[ServerId(0), ServerId(5)]);
        let b2 = store.create_block(&[ServerId(0)]);
        let affected = store.reimage_server(ServerId(0));
        assert_eq!(affected.len(), 2);
        assert_eq!(store.replica_count(b1), 1);
        assert_eq!(store.replica_count(b2), 0);
        assert_eq!(store.lost_blocks(), 1);
        assert_eq!(store.free_on(ServerId(0)), dc.servers[0].harvest_blocks);
    }

    #[test]
    fn repair_after_partial_loss() {
        let dc = dc();
        let mut store = BlockStore::new(&dc);
        let b = store.create_block(&[ServerId(0), ServerId(5)]);
        store.reimage_server(ServerId(0));
        store.add_replica(b, ServerId(9));
        assert_eq!(store.replica_count(b), 2);
        assert!(store.replicas(b).contains(&9));
    }

    #[test]
    fn reimaged_server_can_host_again() {
        let dc = dc();
        let mut store = BlockStore::new(&dc);
        let b = store.create_block(&[ServerId(0), ServerId(3)]);
        store.reimage_server(ServerId(0));
        store.add_replica(b, ServerId(0));
        assert_eq!(store.replica_count(b), 2);
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn duplicate_replica_panics() {
        let dc = dc();
        let mut store = BlockStore::new(&dc);
        let b = store.create_block(&[ServerId(0)]);
        store.add_replica(b, ServerId(0));
    }

    #[test]
    fn tenant_free_tracks_usage() {
        let dc = dc();
        let mut store = BlockStore::new(&dc);
        let t = store.tenant_of(ServerId(0));
        let before = store.tenant_free(t);
        store.create_block(&[ServerId(0)]);
        assert_eq!(store.tenant_free(t), before - 1);
    }
}
