//! Supervised parallel map: panic isolation, bounded retries, and
//! straggler detection on top of [`crate::par`].
//!
//! [`crate::par::par_map`] is the right tool when every task is trusted:
//! a panic anywhere aborts the whole sweep. Long sweeps (hours of
//! simulation across thousands of tasks) need the opposite contract —
//! one bad task must not cost the other 9 999. [`par_map_supervised`]
//! provides it:
//!
//! * **Panic isolation.** Every task runs under
//!   `std::panic::catch_unwind`. A panic consumes one attempt from a
//!   bounded [`RetryBudget`] (delays use the same stateless splitmix
//!   jitter shape as [`crate::fault::BackoffConfig`], so retry timing
//!   never perturbs any RNG stream); when the budget is exhausted the
//!   task is *quarantined* — its slot in the result vector stays `None`
//!   and a structured [`TaskFailure`] (task index, stable key, panic
//!   payload) is surfaced instead of a process abort. Every other slot
//!   is bitwise identical to a clean run, because results are still
//!   placed by input index exactly as in `par_map`.
//! * **Deadlines and stragglers.** A watchdog thread polls per-task
//!   wall time against a deadline — fixed via
//!   [`SuperviseConfig::deadline`], or derived as a multiple of the
//!   running median task time once enough samples exist. Overdue tasks
//!   are flagged as [`Straggler`]s; when [`SuperviseConfig::cancel_overdue`]
//!   is set they are also cancelled cooperatively through the
//!   [`CancelToken`] handed to each task (engines check it at tick
//!   granularity). A *cancelled* task's result is discarded (slot
//!   `None`) so a partial, timing-dependent result can never leak into
//!   deterministic output; a merely *flagged* straggler keeps its
//!   result.
//!
//! # Determinism contract
//!
//! With no panics, no cancellations, and any deadline outcome that only
//! *flags*, `par_map_supervised(...)` results are bitwise identical to
//! `par_map` at any `jobs` — supervision observes the schedule, it does
//! not participate in it. Wall-clock artifacts (retry delays, straggler
//! timings) never enter the result vector.
//!
//! # Cost model
//!
//! Per task: one `catch_unwind` frame (~no cost on the non-panic path),
//! one `Instant::now()` pair, and one uncontended mutex store to
//! publish the in-flight slot to the watchdog. The watchdog itself is
//! one thread polling at 10 ms; it reads `jobs` mutexes per poll. For
//! the harness's tasks (milliseconds to minutes each) this is noise —
//! the suite bench pins the supervised path against the plain
//! `par_map` baseline.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::rng::splitmix64;

/// Cooperative cancellation handle handed to every supervised task.
///
/// Tasks (and the engines they run) may poll [`CancelToken::is_cancelled`]
/// at convenient granularity (a simulation tick, an event batch) and
/// return early. Cancellation is advisory: a task that never polls
/// simply runs to completion and has its result discarded.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A task that exhausted its retry budget: quarantined, slot left `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// Input index of the task.
    pub task: usize,
    /// The caller-stable key naming the task's seed stream (what a
    /// checkpoint journal would index it by).
    pub key: String,
    /// Attempts consumed, including the first (so `max_retries + 1`
    /// when the budget ran dry).
    pub attempts: u32,
    /// The panic payload, downcast to a string when possible.
    pub payload: String,
}

/// A task the watchdog saw exceed its deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Straggler {
    /// Input index of the task.
    pub task: usize,
    /// Wall time observed when flagged, in milliseconds.
    pub elapsed_ms: u64,
    /// The deadline it exceeded, in milliseconds.
    pub deadline_ms: u64,
    /// Whether the task was cooperatively cancelled (result discarded)
    /// rather than merely flagged.
    pub cancelled: bool,
}

/// Bounded retry budget for panicking tasks.
///
/// Delays reuse the stateless jittered-exponential shape of
/// [`crate::fault::BackoffConfig::delay`] — a splitmix64 hash of
/// `(seed, task, attempt)`, no RNG stream consumed — scaled to wall
/// milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudget {
    /// Retries after the first attempt (0 = quarantine on first panic).
    pub max_retries: u32,
    /// Base delay before the first retry, in wall milliseconds.
    pub base_ms: u64,
    /// Ceiling on the exponential delay, in wall milliseconds.
    pub cap_ms: u64,
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget {
            max_retries: 2,
            base_ms: 25,
            cap_ms: 250,
        }
    }
}

impl RetryBudget {
    /// The wall-clock delay before retry number `attempt` (1-based) of
    /// `task`. Deterministic in `(seed, task, attempt)`.
    pub fn delay_ms(&self, seed: u64, task: u64, attempt: u32) -> u64 {
        let shift = (attempt.saturating_sub(1)).min(20);
        let raw = self.base_ms.saturating_mul(1u64 << shift);
        let capped = raw.min(self.cap_ms).max(1);
        let h = splitmix64(seed ^ splitmix64(task) ^ ((attempt as u64) << 40));
        capped + h % (capped / 2 + 1)
    }
}

/// Knobs for one supervised map.
#[derive(Debug, Clone, Default)]
pub struct SuperviseConfig {
    /// Retry budget for panicking tasks.
    pub retry: RetryBudget,
    /// Fixed per-task deadline. `None` derives one automatically: once
    /// at least [`AUTO_MIN_SAMPLES`] tasks have completed, a task is a
    /// straggler past `median × `[`AUTO_MULTIPLE`] (floored at
    /// [`AUTO_FLOOR_MS`]).
    pub deadline: Option<Duration>,
    /// Cancel overdue tasks through their [`CancelToken`] (discarding
    /// their result) instead of only flagging them. Flag-only is the
    /// default because it cannot change any output.
    pub cancel_overdue: bool,
    /// Seed for retry-delay jitter (wall-clock only, never results).
    pub seed: u64,
}

/// Completed samples required before the automatic deadline arms.
pub const AUTO_MIN_SAMPLES: usize = 5;
/// Automatic deadline as a multiple of the running median task time.
pub const AUTO_MULTIPLE: f64 = 8.0;
/// Floor for the automatic deadline, in milliseconds.
pub const AUTO_FLOOR_MS: u64 = 1000;

/// The outcome of a supervised map.
#[derive(Debug)]
pub struct Supervised<R> {
    /// One slot per input task, in input order. `None` exactly for
    /// quarantined or cancelled tasks.
    pub results: Vec<Option<R>>,
    /// Tasks that exhausted their retry budget, sorted by task index.
    pub quarantined: Vec<TaskFailure>,
    /// Tasks that exceeded the deadline, sorted by task index.
    pub stragglers: Vec<Straggler>,
    /// Total retry attempts consumed across all tasks.
    pub retries: u64,
}

/// Renders a caught panic payload as a string.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// What one worker is currently executing, published for the watchdog.
struct InFlight {
    task: usize,
    started: Instant,
    token: CancelToken,
    flagged: bool,
}

/// [`par_map_supervised`] with per-worker scratch (the
/// [`crate::par::par_map_with`] shape) plus per-result and key hooks:
///
/// * `key_of(i)` names task `i`'s stable seed stream — it labels
///   [`TaskFailure`]s and lets a checkpointing caller journal by key.
/// * `on_result(i, &r)` fires on the worker thread as soon as task `i`
///   completes un-cancelled (before the join), so a caller can stream
///   results to a journal; it must not mutate anything a task reads.
#[allow(clippy::too_many_arguments)]
pub fn par_map_supervised_with<T, R, S, I, F, K, C>(
    jobs: usize,
    tasks: &[T],
    cfg: &SuperviseConfig,
    init: I,
    key_of: K,
    on_result: C,
    f: F,
) -> Supervised<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T, &CancelToken) -> R + Sync,
    K: Fn(usize) -> String + Sync,
    C: Fn(usize, &R) + Sync,
{
    let jobs = jobs.max(1).min(tasks.len().max(1));

    let cursor = AtomicUsize::new(0);
    let retries = AtomicU64::new(0);
    let workers_done = AtomicUsize::new(0);
    let inflight: Vec<Mutex<Option<InFlight>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let durations_ms: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let quarantined: Mutex<Vec<TaskFailure>> = Mutex::new(Vec::new());
    let stragglers: Mutex<Vec<Straggler>> = Mutex::new(Vec::new());

    // Even `jobs == 1` runs under the scope: the watchdog needs a
    // thread of its own either way, and one code path keeps the
    // supervision semantics identical at every thread count.
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let refs = (
            &cursor,
            &retries,
            &workers_done,
            &inflight,
            &durations_ms,
            &quarantined,
            &stragglers,
            &init,
            &f,
            &key_of,
            &on_result,
        );
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                scope.spawn(move || {
                    let (
                        cursor,
                        retries,
                        workers_done,
                        inflight,
                        durations_ms,
                        quarantined,
                        _stragglers,
                        init,
                        f,
                        key_of,
                        on_result,
                    ) = refs;
                    let mut scratch = init();
                    let mut claimed: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(i) else { break };
                        let mut attempt: u32 = 1;
                        loop {
                            let token = CancelToken::new();
                            *inflight[w].lock().unwrap() = Some(InFlight {
                                task: i,
                                started: Instant::now(),
                                token: token.clone(),
                                flagged: false,
                            });
                            let outcome =
                                catch_unwind(AssertUnwindSafe(|| f(&mut scratch, i, task, &token)));
                            let slot = inflight[w].lock().unwrap().take();
                            match outcome {
                                Ok(r) => {
                                    if let Some(fl) = &slot {
                                        durations_ms
                                            .lock()
                                            .unwrap()
                                            .push(fl.started.elapsed().as_millis() as u64);
                                    }
                                    if token.is_cancelled() {
                                        // Discard: a cancelled task's
                                        // result is timing-dependent.
                                    } else {
                                        on_result(i, &r);
                                        claimed.push((i, r));
                                    }
                                    break;
                                }
                                Err(payload) => {
                                    if attempt <= cfg.retry.max_retries {
                                        retries.fetch_add(1, Ordering::Relaxed);
                                        let delay = cfg.retry.delay_ms(cfg.seed, i as u64, attempt);
                                        std::thread::sleep(Duration::from_millis(delay));
                                        attempt += 1;
                                    } else {
                                        quarantined.lock().unwrap().push(TaskFailure {
                                            task: i,
                                            key: key_of(i),
                                            attempts: attempt,
                                            payload: panic_message(&*payload),
                                        });
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    workers_done.fetch_add(1, Ordering::Relaxed);
                    claimed
                })
            })
            .collect();

        // The watchdog: poll in-flight tasks against the deadline until
        // every worker has drained.
        let watchdog = scope.spawn(|| {
            while workers_done.load(Ordering::Relaxed) < jobs {
                std::thread::sleep(Duration::from_millis(10));
                let deadline_ms = match cfg.deadline {
                    Some(d) => Some(d.as_millis() as u64),
                    None => {
                        let mut done = durations_ms.lock().unwrap().clone();
                        if done.len() < AUTO_MIN_SAMPLES {
                            None
                        } else {
                            done.sort_unstable();
                            let median = done[done.len() / 2];
                            Some(((median as f64 * AUTO_MULTIPLE) as u64).max(AUTO_FLOOR_MS))
                        }
                    }
                };
                let Some(deadline_ms) = deadline_ms else {
                    continue;
                };
                for slot in inflight.iter() {
                    let mut guard = slot.lock().unwrap();
                    if let Some(fl) = guard.as_mut() {
                        let elapsed_ms = fl.started.elapsed().as_millis() as u64;
                        if !fl.flagged && elapsed_ms > deadline_ms {
                            fl.flagged = true;
                            if cfg.cancel_overdue {
                                fl.token.cancel();
                            }
                            stragglers.lock().unwrap().push(Straggler {
                                task: fl.task,
                                elapsed_ms,
                                deadline_ms,
                                cancelled: cfg.cancel_overdue,
                            });
                        }
                    }
                }
            }
        });

        let buckets = handles
            .into_iter()
            .enumerate()
            .map(|(w, h)| match h.join() {
                Ok(bucket) => bucket,
                Err(p) => panic!(
                    "supervised worker {w} panicked outside a task: {}",
                    panic_message(&*p)
                ),
            })
            .collect();
        if let Err(p) = watchdog.join() {
            panic!("supervision watchdog panicked: {}", panic_message(&*p));
        }
        buckets
    });

    let mut results: Vec<Option<R>> = Vec::with_capacity(tasks.len());
    results.resize_with(tasks.len(), || None);
    for bucket in buckets {
        for (i, r) in bucket {
            debug_assert!(results[i].is_none(), "slot {i} claimed twice");
            results[i] = Some(r);
        }
    }
    let mut quarantined = quarantined.into_inner().unwrap();
    quarantined.sort_by_key(|q| q.task);
    let mut stragglers = stragglers.into_inner().unwrap();
    stragglers.sort_by_key(|s| s.task);
    Supervised {
        results,
        quarantined,
        stragglers,
        retries: retries.into_inner(),
    }
}

/// Supervised map without scratch or hooks: panic isolation, retries,
/// and the watchdog over a plain task closure. Task keys default to the
/// decimal index.
pub fn par_map_supervised<T, R, F>(
    jobs: usize,
    tasks: &[T],
    cfg: &SuperviseConfig,
    f: F,
) -> Supervised<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &CancelToken) -> R + Sync,
{
    par_map_supervised_with(
        jobs,
        tasks,
        cfg,
        || (),
        |i| i.to_string(),
        |_, _| {},
        |(), i, t, token| f(i, t, token),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::par_map;
    use std::collections::HashMap;

    fn quick_retry() -> SuperviseConfig {
        SuperviseConfig {
            retry: RetryBudget {
                max_retries: 1,
                base_ms: 1,
                cap_ms: 2,
            },
            ..SuperviseConfig::default()
        }
    }

    #[test]
    fn clean_run_matches_par_map_bitwise() {
        let tasks: Vec<f64> = (0..97).map(|i| i as f64 * 0.37).collect();
        let f = |x: &f64| (x.sin() * 1e9).sqrt();
        let plain = par_map(4, &tasks, f);
        for jobs in [1, 4] {
            let sup = par_map_supervised(jobs, &tasks, &SuperviseConfig::default(), |_, x, _| f(x));
            assert!(sup.quarantined.is_empty());
            assert_eq!(sup.retries, 0);
            let got: Vec<f64> = sup.results.into_iter().map(|r| r.unwrap()).collect();
            for (a, b) in plain.iter().zip(&got) {
                assert_eq!(a.to_bits(), b.to_bits(), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn panicking_task_is_quarantined_others_identical() {
        let tasks: Vec<u64> = (0..40).collect();
        let clean = par_map(3, &tasks, |&i| i * i + 1);
        let sup = par_map_supervised(3, &tasks, &quick_retry(), |_, &i, _| {
            if i == 17 {
                panic!("task 17 forced panic");
            }
            i * i + 1
        });
        assert_eq!(sup.quarantined.len(), 1);
        let q = &sup.quarantined[0];
        assert_eq!(q.task, 17);
        assert_eq!(q.key, "17");
        assert_eq!(q.attempts, 2); // first try + one retry
        assert!(q.payload.contains("forced panic"));
        assert_eq!(sup.retries, 1);
        for (i, slot) in sup.results.iter().enumerate() {
            if i == 17 {
                assert!(slot.is_none());
            } else {
                assert_eq!(slot, &Some(clean[i]));
            }
        }
    }

    #[test]
    fn panic_once_then_succeed_consumes_one_retry() {
        let attempts: Mutex<HashMap<usize, u32>> = Mutex::new(HashMap::new());
        let tasks: Vec<u64> = (0..16).collect();
        let sup = par_map_supervised(4, &tasks, &quick_retry(), |i, &t, _| {
            let n = {
                let mut map = attempts.lock().unwrap();
                let e = map.entry(i).or_insert(0);
                *e += 1;
                *e
            };
            if t == 5 && n == 1 {
                panic!("flaky once");
            }
            t + 100
        });
        assert!(sup.quarantined.is_empty());
        assert_eq!(sup.retries, 1);
        for (i, slot) in sup.results.iter().enumerate() {
            assert_eq!(slot, &Some(i as u64 + 100));
        }
    }

    #[test]
    fn fixed_deadline_flags_straggler_but_keeps_result() {
        let cfg = SuperviseConfig {
            deadline: Some(Duration::from_millis(10)),
            ..SuperviseConfig::default()
        };
        let tasks = [0u64, 1];
        let sup = par_map_supervised(2, &tasks, &cfg, |_, &t, _| {
            if t == 1 {
                std::thread::sleep(Duration::from_millis(200));
            }
            t * 7
        });
        assert!(sup.quarantined.is_empty());
        assert_eq!(sup.results, vec![Some(0), Some(7)]);
        assert_eq!(sup.stragglers.len(), 1);
        let s = &sup.stragglers[0];
        assert_eq!(s.task, 1);
        assert!(!s.cancelled);
        assert!(s.elapsed_ms >= s.deadline_ms);
    }

    #[test]
    fn cancel_overdue_discards_the_result() {
        let cfg = SuperviseConfig {
            deadline: Some(Duration::from_millis(10)),
            cancel_overdue: true,
            ..SuperviseConfig::default()
        };
        let tasks = [0u64, 1];
        let sup = par_map_supervised(2, &tasks, &cfg, |_, &t, token| {
            if t == 1 {
                // Cooperative loop: poll the token like an engine tick.
                let start = Instant::now();
                while !token.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            t * 7
        });
        assert_eq!(sup.results[0], Some(0));
        assert_eq!(sup.results[1], None, "cancelled result must be discarded");
        assert_eq!(sup.stragglers.len(), 1);
        assert!(sup.stragglers[0].cancelled);
    }

    #[test]
    fn retry_delay_matches_backoff_shape() {
        let b = RetryBudget {
            max_retries: 3,
            base_ms: 8,
            cap_ms: 64,
        };
        for attempt in 1..=6 {
            let d = b.delay_ms(42, 7, attempt);
            let shift = (attempt - 1).min(20);
            let capped = (8u64 << shift).clamp(1, 64);
            assert!(
                d >= capped && d <= capped + capped / 2,
                "attempt {attempt}: {d}"
            );
            // Stateless: same inputs, same delay.
            assert_eq!(d, b.delay_ms(42, 7, attempt));
        }
        assert_ne!(b.delay_ms(42, 7, 1), b.delay_ms(43, 7, 1));
    }

    #[test]
    fn keys_and_on_result_hooks_fire() {
        let seen: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());
        let tasks: Vec<u64> = (0..8).collect();
        let sup = par_map_supervised_with(
            2,
            &tasks,
            &SuperviseConfig::default(),
            || (),
            |i| format!("k{i}"),
            |i, r: &u64| seen.lock().unwrap().push((i, *r)),
            |(), _, &t, _| t + 1,
        );
        assert!(sup.quarantined.is_empty());
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..8u64).map(|i| (i as usize, i + 1)).collect::<Vec<_>>()
        );
    }
}
