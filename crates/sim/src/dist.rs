//! Random distributions implemented on top of the base [`rand`] crate.
//!
//! Only `rand` itself is available offline, so the distributions the
//! simulations need (exponential inter-arrivals, Poisson event counts,
//! normal noise, log-normal durations, Pareto tails, weighted choice) are
//! implemented here with standard textbook methods. All samplers take
//! `&mut impl Rng` so callers control seeding and stream separation.

use rand::{Rng, RngExt};

/// Samples an exponential variate with the given `rate` (λ, events per unit).
///
/// Uses inverse-transform sampling. The mean of the returned variate is
/// `1.0 / rate`.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
    // `random::<f64>()` is in [0, 1); use 1-u in (0, 1] so ln() is finite.
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate
}

/// Samples a Poisson variate with the given `mean`.
///
/// Uses Knuth's multiplication method for small means and a
/// normal approximation (rounded, clamped at zero) for large means, which
/// is accurate to well under a percent for `mean > 30` and keeps sampling
/// O(1).
///
/// # Panics
///
/// Panics if `mean` is negative or non-finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean >= 0.0 && mean.is_finite(),
        "poisson mean must be finite and non-negative, got {mean}"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let n = normal(rng, mean, mean.sqrt());
        return n.round().max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        let u: f64 = rng.random();
        p *= u;
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples a normal variate with the given `mean` and standard deviation
/// `std_dev`, using the Marsaglia polar method.
///
/// # Panics
///
/// Panics if `std_dev` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev >= 0.0,
        "std_dev must be non-negative, got {std_dev}"
    );
    if std_dev == 0.0 {
        return mean;
    }
    loop {
        let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            let factor = (-2.0 * s.ln() / s).sqrt();
            return mean + std_dev * u * factor;
        }
    }
}

/// Samples a log-normal variate parameterized by the mean and standard
/// deviation of the *underlying normal* (`mu`, `sigma`).
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples a log-normal variate parameterized by its own desired `mean` and
/// `std_dev` (more convenient for workload modelling).
///
/// # Panics
///
/// Panics if `mean` is not strictly positive or `std_dev` is negative.
pub fn log_normal_mean_std<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(mean > 0.0, "log-normal mean must be positive, got {mean}");
    assert!(
        std_dev >= 0.0,
        "std_dev must be non-negative, got {std_dev}"
    );
    if std_dev == 0.0 {
        return mean;
    }
    let variance_ratio = (std_dev / mean).powi(2);
    let sigma2 = (1.0 + variance_ratio).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    log_normal(rng, mu, sigma2.sqrt())
}

/// Samples a Pareto variate with scale `x_min` and shape `alpha`.
///
/// # Panics
///
/// Panics if `x_min` or `alpha` is not strictly positive.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    assert!(x_min > 0.0, "pareto x_min must be positive, got {x_min}");
    assert!(alpha > 0.0, "pareto alpha must be positive, got {alpha}");
    let u: f64 = rng.random();
    x_min / (1.0 - u).powf(1.0 / alpha)
}

/// Picks an index in `[0, weights.len())` with probability proportional to
/// the weight at that index.
///
/// Zero weights are legal (never picked unless all weights are zero, in
/// which case the choice is uniform). Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if any weight is negative or non-finite.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    if weights.is_empty() {
        return None;
    }
    let mut total = 0.0f64;
    for (i, &w) in weights.iter().enumerate() {
        assert!(
            w >= 0.0 && w.is_finite(),
            "weight {i} must be finite and non-negative, got {w}"
        );
        total += w;
    }
    if total == 0.0 {
        return Some(rng.random_range(0..weights.len()));
    }
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return Some(i);
        }
    }
    // Floating-point round-off can leave a sliver; fall back to the last
    // index with non-zero weight.
    weights.iter().rposition(|&w| w > 0.0)
}

/// Samples `true` with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    let p = p.clamp(0.0, 1.0);
    rng.random::<f64>() < p
}

/// Samples a uniform variate in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi})");
    if lo == hi {
        return lo;
    }
    lo + rng.random::<f64>() * (hi - lo)
}

/// Shuffles a slice in place (Fisher–Yates).
pub fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, items: &mut [T]) {
    let n = items.len();
    if n <= 1 {
        return;
    }
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEC0DE)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 0.25)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean} far from 4.0");
    }

    #[test]
    fn poisson_small_mean() {
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut r, 3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean} far from 3.5");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<u64> = (0..n).map(|_| poisson(&mut r, 400.0)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        assert!((mean - 400.0).abs() < 2.0, "mean {mean} far from 400");
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((var - 400.0).abs() < 30.0, "variance {var} far from 400");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut r = rng();
        assert_eq!(normal(&mut r, 7.0, 0.0), 7.0);
    }

    #[test]
    fn log_normal_mean_std_matches_request() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| log_normal_mean_std(&mut r, 300.0, 150.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 300.0).abs() < 5.0, "mean {mean} far from 300");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(pareto(&mut r, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = rng();
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut r, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio} far from 3.0");
    }

    #[test]
    fn weighted_index_edge_cases() {
        let mut r = rng();
        assert_eq!(weighted_index(&mut r, &[]), None);
        // All-zero weights fall back to uniform choice.
        let idx = weighted_index(&mut r, &[0.0, 0.0]).unwrap();
        assert!(idx < 2);
    }

    #[test]
    fn uniform_bounds() {
        let mut r = rng();
        for _ in 0..1_000 {
            let x = uniform(&mut r, -2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
        assert_eq!(uniform(&mut r, 3.0, 3.0), 3.0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        assert!(!bernoulli(&mut r, 0.0));
        assert!(bernoulli(&mut r, 1.0));
        // Out-of-range probabilities are clamped, not panics.
        assert!(bernoulli(&mut r, 2.0));
        assert!(!bernoulli(&mut r, -1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng();
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut r, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }
}
