//! The parallel-harness determinism oracle.
//!
//! The contract behind `repro --jobs N`: thread count decides only *who*
//! computes each sweep task, never what any report contains. These tests
//! pin it the same way the `ReshareScope::Global` and `TickSweep::Full`
//! oracles pin their incremental counterparts — run the reference path
//! (`jobs = 1`, a plain sequential loop) and a contended parallel path
//! (`jobs = 4`, forced even on fewer cores; threads do not need cores to
//! interleave) and assert the rendered reports are byte-identical.
//!
//! `micro` is the one deliberate exception: its report *is* a table of
//! measured wall-clock times, so its stdout is not comparable across any
//! two runs, parallel or not.

use harvest_core::{run_experiment, Scale};

/// A scale small enough to run every experiment twice in a test, while
/// still fanning out multiple tasks per experiment (2 runs, 2 scalings,
/// several utilization points).
fn tiny(jobs: usize) -> Scale {
    let mut s = Scale::quick();
    s.dc_scale = 0.02;
    s.runs = 2;
    s.sched_hours = 1;
    s.durability_months = 2;
    s.availability_days = 1;
    s.utilizations = vec![0.45];
    s.jobs = jobs;
    s
}

/// Every report-generating experiment (micro excluded, see above;
/// fig14 excluded from the in-process sweep purely for test budget —
/// its parallel machinery is exactly fig13's task flattening plus
/// fig15's parallel datacenter generation, both pinned here).
const EXPERIMENTS: [&str; 13] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10", "fig11", "fig12",
    "fig13", "fig15",
];

#[test]
fn reports_are_byte_identical_at_any_thread_count() {
    for id in EXPERIMENTS {
        let sequential = run_experiment(id, &tiny(1)).expect("experiment runs");
        let parallel = run_experiment(id, &tiny(4)).expect("experiment runs");
        assert!(
            sequential == parallel,
            "{id} report differs between --jobs 1 and --jobs 4:\n\
             --- jobs=1 ---\n{sequential}\n--- jobs=4 ---\n{parallel}"
        );
        assert!(sequential.contains("Figure"), "{id} missing title");
    }
}

#[test]
fn fig16_is_byte_identical_at_any_thread_count() {
    // fig16 appends two extra utilization points (0.70, 0.80), so it is
    // the widest sweep in the suite — kept out of the shared loop so a
    // failure names it directly.
    let sequential = run_experiment("fig16", &tiny(1)).expect("experiment runs");
    let parallel = run_experiment("fig16", &tiny(4)).expect("experiment runs");
    assert_eq!(sequential, parallel);
}

#[test]
fn repro_stdout_is_byte_identical_across_jobs() {
    // The binary-level pin: full stdout (reports + print layer) of the
    // cheap experiments must not move with --jobs; the wall-clock
    // timing table goes to stderr precisely so this holds.
    let run = |jobs: &str| {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["fig7", "fig8", "--jobs", jobs])
            .output()
            .expect("repro runs");
        assert!(out.status.success(), "repro --jobs {jobs} failed");
        out
    };
    let sequential = run("1");
    let parallel = run("4");
    assert_eq!(
        sequential.stdout, parallel.stdout,
        "repro stdout differs between --jobs 1 and --jobs 4"
    );
    let stderr = String::from_utf8_lossy(&parallel.stderr);
    assert!(
        stderr.contains("timing (4 workers):") && stderr.contains("total"),
        "missing timing table on stderr: {stderr}"
    );
}

#[test]
fn recording_leaves_stdout_byte_identical() {
    // The observability layer's stdout contract: turning the recorder
    // on (--trace-out/--metrics-out) must not move a single stdout
    // byte — recording writes only to the named files and stderr.
    let tmp = std::env::temp_dir();
    let trace = tmp.join(format!("harvest-obs-trace-{}.json", std::process::id()));
    let metrics = tmp.join(format!("harvest-obs-metrics-{}.json", std::process::id()));

    let off = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig7", "fig8", "--jobs", "2"])
        .output()
        .expect("repro runs");
    assert!(off.status.success(), "recorder-off run failed");
    let on = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig7", "fig8", "--jobs", "2"])
        .args(["--trace-out".as_ref(), trace.as_os_str()])
        .args(["--metrics-out".as_ref(), metrics.as_os_str()])
        .output()
        .expect("repro runs");
    assert!(on.status.success(), "recorder-on run failed");
    assert_eq!(
        off.stdout, on.stdout,
        "recording changed repro's stdout bytes"
    );

    // Both exports exist and parse with the in-repo JSON parser.
    let trace_text = std::fs::read_to_string(&trace).expect("trace file written");
    let trace_json = harvest_sim::obs::json::parse(&trace_text).expect("trace parses");
    assert!(
        trace_json
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .is_some_and(|evs| !evs.is_empty()),
        "trace has no events"
    );
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let metrics_json = harvest_sim::obs::json::parse(&metrics_text).expect("metrics parses");
    assert!(
        metrics_json.get("counters").is_some(),
        "metrics report lacks counters"
    );

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
}
