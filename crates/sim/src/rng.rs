//! Reproducible seed derivation.
//!
//! Every experiment takes one `u64` master seed. Components derive child
//! seeds from `(master, stream-label)` via SplitMix64 so that, e.g., the
//! trace generator and the scheduler use decorrelated streams and adding a
//! new consumer never perturbs existing ones.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One round of the SplitMix64 output function.
///
/// SplitMix64 is the standard generator for seeding other PRNGs; a single
/// round is an excellent 64-bit mixer (it is bijective and passes strict
/// avalanche tests).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives a child seed from a master seed and a stream label.
pub fn derive_seed(master: u64, stream: &str) -> u64 {
    // FNV-1a over the label, then mix with the master via SplitMix64.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in stream.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(master ^ splitmix64(h))
}

/// Derives a child seed indexed by an integer (e.g., per-server streams).
pub fn derive_seed_indexed(master: u64, stream: &str, index: u64) -> u64 {
    splitmix64(derive_seed(master, stream) ^ splitmix64(index.wrapping_add(1)))
}

/// Creates a [`StdRng`] for a named stream of the master seed.
pub fn stream_rng(master: u64, stream: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, stream))
}

/// Creates a [`StdRng`] for an indexed stream of the master seed.
pub fn indexed_rng(master: u64, stream: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed_indexed(master, stream, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, "trace"), derive_seed(42, "trace"));
        assert_eq!(
            derive_seed_indexed(42, "server", 7),
            derive_seed_indexed(42, "server", 7)
        );
    }

    #[test]
    fn streams_are_decorrelated() {
        assert_ne!(derive_seed(42, "trace"), derive_seed(42, "sched"));
        assert_ne!(derive_seed(42, "trace"), derive_seed(43, "trace"));
        assert_ne!(
            derive_seed_indexed(42, "server", 0),
            derive_seed_indexed(42, "server", 1)
        );
    }

    #[test]
    fn splitmix_is_bijective_on_samples() {
        // Distinct inputs must give distinct outputs (spot check).
        let outs: Vec<u64> = (0..1_000u64).map(splitmix64).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len());
    }

    #[test]
    fn stream_rngs_replay() {
        let a: Vec<u32> = {
            let mut r = stream_rng(7, "x");
            (0..10).map(|_| r.random()).collect()
        };
        let b: Vec<u32> = {
            let mut r = stream_rng(7, "x");
            (0..10).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
    }
}
