//! Figure 16: data availability under load (§6.4).

use harvest_cluster::{Datacenter, UtilizationView};
use harvest_dfs::availability::{simulate_availability, AvailabilityConfig, AvailabilityResult};
use harvest_dfs::placement::PlacementPolicy;
use harvest_sim::obs::json;
use harvest_sim::par::par_map;
use harvest_sim::SimDuration;
use harvest_trace::datacenter::DatacenterProfile;

use super::STORAGE_CELLS as CELLS;
use crate::checkpoint::{self, get_f64, get_u64, hex_f64, hex_u64, obj, Journaled};
use crate::report::{num, sci, Table};
use crate::scale::Scale;

impl Journaled for AvailabilityResult {
    fn encode(&self) -> String {
        obj(&[
            ("nb", hex_u64(self.n_blocks)),
            ("acc", hex_u64(self.accesses)),
            ("fail", hex_u64(self.failed)),
            ("failp", hex_f64(self.failed_percent)),
            ("mu", hex_f64(self.mean_utilization)),
            ("frr", hex_u64(self.forced_remote_reads)),
            ("mread", hex_f64(self.mean_read_ms)),
            ("p99", hex_f64(self.p99_read_ms)),
            ("dof", hex_u64(self.disk_only_failures)),
            ("fdt", hex_u64(self.fault_down_ticks)),
        ])
    }

    fn decode(v: &json::Value) -> Option<Self> {
        Some(AvailabilityResult {
            n_blocks: get_u64(v, "nb")?,
            accesses: get_u64(v, "acc")?,
            failed: get_u64(v, "fail")?,
            failed_percent: get_f64(v, "failp")?,
            mean_utilization: get_f64(v, "mu")?,
            forced_remote_reads: get_u64(v, "frr")?,
            mean_read_ms: get_f64(v, "mread")?,
            p99_read_ms: get_f64(v, "p99")?,
            disk_only_failures: get_u64(v, "dof")?,
            fault_down_ticks: get_u64(v, "fdt")?,
        })
    }
}

/// Figure 16: failed accesses vs utilization (linear scaling, DC-9) for
/// HDFS-Stock and HDFS-H at three- and four-way replication.
///
/// The (utilization × policy × run) matrix is flattened into
/// independent tasks over `scale.jobs` workers; the scaled utilization
/// views are hoisted and shared read-only. Aggregation replays the
/// sequential loop's order, so the report is byte-identical at any
/// thread count.
pub fn fig16(scale: &Scale) -> String {
    let profile = DatacenterProfile::dc(9).scaled(scale.dc_scale);
    let dc = Datacenter::generate(&profile, scale.seed);
    let traces: Vec<_> = dc.tenants.iter().map(|t| &t.trace).collect();

    let mut table = Table::new(
        format!(
            "Figure 16: failed accesses vs utilization, DC-9 ({} servers), linear scaling",
            dc.n_servers()
        ),
        &["utilization", "Stock R=3", "H R=3", "Stock R=4", "H R=4"],
    );
    // Extend the sweep toward the 2/3 busy threshold where failures rise.
    let mut utils = scale.utilizations.clone();
    for extra in [0.70, 0.80] {
        if !utils.iter().any(|&u| (u - extra).abs() < 1e-9) {
            utils.push(extra);
        }
    }

    // Hoist the per-utilization views (calibration + playback
    // precompute), themselves an independent parallel sweep.
    let views: Vec<UtilizationView> = par_map(scale.jobs, &utils, |&util| {
        let factor = harvest_trace::scaling::calibrate(
            &traces,
            harvest_trace::scaling::ScalingKind::Linear,
            util,
        );
        UtilizationView::scaled(&dc, harvest_trace::scaling::ScalingKind::Linear, factor)
    });

    // The task matrix, utilization-major then cell then run.
    struct Task {
        util: usize,
        cell: usize,
        r: usize,
    }
    let mut tasks = Vec::with_capacity(utils.len() * CELLS.len() * scale.runs);
    for util in 0..utils.len() {
        for cell in 0..CELLS.len() {
            for r in 0..scale.runs {
                tasks.push(Task { util, cell, r });
            }
        }
    }
    let swept = checkpoint::sweep(
        scale,
        "fig16",
        &tasks,
        |t| format!("u{:.2}/cell{}/r{}", utils[t.util], t.cell, t.r),
        |t, _cancel| {
            let (policy, replication) = CELLS[t.cell];
            let mut cfg =
                AvailabilityConfig::paper(policy, replication, scale.run_seed("fig16", t.r));
            cfg.span = SimDuration::from_days(scale.availability_days);
            cfg.network = scale.network;
            cfg.disk = scale.disk;
            // Every cell of a run index sees the same storm, so the policy
            // comparison is under identical fault pressure. Empty plan
            // (bitwise no-op) without `--faults PROFILE`.
            cfg.faults = scale.fault_plan(
                dc.n_servers(),
                scale.run_seed("fig16-faults", t.r),
                cfg.span,
            );
            simulate_availability(&dc, &views[t.util], &cfg)
        },
    );
    let results = swept.results;

    for (u, &util) in utils.iter().enumerate() {
        let mut row = vec![num(util, 2)];
        // Remote-read and disk aggregates for Stock R=3, averaged over
        // the same runs as the failure column they sit next to.
        let mut remote_reads = 0.0;
        let mut read_ms = 0.0;
        let mut p99_ms: f64 = 0.0;
        let mut disk_failures = 0.0;
        for (c, &(policy, replication)) in CELLS.iter().enumerate() {
            let mut total = 0.0;
            let start = (u * CELLS.len() + c) * scale.runs;
            for result in results[start..start + scale.runs].iter().flatten() {
                total += result.failed_percent;
                if (scale.network.is_some() || scale.disk.is_some())
                    && policy == PlacementPolicy::Stock
                    && replication == 3
                {
                    remote_reads += result.forced_remote_reads as f64 / scale.runs as f64;
                    read_ms += result.mean_read_ms / scale.runs as f64;
                    p99_ms = p99_ms.max(result.p99_read_ms);
                    disk_failures += result.disk_only_failures as f64 / scale.runs as f64;
                }
            }
            row.push(sci(total / scale.runs as f64));
        }
        table.row(&row);
        if scale.network.is_some() || scale.disk.is_some() {
            let disk_note = if scale.disk.is_some() {
                format!(", {disk_failures:.0} disk-only failures/run")
            } else {
                String::new()
            };
            table.note(format!(
                "util {util:.2} (Stock R=3): {remote_reads:.0} forced-remote reads/run, \
                 mean over all served reads {read_ms:.1} ms, worst-run p99 {p99_ms:.1} ms\
                 {disk_note}"
            ));
        }
    }
    if let Some(note) = swept.note {
        table.note(note);
    }
    // Fault accounting only when a profile is armed — the default
    // report stays byte-identical to a build without fault injection.
    if let Some(profile) = scale.faults {
        let down: u64 = results.iter().flatten().map(|r| r.fault_down_ticks).sum();
        table.note(format!(
            "fault profile '{}': {} server-ticks spent fault-down across {} simulations",
            profile.name(),
            down,
            results.len()
        ));
    }
    table.note("paper: HDFS-H shows no unavailability up to ~40% utilization (50% under root scaling) and low unavailability at 50%; HDFS-H at R=3 beats Stock at R=4 below ~75%; failures climb steeply past the 66% busy threshold");
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_trace::scaling::ScalingKind;

    #[test]
    fn history_availability_dominates_stock() {
        let profile = DatacenterProfile::dc(9).scaled(0.02);
        let dc = Datacenter::generate(&profile, 42);
        let traces: Vec<_> = dc.tenants.iter().map(|t| &t.trace).collect();
        let factor = harvest_trace::scaling::calibrate(&traces, ScalingKind::Linear, 0.55);
        let view = UtilizationView::scaled(&dc, ScalingKind::Linear, factor);
        let run = |policy| {
            let mut cfg = AvailabilityConfig::paper(policy, 3, 7);
            cfg.span = SimDuration::from_days(2);
            simulate_availability(&dc, &view, &cfg).failed_percent
        };
        assert!(run(PlacementPolicy::History) <= run(PlacementPolicy::Stock));
    }
}
