//! Figures 10–12: the 102-server testbed experiments (§6.3).
//!
//! The testbed is the DC-9 scale-down of §6.1: 21 primary tenants on 102
//! servers, each running a Lucene-like search service, with 52 TPC-DS
//! queries arriving Poisson (mean 300 s) for five hours. The paper
//! measures the fleet's per-minute average of per-server p99 latencies;
//! here the latency comes from the calibrated queueing model driven by
//! each server's (primary utilization, harvested cores) samples.

use harvest_cluster::{Datacenter, ServerId, UtilizationView};
use harvest_dfs::availability::busy_mask;
use harvest_dfs::placement::{PlacementPolicy, Placer};
use harvest_dfs::store::{BlockId, BlockStore};
use harvest_jobs::tpcds::{scale_job, tpcds_suite};
use harvest_jobs::workload::Workload;
use harvest_sched::policy::SchedPolicy;
use harvest_sched::sim::{SchedSim, SchedSimConfig};
use harvest_sched::stats::SimStats;
use harvest_service::LatencyModel;
use harvest_sim::metrics::StreamingStats;
use harvest_sim::rng::stream_rng;
use harvest_sim::{dist, SimDuration, SimTime};
use rand::RngExt;

use crate::checkpoint::sweep_plain;
use crate::report::{num, Table};
use crate::scale::Scale;

fn testbed(scale: &Scale) -> (Datacenter, UtilizationView) {
    let specs = harvest_trace::datacenter::DatacenterProfile::testbed_dc9(scale.seed);
    let dc = Datacenter::from_specs("testbed".into(), &specs, scale.seed);
    let view = UtilizationView::unscaled(&dc);
    (dc, view)
}

/// Duration multiplier for the testbed workload: the paper's Hive jobs
/// average ~1000 s; the synthetic suite's critical paths sit around a
/// third of that.
const TESTBED_DURATION_FACTOR: f64 = 3.0;

fn run_testbed(scale: &Scale, policy: SchedPolicy, record: bool) -> SimStats {
    let mut rec = harvest_sim::obs::Recorder::off();
    run_testbed_recorded(scale, policy, record, &mut rec)
}

/// [`run_testbed`] with an observability recorder (identical stats —
/// recording never changes a trajectory).
fn run_testbed_recorded(
    scale: &Scale,
    policy: SchedPolicy,
    record: bool,
    rec: &mut harvest_sim::obs::Recorder,
) -> SimStats {
    let (dc, view) = testbed(scale);
    let horizon = SimDuration::from_hours(scale.sched_hours.min(5));
    let mut rng = stream_rng(scale.run_seed("testbed-wl", 0), "wl");
    let suite: Vec<_> = tpcds_suite()
        .iter()
        .map(|q| scale_job(q, TESTBED_DURATION_FACTOR, 1.0))
        .collect();
    let workload = Workload::poisson(&mut rng, suite, SimDuration::from_secs(300), horizon);
    let mut cfg = SchedSimConfig::testbed(policy, scale.run_seed("testbed", 0));
    cfg.horizon = horizon;
    cfg.drain = SimDuration::from_hours(2);
    cfg.record_server_load = record;
    cfg.network = scale.network;
    cfg.sharing = scale.sharing;
    cfg.sweep = scale.tick_sweep;
    SchedSim::new(&dc, &view, &workload, cfg).run_recorded(rec)
}

/// The `sched/stage` blame line of one recorded YARN-PT testbed run:
/// where the batch stages' time went (running vs shuffle-blocked vs
/// queued vs evicted). Pure sim time, so the line is deterministic
/// across `--jobs` and recording settings.
fn testbed_stage_blame(scale: &Scale) -> Option<String> {
    let mut rec = harvest_sim::obs::Recorder::new("blame");
    let _ = run_testbed_recorded(scale, SchedPolicy::PrimaryAware, false, &mut rec);
    let analysis = harvest_sim::obs::analyze::analyze_recorder(&rec).ok()?;
    analysis
        .states
        .iter()
        .find(|s| s.name == "sched/stage")
        .map(|s| s.blame_line())
}

/// Figure 10: the primary tenant's tail latency under each YARN variant.
pub fn fig10(scale: &Scale) -> String {
    let model = LatencyModel::paper_calibrated();
    let mut table = Table::new(
        "Figure 10: primary tenant p99 latency (fleet average per minute, ms)",
        &[
            "system",
            "avg",
            "p95 minute",
            "worst minute",
            "avg diff vs no-harvest",
        ],
    );

    // One simulation per scheduler, fanned out over the sweep workers.
    // The no-harvesting baseline needs no simulation of its own: it is
    // the History run's utilization playback with the harvested cores
    // zeroed, so its series is derived from the same stats.
    let swept = sweep_plain(
        scale,
        "fig10",
        &SchedPolicy::ALL,
        |p| p.to_string(),
        |&policy, _cancel| run_testbed(scale, policy, true),
    );
    let all_stats = swept.results;
    let series_for = |stats: &SimStats, zero_cores: bool| -> Vec<f64> {
        let n_ticks = stats.server_load[0].len();
        (0..n_ticks)
            .map(|k| {
                let loads: Vec<(f64, u32)> = stats
                    .server_load
                    .iter()
                    .map(|s| {
                        let cores = if zero_cores { 0 } else { s[k].secondary_cores };
                        (s[k].primary_util, cores)
                    })
                    .collect();
                model.fleet_p99_ms(&loads, scale.seed, k as u64)
            })
            .collect()
    };

    let history = SchedPolicy::ALL
        .iter()
        .position(|p| *p == SchedPolicy::History)
        .expect("History is a scheduler");
    // The no-harvesting baseline is derived from the History run; when
    // that run is quarantined the baseline (and the diff column) cannot
    // be computed and the rows degrade to dashes.
    let base_avg = match &all_stats[history] {
        Some(stats) => {
            let base_series = series_for(stats, true);
            let base_avg = mean(&base_series);
            table.row(&[
                "No Harvesting".into(),
                num(base_avg, 0),
                num(quantile(&base_series, 0.95), 0),
                num(max(&base_series), 0),
                num(0.0, 0),
            ]);
            Some(base_avg)
        }
        None => {
            table.row(&[
                "No Harvesting".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            None
        }
    };
    for (policy, stats) in SchedPolicy::ALL.iter().zip(&all_stats) {
        match stats {
            Some(stats) => {
                let series = series_for(stats, false);
                let diff = match base_avg {
                    Some(base) => num(mean(&series) - base, 0),
                    None => "-".into(),
                };
                table.row(&[
                    policy.to_string(),
                    num(mean(&series), 0),
                    num(quantile(&series, 0.95), 0),
                    num(max(&series), 0),
                    diff,
                ]);
            }
            None => {
                table.row(&[
                    policy.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    if let Some(note) = swept.note {
        table.note(note);
    }
    table.note("paper: YARN-Stock hurts tail latency significantly; YARN-PT keeps it low and consistent; YARN-H/Tez-H nearly matches No-Harvesting (max diff 44 ms)");
    table.render()
}

/// Figure 11: secondary tenants' job run times under each YARN variant.
pub fn fig11(scale: &Scale) -> String {
    let mut table = Table::new(
        "Figure 11: batch job execution times (s)",
        &["system", "jobs", "mean", "median", "max", "task kills"],
    );
    // One simulation per scheduler, fanned out over the sweep workers.
    let swept = sweep_plain(
        scale,
        "fig11",
        &SchedPolicy::ALL,
        |p| p.to_string(),
        |&policy, _cancel| {
            let stats = run_testbed(scale, policy, false);
            let mut times: Vec<f64> = stats
                .jobs
                .iter()
                .filter_map(|j| j.execution_time.map(|d| d.as_secs_f64()))
                .collect();
            times.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN"));
            (times, stats.total_kills)
        },
    );
    for (policy, outcome) in SchedPolicy::ALL.iter().zip(&swept.results) {
        match outcome {
            Some((times, kills)) => table.row(&[
                policy.to_string(),
                times.len().to_string(),
                num(mean(times), 0),
                num(quantile(times, 0.5), 0),
                num(max(times), 0),
                kills.to_string(),
            ]),
            None => table.row(&[
                policy.to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        };
    }
    if let Some(note) = swept.note {
        table.note(note);
    }
    table.note("paper: YARN-Stock is fastest (1181 s avg for YARN-PT vs 938 s for YARN-H) but ruins the primary; YARN-H/Tez-H beats YARN-PT by killing fewer tasks");
    if let Some(line) = testbed_stage_blame(scale) {
        table.note(format!("stage blame (YARN-PT): {line}"));
    }
    table.render()
}

/// CPU cost of serving one 256 MB block access, in core-seconds.
const ACCESS_CORE_SECS: f64 = 2.0;

/// Cluster-wide block accesses per second in the Figure 12 experiment.
const ACCESS_RATE: f64 = 60.0;

/// Mean utilization the testbed traces are scaled to for the storage
/// experiment — high enough that primaries actually cross the 2/3 busy
/// threshold, as the paper's five-hour production traces did.
const FIG12_UTILIZATION: f64 = 0.40;

/// Figure 12: the primary tenant's tail latency under each HDFS variant,
/// plus failed accesses.
pub fn fig12(scale: &Scale) -> String {
    let model = LatencyModel::paper_calibrated();
    let (dc, _) = testbed(scale);
    let traces: Vec<_> = dc.tenants.iter().map(|t| &t.trace).collect();
    let factor = harvest_trace::scaling::calibrate(
        &traces,
        harvest_trace::scaling::ScalingKind::Linear,
        FIG12_UTILIZATION,
    );
    let view = UtilizationView::scaled(&dc, harvest_trace::scaling::ScalingKind::Linear, factor);
    let tick = harvest_trace::SAMPLE_INTERVAL;
    let span = SimDuration::from_hours(scale.sched_hours.min(5));
    let n_ticks = span.div_duration(tick) as usize;

    let mut table = Table::new(
        "Figure 12: primary tenant p99 latency under HDFS variants (ms)",
        &[
            "system",
            "avg",
            "worst minute",
            "failed accesses",
            "avg diff vs no-harvest",
        ],
    );

    // No-harvesting baseline.
    let mut base_series = Vec::with_capacity(n_ticks);
    for k in 0..n_ticks {
        let now = SimTime::ZERO + tick.mul_f64(k as f64);
        let loads: Vec<(f64, u32)> = (0..dc.n_servers())
            .map(|s| (view.server_util(ServerId(s as u32), now), 0))
            .collect();
        base_series.push(model.fleet_p99_ms(&loads, scale.seed, k as u64));
    }
    let base_avg = mean(&base_series);
    table.row(&[
        "No Harvesting".into(),
        num(base_avg, 0),
        num(max(&base_series), 0),
        "0".into(),
        num(0.0, 0),
    ]);

    // One self-contained task per HDFS variant: each builds its own
    // RNG stream, placer, block store, and latency series from shared
    // read-only state, so the variants run concurrently yet
    // byte-identically to the sequential loop they replaced.
    let swept = sweep_plain(
        scale,
        "fig12",
        &PlacementPolicy::ALL,
        |p| p.to_string(),
        |&policy, _cancel| {
            let mut rng = stream_rng(scale.run_seed("fig12", 0), "access");
            let placer = Placer::new(&dc, policy);
            let mut store = BlockStore::new(&dc);
            // Fill 40% of harvestable space with three-way blocks.
            let busy0 = busy_mask(&dc, &view, SimTime::ZERO);
            let target = (dc.total_harvest_blocks() as f64 * 0.4 / 3.0) as u64;
            let mut n_blocks = 0u64;
            for _ in 0..target {
                let writer = ServerId(rng.random_range(0..dc.n_servers()) as u32);
                match placer.place_new(&mut rng, &store, writer, 3, Some(&busy0)) {
                    Some(p) => {
                        store.create_block(&p.servers);
                        n_blocks += 1;
                    }
                    None => break,
                }
            }

            let mut failed = 0u64;
            let mut series = Vec::with_capacity(n_ticks);
            let accesses_per_tick = ACCESS_RATE * tick.as_secs_f64();
            for k in 0..n_ticks {
                let now = SimTime::ZERO + tick.mul_f64(k as f64);
                let busy = busy_mask(&dc, &view, now);
                let mut dn_load = vec![0u64; dc.n_servers()];
                let n_acc = dist::poisson(&mut rng, accesses_per_tick);
                for _ in 0..n_acc {
                    let block = BlockId(rng.random_range(0..n_blocks));
                    let replicas = store.replicas(block);
                    match policy {
                        PlacementPolicy::Stock => {
                            // Oblivious: the client reads any replica, busy
                            // primary or not.
                            let pick = replicas[rng.random_range(0..replicas.len())];
                            dn_load[pick as usize] += 1;
                        }
                        _ => {
                            // DN-H denies accesses at busy servers; the
                            // client retries another replica.
                            let open: Vec<u32> = replicas
                                .iter()
                                .copied()
                                .filter(|&s| !busy[s as usize])
                                .collect();
                            if open.is_empty() {
                                failed += 1;
                            } else {
                                let pick = open[rng.random_range(0..open.len())];
                                dn_load[pick as usize] += 1;
                            }
                        }
                    }
                }
                let loads: Vec<(f64, u32)> = (0..dc.n_servers())
                    .map(|s| {
                        let util = view.server_util(ServerId(s as u32), now);
                        let dn_cores = (dn_load[s] as f64 * ACCESS_CORE_SECS / tick.as_secs_f64())
                            .round() as u32;
                        (util, dn_cores)
                    })
                    .collect();
                series.push(model.fleet_p99_ms(&loads, scale.seed ^ 0xF1612, k as u64));
            }
            (series, failed)
        },
    );
    for (policy, outcome) in PlacementPolicy::ALL.iter().zip(&swept.results) {
        match outcome {
            Some((series, failed)) => table.row(&[
                policy.to_string(),
                num(mean(series), 0),
                num(max(series), 0),
                failed.to_string(),
                num(mean(series) - base_avg, 0),
            ]),
            None => table.row(&[
                policy.to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        };
    }
    if let Some(note) = swept.note {
        table.note(note);
    }
    table.note("paper: HDFS-Stock degrades tail latency significantly; HDFS-PT and HDFS-H stay within ~47 ms of no-harvesting; HDFS-PT had 47 failed accesses, HDFS-H zero");
    table.render()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn max(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut s = StreamingStats::new();
    for &x in xs {
        s.push(x);
    }
    // For report purposes a sorted-percentile is clearer than streaming.
    let mut sorted = xs.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN"));
    if sorted.is_empty() {
        return s.mean();
    }
    let pos = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[pos]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        let mut s = Scale::quick();
        s.sched_hours = 2;
        s
    }

    #[test]
    fn fig11_orderings_hold() {
        let out = fig11(&tiny());
        assert!(out.contains("YARN-Stock"));
        assert!(out.contains("YARN-H/Tez-H"));
        // Stock never kills.
        let stock_line = out
            .lines()
            .find(|l| l.contains("YARN-Stock"))
            .expect("stock row");
        assert!(stock_line.trim_end().ends_with("0 |"), "{stock_line}");
    }

    #[test]
    fn fig10_reports_all_systems() {
        let out = fig10(&tiny());
        for name in ["No Harvesting", "YARN-Stock", "YARN-PT", "YARN-H/Tez-H"] {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn fig12_history_has_fewest_failures() {
        let out = fig12(&tiny());
        let failed = |name: &str| -> u64 {
            let line = out.lines().find(|l| l.contains(name)).expect("row");
            let cells: Vec<&str> = line.split('|').map(|c| c.trim()).collect();
            cells[cells.len() - 3].parse().expect("failed count")
        };
        assert!(failed("HDFS-H") <= failed("HDFS-PT"));
        assert_eq!(failed("HDFS-Stock"), 0, "stock never denies accesses");
    }
}
