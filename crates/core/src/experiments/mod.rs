//! One module per reproduced figure.

use harvest_dfs::placement::PlacementPolicy;

/// The four (policy, replication) cells both storage figures (15 and
/// 16) sweep, in the paper's column order — shared so the two reports
/// can never disagree on what a column means.
pub(crate) const STORAGE_CELLS: [(PlacementPolicy, usize); 4] = [
    (PlacementPolicy::Stock, 3),
    (PlacementPolicy::History, 3),
    (PlacementPolicy::Stock, 4),
    (PlacementPolicy::History, 4),
];

pub mod availability;
pub mod characterization;
pub mod dag;
pub mod durability;
pub mod grid;
pub mod micro;
pub mod sched_sim;
pub mod testbed;
