//! Inter-stage shuffle volumes.
//!
//! A Hive-style DAG moves data between stages: every task of an upstream
//! stage partitions its output across the downstream stage's tasks, and
//! the whole volume crosses the network before the downstream stage can
//! make progress. The seed model treated that movement as free; with the
//! `harvest-net` fabric it becomes flows that contend with repair
//! traffic and each other.
//!
//! The volume model is deliberately simple and deterministic: each
//! upstream task contributes [`DEFAULT_BYTES_PER_TASK`] of intermediate
//! output to every dependent edge (Hive map outputs of the paper's era
//! were tens of MB per task). Scale it per experiment through
//! [`stage_shuffle_bytes`]'s `bytes_per_task` parameter.

use crate::dag::{DagJob, StageId};

/// Intermediate bytes one upstream task ships to a dependent stage
/// (32 MB — a typical compressed map-output partition set).
pub const DEFAULT_BYTES_PER_TASK: u64 = 32 * 1024 * 1024;

/// Bytes that must cross the network before `stage` can start: the sum
/// over its dependencies of upstream tasks × `bytes_per_task`. Root
/// stages read their input from the distributed store, not a shuffle,
/// and cost zero here.
pub fn stage_shuffle_bytes(job: &DagJob, stage: StageId, bytes_per_task: u64) -> u64 {
    job.stages[stage.0]
        .deps
        .iter()
        .map(|d| job.stages[d.0].tasks as u64 * bytes_per_task)
        .sum()
}

/// Total shuffle bytes a job moves across all its edges.
pub fn job_shuffle_bytes(job: &DagJob, bytes_per_task: u64) -> u64 {
    (0..job.n_stages())
        .map(|s| stage_shuffle_bytes(job, StageId(s), bytes_per_task))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::stage;

    fn diamond() -> DagJob {
        DagJob::new(
            "diamond",
            vec![
                stage("m1", 10, 30, vec![]),
                stage("m2", 20, 30, vec![]),
                stage("r1", 5, 60, vec![0, 1]),
                stage("r2", 1, 10, vec![2]),
            ],
        )
    }

    #[test]
    fn roots_shuffle_nothing() {
        let j = diamond();
        assert_eq!(stage_shuffle_bytes(&j, StageId(0), 1), 0);
        assert_eq!(stage_shuffle_bytes(&j, StageId(1), 1), 0);
    }

    #[test]
    fn volumes_follow_upstream_task_counts() {
        let j = diamond();
        assert_eq!(stage_shuffle_bytes(&j, StageId(2), 100), 3_000);
        assert_eq!(stage_shuffle_bytes(&j, StageId(3), 100), 500);
        assert_eq!(job_shuffle_bytes(&j, 100), 3_500);
    }

    #[test]
    fn q19_shuffles_dominated_by_the_fact_scan() {
        let j = crate::tpcds::query_19();
        // Reducer 3 consumes Mapper 2's 469 tasks.
        let r3 = stage_shuffle_bytes(&j, StageId(6), DEFAULT_BYTES_PER_TASK);
        assert_eq!(r3, 469 * DEFAULT_BYTES_PER_TASK);
        let total = job_shuffle_bytes(&j, DEFAULT_BYTES_PER_TASK);
        assert!(r3 * 2 > total, "fact-scan edge should dominate");
    }
}
