//! Heartbeat-thread behaviour under primary I/O pressure (§7, lesson 2).
//!
//! "The manager throttles the secondary tenants' disk activity when the
//! primary tenant performs substantial disk I/O. This caused the DN
//! heartbeats on these servers to stop flowing, as the heartbeat thread
//! does synchronous I/O to get the status of modified blocks and free
//! space. As a result, the NN started a replication storm for data that
//! it thought was lost. We then changed the heartbeat thread to become
//! asynchronous and report the status that it most recently found."
//!
//! This module replays that incident two ways:
//!
//! * [`replay_heartbeats`] — the original scripted replay: a boolean
//!   per-interval "was the isolation manager throttling" trace decides
//!   whether a synchronous heartbeat flows;
//! * [`replay_heartbeats_disk`] — the mechanistic replay over a modeled
//!   [`harvest_disk::DiskPool`]: the heartbeat thread's synchronous
//!   status read is a real secondary stream on the DataNode's disk,
//!   the primary's I/O pressure comes from a utilization trace through
//!   the configured util→demand mapping, and a missed timeout is an
//!   *emergent* consequence of the throttle policy parking the status
//!   read — exactly the production failure chain.

use harvest_cluster::ServerId;
use harvest_disk::{DiskConfig, DiskPool, IoDir, MIN_SERVE_FRACTION};
use harvest_sim::{SimDuration, SimTime};

/// How the data node's heartbeat thread gathers block status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatMode {
    /// The heartbeat thread performs synchronous disk I/O; when the
    /// primary's I/O is throttling secondaries, the heartbeat blocks.
    Synchronous,
    /// The heartbeat thread reports the most recent status it has and
    /// never blocks on disk I/O.
    Asynchronous,
}

/// Heartbeat protocol parameters (HDFS-like defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatConfig {
    /// Interval between heartbeats (HDFS default: 3 s).
    pub interval: SimDuration,
    /// Silence after which the NN declares the DN dead (~10 min).
    pub dead_after: SimDuration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: SimDuration::from_secs(3),
            dead_after: SimDuration::from_mins(10),
        }
    }
}

/// Result of replaying one data node's heartbeats.
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatOutcome {
    /// Heartbeats that should have been sent.
    pub expected: u64,
    /// Heartbeats that actually flowed.
    pub delivered: u64,
    /// Heartbeats whose status payload was stale (asynchronous mode
    /// during throttling).
    pub stale: u64,
    /// Whether the NN declared the node dead at any point.
    pub declared_dead: bool,
    /// Blocks spuriously re-replicated by the storm (0 if never declared
    /// dead). Proportional to the node's block count.
    pub storm_blocks: u64,
}

/// Replays heartbeats over a throttling trace.
///
/// `throttled` gives, per heartbeat interval, whether the performance
/// isolation manager was throttling secondary disk I/O during that
/// interval. `node_blocks` is how many replicas the node holds (the size
/// of the storm if it is declared dead).
pub fn replay_heartbeats(
    mode: HeartbeatMode,
    config: &HeartbeatConfig,
    throttled: &[bool],
    node_blocks: u64,
) -> HeartbeatOutcome {
    let mut delivered = 0u64;
    let mut stale = 0u64;
    let mut last_heard = SimTime::ZERO;
    let mut declared_dead = false;

    for (i, &is_throttled) in throttled.iter().enumerate() {
        let now = SimTime::ZERO + config.interval.mul_f64((i + 1) as f64);
        let flows = match mode {
            // Synchronous status collection blocks behind the throttled
            // disk: the heartbeat never leaves the node.
            HeartbeatMode::Synchronous => !is_throttled,
            HeartbeatMode::Asynchronous => true,
        };
        if flows {
            delivered += 1;
            last_heard = now;
            if mode == HeartbeatMode::Asynchronous && is_throttled {
                stale += 1;
            }
        }
        if now.since(last_heard) >= config.dead_after {
            declared_dead = true;
        }
    }

    HeartbeatOutcome {
        expected: throttled.len() as u64,
        delivered,
        stale,
        declared_dead,
        storm_blocks: if declared_dead { node_blocks } else { 0 },
    }
}

/// Builds a throttling trace: `total` intervals with one solid throttled
/// burst of `burst` intervals starting at `start`.
pub fn burst_trace(total: usize, start: usize, burst: usize) -> Vec<bool> {
    (0..total)
        .map(|i| i >= start && i < start + burst)
        .collect()
}

/// Bytes the heartbeat thread's synchronous status scan reads (modified
/// block metadata plus the free-space probe — small next to a block,
/// large next to a throttled disk).
pub const STATUS_SCAN_BYTES: u64 = 8_000_000;

/// Builds a primary CPU-utilization trace with one solid burst at
/// `burst_util`, `idle_util` elsewhere — the disk-model analog of
/// [`burst_trace`].
pub fn util_burst_trace(
    total: usize,
    start: usize,
    burst: usize,
    idle_util: f64,
    burst_util: f64,
) -> Vec<f64> {
    (0..total)
        .map(|i| {
            if i >= start && i < start + burst {
                burst_util
            } else {
                idle_util
            }
        })
        .collect()
}

/// Replays one data node's heartbeats against a modeled disk.
///
/// `primary_util` gives the node's primary CPU utilization per heartbeat
/// interval; `disk` maps it to disk demand and applies the isolation
/// manager. In [`HeartbeatMode::Synchronous`] the heartbeat thread
/// issues a [`STATUS_SCAN_BYTES`] read on the node's disk as a
/// *secondary* stream and the heartbeat only flows when the read
/// completes — a beat whose scheduled instant passes while the thread is
/// still blocked is missed outright. In [`HeartbeatMode::Asynchronous`]
/// (the paper's fix) every beat flows on time carrying the most recent
/// status, stale whenever the status scan is being starved.
///
/// Whether the node gets declared dead is therefore decided by the
/// interplay of the [`harvest_disk::ThrottlePolicy`] and the heartbeat
/// mode, not by a scripted throttling flag.
pub fn replay_heartbeats_disk(
    mode: HeartbeatMode,
    config: &HeartbeatConfig,
    disk: &DiskConfig,
    primary_util: &[f64],
    node_blocks: u64,
) -> HeartbeatOutcome {
    let node = ServerId(0);
    let n = primary_util.len();
    if n == 0 {
        return HeartbeatOutcome {
            expected: 0,
            delivered: 0,
            stale: 0,
            declared_dead: false,
            storm_blocks: 0,
        };
    }
    let end = SimTime::ZERO + config.interval.mul_f64(n as f64);
    let expected = n as u64;
    let mut delivered = 0u64;
    let mut stale = 0u64;
    let mut last_heard = SimTime::ZERO;
    let mut declared_dead = false;
    let check = |heard_at: SimTime, last: &mut SimTime, dead: &mut bool| {
        if heard_at.since(*last) >= config.dead_after {
            *dead = true;
        }
        *last = heard_at;
    };

    match mode {
        HeartbeatMode::Asynchronous => {
            // The fixed thread never touches the disk on the heartbeat
            // path: every beat flows at its scheduled instant. Its
            // payload is stale whenever the background status scan is
            // starved below a usable share.
            for (i, &util) in primary_util.iter().enumerate() {
                let now = SimTime::ZERO + config.interval.mul_f64((i + 1) as f64);
                delivered += 1;
                let fraction = disk
                    .primary
                    .demand_fraction(harvest_signal::classify::UtilizationPattern::Constant, util);
                if disk.throttle.secondary_fraction(fraction) < MIN_SERVE_FRACTION {
                    stale += 1;
                }
                check(now, &mut last_heard, &mut declared_dead);
            }
        }
        HeartbeatMode::Synchronous => {
            let mut pool = DiskPool::new(1, disk);
            pool.set_primary_util(SimTime::ZERO, node, primary_util[0]);
            // Index of the next utilization boundary to apply (sample i
            // takes effect at i * interval; sample 0 applied above).
            let mut next_util = 1usize;
            let mut free_at = SimTime::ZERO;
            for k in 1..=n {
                let t_k = SimTime::ZERO + config.interval.mul_f64(k as f64);
                if t_k < free_at {
                    continue; // thread still blocked: this beat is missed
                }
                // Apply utilization samples up to the issue instant.
                while next_util < n {
                    let t_u = SimTime::ZERO + config.interval.mul_f64(next_util as f64);
                    if t_u > t_k {
                        break;
                    }
                    pool.pump(t_u);
                    pool.set_primary_util(t_u, node, primary_util[next_util]);
                    next_util += 1;
                }
                pool.pump(t_k);
                let scan =
                    pool.schedule_stream(t_k, node, IoDir::Read, STATUS_SCAN_BYTES, k as u64);
                // Run the disk forward — interleaving future utilization
                // changes — until the scan lands, or the trace runs out
                // of utilization changes with the thread still parked.
                let done_at = loop {
                    let t_disk = pool.next_event_time().expect("scan in flight");
                    let t_u = (next_util < n)
                        .then(|| SimTime::ZERO + config.interval.mul_f64(next_util as f64));
                    if let Some(t_u) = t_u.filter(|&t_u| t_u < t_disk) {
                        pool.pump(t_u);
                        pool.set_primary_util(t_u, node, primary_util[next_util]);
                        next_util += 1;
                        continue;
                    }
                    if t_u.is_none() && pool.stream_rate(scan) == Some(0.0) {
                        break None; // starved with nothing left to rescue it
                    }
                    if let Some(c) = pool.pump(t_disk).into_iter().find(|c| c.tag == k as u64) {
                        break Some(c.at);
                    }
                };
                let Some(done_at) = done_at else {
                    break; // the thread never unblocks within the trace
                };
                free_at = done_at;
                delivered += 1;
                check(done_at, &mut last_heard, &mut declared_dead);
            }
        }
    }

    // The silence after the last delivered beat counts too.
    if end.since(last_heard) >= config.dead_after {
        declared_dead = true;
    }

    HeartbeatOutcome {
        expected,
        delivered,
        stale,
        declared_dead,
        storm_blocks: if declared_dead { node_blocks } else { 0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: HeartbeatConfig = HeartbeatConfig {
        interval: SimDuration::from_secs(3),
        dead_after: SimDuration::from_secs(600),
    };

    /// Intervals in a 12-minute burst (long enough to cross `dead_after`).
    const LONG_BURST: usize = 240;

    #[test]
    fn synchronous_mode_causes_the_storm() {
        let trace = burst_trace(400, 50, LONG_BURST);
        let out = replay_heartbeats(HeartbeatMode::Synchronous, &CFG, &trace, 2_400);
        assert!(out.declared_dead, "sync mode should miss enough heartbeats");
        assert_eq!(out.storm_blocks, 2_400);
        assert!(out.delivered < out.expected);
    }

    #[test]
    fn asynchronous_mode_prevents_the_storm() {
        let trace = burst_trace(400, 50, LONG_BURST);
        let out = replay_heartbeats(HeartbeatMode::Asynchronous, &CFG, &trace, 2_400);
        assert!(!out.declared_dead);
        assert_eq!(out.storm_blocks, 0);
        assert_eq!(out.delivered, out.expected);
        // The price of availability: stale status during the burst.
        assert_eq!(out.stale, LONG_BURST as u64);
    }

    #[test]
    fn short_bursts_are_harmless_in_both_modes() {
        // A 3-minute burst is well under the 10-minute dead interval.
        let trace = burst_trace(400, 50, 60);
        for mode in [HeartbeatMode::Synchronous, HeartbeatMode::Asynchronous] {
            let out = replay_heartbeats(mode, &CFG, &trace, 2_400);
            assert!(!out.declared_dead, "{mode:?} declared dead on short burst");
            assert_eq!(out.storm_blocks, 0);
        }
    }

    #[test]
    fn quiet_trace_delivers_everything() {
        let trace = vec![false; 100];
        let out = replay_heartbeats(HeartbeatMode::Synchronous, &CFG, &trace, 10);
        assert_eq!(out.delivered, 100);
        assert_eq!(out.stale, 0);
        assert!(!out.declared_dead);
    }

    #[test]
    fn burst_trace_shape() {
        let t = burst_trace(10, 3, 4);
        assert_eq!(
            t,
            vec![false, false, false, true, true, true, true, false, false, false]
        );
    }

    // --- Mechanistic replays over the modeled disk. ---

    /// A naive isolation manager (the paper's: secondaries pause
    /// outright) plus a synchronous heartbeat thread reproduces the
    /// production incident: the status read parks behind the throttle
    /// for the whole burst and the NN declares the node dead.
    #[test]
    fn modeled_disk_naive_throttle_causes_the_storm() {
        let trace = util_burst_trace(400, 50, LONG_BURST, 0.1, 0.9);
        let out = replay_heartbeats_disk(
            HeartbeatMode::Synchronous,
            &CFG,
            &DiskConfig::datacenter(),
            &trace,
            2_400,
        );
        assert!(out.declared_dead, "sync + naive throttle must miss timeout");
        assert_eq!(out.storm_blocks, 2_400);
        assert!(
            out.delivered < out.expected,
            "beats flowed while the disk was parked"
        );
    }

    /// The paper's fix — the heartbeat thread never blocks on disk —
    /// keeps beats flowing through the same burst, at the price of
    /// stale status while the scan is starved.
    #[test]
    fn modeled_disk_async_mode_prevents_the_storm() {
        let trace = util_burst_trace(400, 50, LONG_BURST, 0.1, 0.9);
        let out = replay_heartbeats_disk(
            HeartbeatMode::Asynchronous,
            &CFG,
            &DiskConfig::datacenter(),
            &trace,
            2_400,
        );
        assert!(!out.declared_dead);
        assert_eq!(out.storm_blocks, 0);
        assert_eq!(out.delivered, out.expected);
        assert_eq!(out.stale, LONG_BURST as u64);
    }

    /// A policy that never fully starves secondaries (plain fair
    /// sharing) slows the synchronous scan but never parks it: beats
    /// thin out yet the node is never silent for ten minutes.
    #[test]
    fn modeled_disk_fair_share_survives_sync_mode() {
        let trace = util_burst_trace(400, 50, LONG_BURST, 0.1, 0.9);
        let out = replay_heartbeats_disk(
            HeartbeatMode::Synchronous,
            &CFG,
            &DiskConfig::fair_share(),
            &trace,
            2_400,
        );
        assert!(
            !out.declared_dead,
            "fair-share disk should keep heartbeats trickling"
        );
        assert_eq!(out.storm_blocks, 0);
        assert!(out.delivered > 0);
    }

    /// A quiet primary delivers every beat promptly in sync mode: the
    /// scan takes ~60 ms against a 3 s interval.
    #[test]
    fn modeled_disk_quiet_primary_delivers_everything() {
        let trace = vec![0.05; 100];
        let out = replay_heartbeats_disk(
            HeartbeatMode::Synchronous,
            &CFG,
            &DiskConfig::datacenter(),
            &trace,
            10,
        );
        assert_eq!(out.delivered, out.expected);
        assert!(!out.declared_dead);
    }

    #[test]
    fn modeled_disk_replay_is_deterministic() {
        let trace = util_burst_trace(300, 40, 200, 0.15, 0.85);
        let run = || {
            replay_heartbeats_disk(
                HeartbeatMode::Synchronous,
                &CFG,
                &DiskConfig::datacenter(),
                &trace,
                77,
            )
        };
        assert_eq!(run(), run());
    }
}
