//! Disk-model configuration: channel speeds, the util→disk-bandwidth
//! mapping for primary tenants, and the pluggable isolation-manager
//! throttle.

use harvest_signal::classify::UtilizationPattern;

/// Secondary I/O below this fraction of channel capacity is treated as
/// unusable by static consumers (a read that would take 20x its
/// uncontended time has timed out in practice). The event-driven
/// [`crate::DiskPool`] does not apply this floor — a starved stream
/// simply waits for the throttle to lift.
pub const MIN_SERVE_FRACTION: f64 = 0.05;

/// How the performance-isolation manager divides a channel between the
/// primary tenant and secondary (harvested) streams.
///
/// §6 of the paper: "the manager throttles the secondary tenants' disk
/// activity when the primary tenant performs substantial disk I/O."
/// That policy protects the primary but is exactly what starved the
/// DataNode heartbeat thread (§7, lesson 2), so it is pluggable here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThrottlePolicy {
    /// No isolation manager: secondary streams fair-share whatever
    /// bandwidth the primary's own demand leaves free.
    FairShare,
    /// The paper's isolation manager: while the primary's demand is at
    /// least `threshold` of channel capacity, secondary streams are
    /// collectively capped at `secondary_floor` of capacity (0.0 pauses
    /// them outright, as the production incident did); below the
    /// threshold they fair-share the remainder like [`FairShare`].
    PrimaryIsolation {
        /// Primary-demand fraction at which throttling engages.
        threshold: f64,
        /// Fraction of capacity secondaries keep while throttled.
        secondary_floor: f64,
    },
}

impl ThrottlePolicy {
    /// The paper's policy: secondaries pause completely once the primary
    /// uses half the disk.
    pub fn paper() -> Self {
        ThrottlePolicy::PrimaryIsolation {
            threshold: 0.5,
            secondary_floor: 0.0,
        }
    }

    /// The fraction of channel capacity available to secondary streams
    /// when the primary demands `primary_fraction` of it.
    pub fn secondary_fraction(&self, primary_fraction: f64) -> f64 {
        let p = primary_fraction.clamp(0.0, 1.0);
        match *self {
            ThrottlePolicy::FairShare => 1.0 - p,
            ThrottlePolicy::PrimaryIsolation {
                threshold,
                secondary_floor,
            } => {
                if p >= threshold {
                    secondary_floor.min(1.0 - p)
                } else {
                    1.0 - p
                }
            }
        }
    }

    /// Whether the policy is actively suppressing secondaries below
    /// their fair share at this primary demand.
    pub fn is_throttling(&self, primary_fraction: f64) -> bool {
        self.secondary_fraction(primary_fraction) < (1.0 - primary_fraction.clamp(0.0, 1.0)) - 1e-12
    }

    /// Validates the policy parameters.
    ///
    /// # Panics
    ///
    /// Panics if a threshold or floor lies outside `[0, 1]`.
    pub fn validate(&self) {
        if let ThrottlePolicy::PrimaryIsolation {
            threshold,
            secondary_floor,
        } = *self
        {
            assert!(
                (0.0..=1.0).contains(&threshold),
                "throttle threshold must be in [0, 1], got {threshold}"
            );
            assert!(
                (0.0..=1.0).contains(&secondary_floor),
                "secondary floor must be in [0, 1], got {secondary_floor}"
            );
        }
    }
}

/// Maps a primary tenant's CPU utilization to the fraction of its
/// server's disk bandwidth it consumes, per tenant class.
///
/// The paper's primaries differ in I/O intensity: diurnal user-facing
/// services (periodic) are index- and log-heavy, always-on pipelines
/// (constant) stream steadily, development/test tenants (unpredictable)
/// sit in between. CPU utilization is the only signal the traces carry,
/// so disk demand is derived from it linearly with a per-class gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimaryIoModel {
    /// Disk-bandwidth fraction demanded at zero CPU (logging, scrubbing).
    pub floor: f64,
    /// Demand fraction added per unit CPU utilization for periodic
    /// tenants.
    pub periodic_gain: f64,
    /// Same, for constant tenants.
    pub constant_gain: f64,
    /// Same, for unpredictable tenants.
    pub unpredictable_gain: f64,
}

impl PrimaryIoModel {
    /// Calibration used by the presets.
    pub fn paper() -> Self {
        PrimaryIoModel {
            floor: 0.05,
            periodic_gain: 0.80,
            constant_gain: 0.50,
            unpredictable_gain: 0.65,
        }
    }

    /// A primary that does no disk I/O at all (isolates the secondary
    /// streams' own contention).
    pub fn idle() -> Self {
        PrimaryIoModel {
            floor: 0.0,
            periodic_gain: 0.0,
            constant_gain: 0.0,
            unpredictable_gain: 0.0,
        }
    }

    /// The channel-capacity fraction a primary of `pattern` running at
    /// CPU `util` demands, clamped to `[0, 1]`.
    pub fn demand_fraction(&self, pattern: UtilizationPattern, util: f64) -> f64 {
        let gain = match pattern {
            UtilizationPattern::Periodic => self.periodic_gain,
            UtilizationPattern::Constant => self.constant_gain,
            UtilizationPattern::Unpredictable => self.unpredictable_gain,
        };
        (self.floor + gain * util.clamp(0.0, 1.0)).clamp(0.0, 1.0)
    }

    /// Validates the model parameters.
    ///
    /// # Panics
    ///
    /// Panics if the floor or a gain is negative or non-finite.
    pub fn validate(&self) {
        for (name, v) in [
            ("floor", self.floor),
            ("periodic_gain", self.periodic_gain),
            ("constant_gain", self.constant_gain),
            ("unpredictable_gain", self.unpredictable_gain),
        ] {
            assert!(
                v >= 0.0 && v.is_finite(),
                "{name} must be non-negative and finite, got {v}"
            );
        }
    }
}

/// Per-server disk parameters plus the isolation policy.
///
/// Each server has one disk with independent read and write channels
/// (full-duplex like the NIC model — real HDDs interleave, but at flow
/// level steady mixed workloads behave like two coupled channels and
/// the separation keeps read-heavy primaries from hiding write
/// contention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskConfig {
    /// Sequential read bandwidth in MB/s (10^6 bytes).
    pub read_mbps: f64,
    /// Sequential write bandwidth in MB/s.
    pub write_mbps: f64,
    /// Per-operation positioning latency in milliseconds, charged to
    /// every stream (dwarfed by transfer time for blocks, visible for
    /// heartbeat-sized status reads).
    pub seek_ms: f64,
    /// How the isolation manager divides each channel.
    pub throttle: ThrottlePolicy,
    /// The util→disk-demand mapping for primary tenants.
    pub primary: PrimaryIoModel,
}

impl DiskConfig {
    /// The paper-era datacenter disk: a 7.2k enterprise HDD behind the
    /// production isolation manager.
    pub fn datacenter() -> Self {
        DiskConfig {
            read_mbps: 160.0,
            write_mbps: 120.0,
            seek_ms: 8.0,
            throttle: ThrottlePolicy::paper(),
            primary: PrimaryIoModel::paper(),
        }
    }

    /// The same disk without an isolation manager (secondaries keep
    /// their fair share however busy the primary gets).
    pub fn fair_share() -> Self {
        DiskConfig {
            throttle: ThrottlePolicy::FairShare,
            ..DiskConfig::datacenter()
        }
    }

    /// Read-channel capacity in bytes per second.
    pub fn read_bytes_per_sec(&self) -> f64 {
        self.read_mbps * 1e6
    }

    /// Write-channel capacity in bytes per second.
    pub fn write_bytes_per_sec(&self) -> f64 {
        self.write_mbps * 1e6
    }

    /// Static estimate of a single secondary read's service time in
    /// seconds, against a primary demanding `primary_fraction` of the
    /// channel, with no other secondary streams. `None` when the
    /// throttle leaves less than [`MIN_SERVE_FRACTION`] of the channel —
    /// the read would starve rather than merely crawl.
    pub fn read_service_secs(&self, primary_fraction: f64, bytes: u64) -> Option<f64> {
        self.service_secs(self.read_bytes_per_sec(), primary_fraction, bytes)
    }

    /// Static estimate of a single secondary write's service time;
    /// see [`DiskConfig::read_service_secs`].
    pub fn write_service_secs(&self, primary_fraction: f64, bytes: u64) -> Option<f64> {
        self.service_secs(self.write_bytes_per_sec(), primary_fraction, bytes)
    }

    fn service_secs(&self, capacity: f64, primary_fraction: f64, bytes: u64) -> Option<f64> {
        let share = self.throttle.secondary_fraction(primary_fraction);
        if share < MIN_SERVE_FRACTION {
            return None;
        }
        Some(bytes as f64 / (capacity * share) + self.seek_ms / 1_000.0)
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a bandwidth is non-positive, the seek latency is
    /// negative, or a sub-model is invalid.
    pub fn validate(&self) {
        assert!(
            self.read_mbps > 0.0 && self.read_mbps.is_finite(),
            "read bandwidth must be positive, got {}",
            self.read_mbps
        );
        assert!(
            self.write_mbps > 0.0 && self.write_mbps.is_finite(),
            "write bandwidth must be positive, got {}",
            self.write_mbps
        );
        assert!(
            self.seek_ms >= 0.0 && self.seek_ms.is_finite(),
            "seek latency must be non-negative, got {}",
            self.seek_ms
        );
        self.throttle.validate();
        self.primary.validate();
    }
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig::datacenter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        DiskConfig::datacenter().validate();
        DiskConfig::fair_share().validate();
    }

    #[test]
    fn bandwidth_conversion() {
        let c = DiskConfig::datacenter();
        assert_eq!(c.read_bytes_per_sec(), 160e6);
        assert_eq!(c.write_bytes_per_sec(), 120e6);
    }

    #[test]
    fn isolation_throttles_above_threshold_only() {
        let p = ThrottlePolicy::paper();
        assert_eq!(p.secondary_fraction(0.2), 0.8);
        assert!(!p.is_throttling(0.2));
        assert_eq!(p.secondary_fraction(0.6), 0.0);
        assert!(p.is_throttling(0.6));
    }

    #[test]
    fn fair_share_never_throttles() {
        let f = ThrottlePolicy::FairShare;
        for p in [0.0, 0.3, 0.7, 1.0] {
            assert!((f.secondary_fraction(p) - (1.0 - p)).abs() < 1e-12);
            assert!(!f.is_throttling(p));
        }
    }

    #[test]
    fn demand_grows_with_util_and_differs_by_class() {
        let m = PrimaryIoModel::paper();
        let lo = m.demand_fraction(UtilizationPattern::Periodic, 0.1);
        let hi = m.demand_fraction(UtilizationPattern::Periodic, 0.8);
        assert!(hi > lo);
        assert!(
            m.demand_fraction(UtilizationPattern::Periodic, 0.5)
                > m.demand_fraction(UtilizationPattern::Constant, 0.5)
        );
        assert!(m.demand_fraction(UtilizationPattern::Periodic, 5.0) <= 1.0);
    }

    #[test]
    fn service_time_estimates() {
        let c = DiskConfig::datacenter();
        // Idle disk: 160 MB in 1 s plus seek.
        let t = c.read_service_secs(0.0, 160_000_000).unwrap();
        assert!((t - 1.008).abs() < 1e-9, "idle read took {t}s");
        // Above the throttle threshold: starved.
        assert!(c.read_service_secs(0.6, 1).is_none());
        // Fair-share policy still serves, slowly.
        let f = DiskConfig::fair_share();
        assert!(f.read_service_secs(0.6, 160_000_000).unwrap() > t);
    }

    #[test]
    #[should_panic(expected = "read bandwidth")]
    fn zero_bandwidth_rejected() {
        let mut c = DiskConfig::datacenter();
        c.read_mbps = 0.0;
        c.validate();
    }
}
