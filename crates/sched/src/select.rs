//! Algorithm 1: class selection for a batch job.
//!
//! ```text
//! 1: Given: Classes C, Headroom(type, c), Ranking Weights W
//! 2: function SCHEDULE(Batch job J)
//! 3:   J.type = Length (short, medium, or long) from its last run
//! 4:   J.req  = Max amount of concurrent resources from DAG
//! 5:   for each c in C: c.weightedroom = Headroom(J.type, c) × W[J.type, c.class]
//! 8:   F = { c in C | Headroom(J.type, c) >= J.req }
//! 9:   if F not empty:   pick 1 class probabilistically ∝ weightedroom
//! 12:  elif J fits in multiple classes combined: pick classes probabilistically
//! 16:  else: pick no classes
//! ```

use harvest_jobs::length::JobLength;
use harvest_sim::dist;
use rand::Rng;

use crate::classes::ClusteringService;
use crate::headroom::{class_headroom, RankingWeights};

/// The outcome of Algorithm 1 for one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassSelection {
    /// One class had room for the whole job (line 11).
    Single(usize),
    /// The job was spread across several classes (line 14).
    Multiple(Vec<usize>),
    /// No combination of classes had room (line 17); the job must wait.
    None,
}

impl ClassSelection {
    /// The selected class ids (empty for [`ClassSelection::None`]).
    pub fn class_ids(&self) -> Vec<usize> {
        match self {
            ClassSelection::Single(c) => vec![*c],
            ClassSelection::Multiple(cs) => cs.clone(),
            ClassSelection::None => Vec::new(),
        }
    }

    /// Whether any class was selected.
    pub fn is_some(&self) -> bool {
        !matches!(self, ClassSelection::None)
    }
}

/// Runs Algorithm 1.
///
/// * `length` — the job's type from its last run (line 3);
/// * `req` — the BFS max-concurrent-containers estimate (line 4);
/// * `current_utils[c]` — the current average CPU utilization of class
///   `c`'s servers.
///
/// # Panics
///
/// Panics if `current_utils.len()` differs from the number of classes.
pub fn select_classes<R: Rng + ?Sized>(
    rng: &mut R,
    svc: &ClusteringService,
    weights: &RankingWeights,
    length: JobLength,
    req: u64,
    current_utils: &[f64],
) -> ClassSelection {
    assert_eq!(
        current_utils.len(),
        svc.class_count(),
        "one current utilization per class required"
    );

    // Lines 5-7: weighted headroom per class.
    let headrooms: Vec<u64> = svc
        .classes()
        .iter()
        .zip(current_utils)
        .map(|(c, &util)| class_headroom(length, c, util))
        .collect();
    let weighted: Vec<f64> = svc
        .classes()
        .iter()
        .zip(&headrooms)
        .map(|(c, &h)| h as f64 * weights.weight(length, c.pattern))
        .collect();

    // Line 8: classes that fit the whole job.
    let fits: Vec<usize> = (0..svc.class_count())
        .filter(|&c| headrooms[c] >= req)
        .collect();

    if !fits.is_empty() {
        // Lines 9-11: one class, probability ∝ weighted headroom.
        let w: Vec<f64> = fits.iter().map(|&c| weighted[c]).collect();
        let pick = dist::weighted_index(rng, &w).expect("fits non-empty");
        return ClassSelection::Single(fits[pick]);
    }

    // Lines 12-14: spread across classes if the total room suffices.
    let total: u64 = headrooms.iter().sum();
    if total >= req {
        let mut chosen = Vec::new();
        let mut remaining = req;
        let mut avail: Vec<f64> = weighted.clone();
        while remaining > 0 {
            let pick = match dist::weighted_index(rng, &avail) {
                Some(p) if avail[p] > 0.0 => p,
                _ => break,
            };
            chosen.push(pick);
            remaining = remaining.saturating_sub(headrooms[pick]);
            avail[pick] = 0.0; // each class picked at most once
        }
        if remaining == 0 {
            chosen.sort_unstable();
            return ClassSelection::Multiple(chosen);
        }
        // Weighted sampling ran out of positive-weight classes (possible
        // when some headroom sits in zero-weight classes); fall through.
        let mut all: Vec<usize> = (0..svc.class_count())
            .filter(|&c| headrooms[c] > 0)
            .collect();
        all.sort_unstable();
        let mut acc = 0u64;
        let mut chosen = Vec::new();
        for c in all {
            chosen.push(c);
            acc += headrooms[c];
            if acc >= req {
                return ClassSelection::Multiple(chosen);
            }
        }
    }

    // Lines 15-17.
    ClassSelection::None
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_cluster::Datacenter;
    use harvest_sim::rng::stream_rng;
    use harvest_trace::datacenter::DatacenterProfile;

    fn service() -> (Datacenter, ClusteringService) {
        let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.1), 42);
        let svc = ClusteringService::build(&dc, 42);
        (dc, svc)
    }

    #[test]
    fn small_job_gets_single_class() {
        let (_dc, svc) = service();
        let utils = vec![0.2; svc.class_count()];
        let mut rng = stream_rng(1, "sel");
        let sel = select_classes(
            &mut rng,
            &svc,
            &RankingWeights::paper(),
            JobLength::Short,
            10,
            &utils,
        );
        assert!(matches!(sel, ClassSelection::Single(_)), "got {sel:?}");
    }

    #[test]
    fn huge_job_spreads_across_classes() {
        let (dc, svc) = service();
        let utils = vec![0.2; svc.class_count()];
        // More containers than any single class can host, but less than
        // the whole cluster: 8 per server is the theoretical cap.
        let biggest = svc.classes().iter().map(|c| c.n_servers()).max().unwrap();
        let req = (biggest as u64 * 8) + 1;
        let total_possible = dc.n_servers() as u64 * 8;
        assert!(req < total_possible);
        let mut rng = stream_rng(2, "sel");
        let sel = select_classes(
            &mut rng,
            &svc,
            &RankingWeights::paper(),
            JobLength::Short,
            req,
            &utils,
        );
        match sel {
            ClassSelection::Multiple(cs) => {
                assert!(cs.len() >= 2);
                let room: u64 = cs
                    .iter()
                    .map(|&c| class_headroom(JobLength::Short, &svc.classes()[c], utils[c]))
                    .sum();
                assert!(room >= req, "selected classes lack room");
            }
            other => panic!("expected Multiple, got {other:?}"),
        }
    }

    #[test]
    fn impossible_job_selects_nothing() {
        let (dc, svc) = service();
        let utils = vec![0.2; svc.class_count()];
        let req = dc.n_servers() as u64 * 8 + 1;
        let mut rng = stream_rng(3, "sel");
        let sel = select_classes(
            &mut rng,
            &svc,
            &RankingWeights::paper(),
            JobLength::Short,
            req,
            &utils,
        );
        assert_eq!(sel, ClassSelection::None);
    }

    #[test]
    fn saturated_cluster_selects_nothing() {
        let (_dc, svc) = service();
        let utils = vec![1.0; svc.class_count()];
        let mut rng = stream_rng(4, "sel");
        let sel = select_classes(
            &mut rng,
            &svc,
            &RankingWeights::paper(),
            JobLength::Long,
            1,
            &utils,
        );
        assert_eq!(sel, ClassSelection::None);
    }

    #[test]
    fn long_jobs_prefer_constant_classes() {
        let (_dc, svc) = service();
        let utils = vec![0.1; svc.class_count()];
        let mut rng = stream_rng(5, "sel");
        let mut constant_picks = 0usize;
        let trials = 400;
        for _ in 0..trials {
            if let ClassSelection::Single(c) = select_classes(
                &mut rng,
                &svc,
                &RankingWeights::paper(),
                JobLength::Long,
                1,
                &utils,
            ) {
                if svc.classes()[c].pattern
                    == harvest_signal::classify::UtilizationPattern::Constant
                {
                    constant_picks += 1;
                }
            }
        }
        // Constant classes get weight 3 for long jobs; with comparable
        // headroom they should win the majority of picks.
        assert!(
            constant_picks * 2 > trials,
            "constant picked only {constant_picks}/{trials}"
        );
    }

    #[test]
    fn selection_respects_headroom_not_just_weights() {
        let (_dc, svc) = service();
        // Saturate every class except one.
        let mut utils = vec![1.0; svc.class_count()];
        utils[0] = 0.0;
        let mut rng = stream_rng(6, "sel");
        for _ in 0..50 {
            let sel = select_classes(
                &mut rng,
                &svc,
                &RankingWeights::paper(),
                JobLength::Medium,
                1,
                &utils,
            );
            match sel {
                ClassSelection::Single(c) => assert_eq!(c, 0),
                other => panic!("expected Single(0), got {other:?}"),
            }
        }
    }
}
