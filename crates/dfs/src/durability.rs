//! The durability simulation (Figure 15).
//!
//! Places a population of blocks, then replays months of per-server disk
//! reimages — independent reimages plus correlated redeployment sweeps —
//! repairing lost replicas through the throttled pipeline. A block whose
//! replicas are all destroyed before repair completes is lost forever.
//!
//! The paper simulates one year and 4 M blocks per datacenter; block
//! count scales with cluster size here (see
//! [`DurabilityConfig::fill_fraction`]), which preserves the per-server
//! replica density that determines loss dynamics.

use std::collections::{BinaryHeap, HashMap, HashSet};

use harvest_cluster::{Datacenter, ServerId};
use harvest_disk::{DiskConfig, DiskPool, IoDir};
use harvest_net::{Fabric, NetworkConfig};
use harvest_sim::rng::stream_rng;
use harvest_sim::SimTime;
use rand::RngExt;

use crate::placement::{PlacementPolicy, Placer};
use crate::repair::{QueuedRepair, RepairConfig, RepairPipeline, TransferParts};
use crate::store::{BlockId, BlockStore, BLOCK_BYTES};

/// Durability-simulation parameters.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Placement policy under test.
    pub policy: PlacementPolicy,
    /// Replicas per block (the paper evaluates 3 and 4).
    pub replication: usize,
    /// Fraction of the cluster's harvestable space to fill with blocks
    /// (replicas / capacity). The paper's 4 M blocks × 3 replicas lands
    /// around 50% of a production cluster's spare space.
    pub fill_fraction: f64,
    /// Simulated months (the paper uses 12).
    pub months: usize,
    /// Master seed.
    pub seed: u64,
    /// Repair timing.
    pub repair: RepairConfig,
    /// When set, each re-replication is a 256 MB flow through the shared
    /// fabric and the block stays vulnerable until the transfer's last
    /// byte lands — the repair window becomes throttle *plus* network.
    /// `None` reproduces the seed model (instant transfers).
    pub network: Option<NetworkConfig>,
    /// When set, each re-replication also reads the block off the
    /// surviving replica's disk and writes it to the destination's,
    /// fair-sharing both with every other repair on those disks; the
    /// block stays vulnerable until the slowest component finishes.
    /// Composes with [`DurabilityConfig::network`]; `None` keeps disks
    /// free and instant.
    pub disk: Option<DiskConfig>,
}

impl DurabilityConfig {
    /// The paper's one-year setup for a given policy and replication.
    pub fn paper(policy: PlacementPolicy, replication: usize, seed: u64) -> Self {
        DurabilityConfig {
            policy,
            replication,
            fill_fraction: 0.5,
            months: 12,
            seed,
            repair: RepairConfig::default(),
            network: None,
            disk: None,
        }
    }
}

/// Outcome of a durability simulation.
#[derive(Debug, Clone)]
pub struct DurabilityResult {
    /// Blocks created.
    pub n_blocks: u64,
    /// Blocks that lost every replica.
    pub lost_blocks: u64,
    /// Total server reimages replayed.
    pub reimages: u64,
    /// Replicas successfully re-created.
    pub repairs: u64,
    /// Repairs abandoned because the block was already lost.
    pub repairs_too_late: u64,
    /// Percentage of blocks lost (Figure 15's y-axis).
    pub lost_percent: f64,
    /// Final fabric counters when the network was modeled.
    pub fabric: Option<harvest_net::FabricStats>,
    /// Final disk-pool counters when disks were modeled.
    pub disk: Option<harvest_disk::DiskStats>,
}

/// Runs the durability simulation.
pub fn simulate_durability(dc: &Datacenter, cfg: &DurabilityConfig) -> DurabilityResult {
    assert!(cfg.replication >= 1, "replication must be at least 1");
    assert!(
        (0.0..=0.95).contains(&cfg.fill_fraction),
        "fill fraction must be in [0, 0.95]"
    );
    let placer = Placer::new(dc, cfg.policy);
    let mut store = BlockStore::new(dc);
    let mut rng = stream_rng(cfg.seed, "durability");

    // --- Phase 1: fill the store. ---
    let capacity = dc.total_harvest_blocks();
    let n_blocks = ((capacity as f64 * cfg.fill_fraction) / cfg.replication as f64) as u64;
    let n_servers = dc.n_servers();
    let mut created = 0u64;
    for _ in 0..n_blocks {
        // Writers are uniform over servers, as block creators in the
        // batch workload are.
        let writer = ServerId(rng.random_range(0..n_servers) as u32);
        match placer.place_new(&mut rng, &store, writer, cfg.replication, None) {
            Some(p) => {
                store.create_block(&p.servers);
                created += 1;
            }
            None => break,
        }
    }

    // --- Phase 2: generate the reimage schedule. ---
    let mut events: Vec<(SimTime, ServerId)> = Vec::new();
    for tenant in &dc.tenants {
        let mut trng = stream_rng(
            cfg.seed ^ (0xD15C_0000 + tenant.id.0 as u64),
            "tenant-reimages",
        );
        let (tenant_events, _) = tenant
            .reimage
            .generate(&mut trng, tenant.n_servers(), cfg.months);
        for e in tenant_events {
            let global = ServerId(tenant.server_range.start + e.server as u32);
            events.push((e.time, global));
        }
    }
    events.sort_by_key(|&(t, s)| (t, s));

    // --- Phase 3: replay reimages, repairing through the pipeline (and,
    // when configured, the network fabric and the shared disks). ---
    let mut pipeline = RepairPipeline::new(cfg.repair, n_servers);
    let mut heap: BinaryHeap<QueuedRepair> = BinaryHeap::new();
    let mut fabric = cfg.network.as_ref().map(|n| Fabric::from_datacenter(dc, n));
    let mut disks = cfg.disk.as_ref().map(|d| DiskPool::from_datacenter(dc, d));
    let modeled = fabric.is_some() || disks.is_some();
    // In-flight repairs by repair id: outstanding components (flow,
    // source read, destination write), the block, its destination, and
    // the latest component completion. `in_flight_blocks` counts
    // transfers per block so neither the follow-up queueing nor a
    // pending slot launches a phantom duplicate repair (which would
    // burn throttle slots and transfer bandwidth).
    let mut in_flight: HashMap<u64, InFlightRepair> = HashMap::new();
    let mut next_rid = 0u64;
    let mut in_flight_blocks: HashMap<u64, u32> = HashMap::new();
    // Repairs whose destination server was reimaged mid-transfer: the
    // half-written copy is gone, so the landing must fail and re-queue.
    let mut doomed: HashSet<u64> = HashSet::new();
    let mut repairs = 0u64;
    let mut too_late = 0u64;
    let reimage_count = events.len() as u64;

    // Merged event loop over four deterministic sources: fabric
    // completions, disk completions, repair-slot releases, and
    // reimages, earliest first; ties resolve transfers < repair <
    // reimage so a transfer that lands at the same instant a server
    // dies still counts.
    let mut events = events.into_iter().peekable();
    loop {
        let t_net = fabric.as_ref().and_then(|f| f.next_event_time());
        let t_disk = disks.as_ref().and_then(|p| p.next_event_time());
        let t_rep = heap.peek().map(|r| r.at);
        let t_rei = events.peek().map(|&(t, _)| t);
        let Some(now) = [t_net, t_disk, t_rep, t_rei].into_iter().flatten().min() else {
            break;
        };

        if t_net.map(|t| t <= now).unwrap_or(false) || t_disk.map(|t| t <= now).unwrap_or(false) {
            let mut component_done = |rid: u64, at: SimTime| -> Option<(InFlightRepair, SimTime)> {
                let e = in_flight.get_mut(&rid).expect("repair was registered");
                let landed_at = e.xfer.component_done(at)?;
                Some((in_flight.remove(&rid).expect("present"), landed_at))
            };
            let mut landed: Vec<(u64, InFlightRepair, SimTime)> = Vec::new();
            if let Some(f) = fabric.as_mut() {
                for c in f.pump(now) {
                    if let Some((e, at)) = component_done(c.tag, c.at) {
                        landed.push((c.tag, e, at));
                    }
                }
            }
            if let Some(p) = disks.as_mut() {
                for c in p.pump(now) {
                    if let Some((e, at)) = component_done(c.tag, c.at) {
                        landed.push((c.tag, e, at));
                    }
                }
            }
            // Land complete repairs in completion order (both pumps run
            // to `now`, so a batch can hold out-of-order instants).
            landed.sort_by_key(|l| (l.2, l.0));
            for (rid, e, at) in landed {
                let dest_destroyed = doomed.remove(&rid);
                land_repair(
                    &mut store,
                    &mut in_flight_blocks,
                    e.block,
                    e.dest,
                    dest_destroyed,
                    cfg.replication,
                    &mut repairs,
                    &mut too_late,
                    &mut heap,
                    &mut pipeline,
                    at,
                );
            }
            continue;
        }

        if t_rep.map(|t| t <= now).unwrap_or(false) {
            let r = heap.pop().expect("peeked");
            if modeled {
                start_repair_transfer(
                    dc,
                    &placer,
                    &mut store,
                    &mut rng,
                    &mut fabric,
                    &mut disks,
                    &mut in_flight,
                    &mut next_rid,
                    &mut in_flight_blocks,
                    r.block,
                    cfg.replication,
                    &mut too_late,
                    &mut heap,
                    &mut pipeline,
                    r.at,
                );
            } else {
                apply_repair(
                    &placer,
                    &mut store,
                    &mut rng,
                    r.block,
                    cfg.replication,
                    &mut repairs,
                    &mut too_late,
                    &mut heap,
                    &mut pipeline,
                    r.at,
                );
            }
            continue;
        }

        let (now, server) = events.next().expect("peeked");
        // The reimage also wipes any half-written repair copies inbound
        // to this server.
        doomed.extend(
            in_flight
                .iter()
                .filter(|&(_, e)| e.dest == server)
                .map(|(&rid, _)| rid),
        );
        for block in store.reimage_server(server) {
            if store.replica_count(block) > 0 {
                let at = pipeline.schedule(now);
                heap.push(QueuedRepair { at, block });
            }
        }
    }

    let lost = store.lost_blocks();
    DurabilityResult {
        n_blocks: created,
        lost_blocks: lost,
        reimages: reimage_count,
        repairs,
        repairs_too_late: too_late,
        lost_percent: if created == 0 {
            0.0
        } else {
            lost as f64 / created as f64 * 100.0
        },
        fabric: fabric.as_ref().map(|f| *f.stats()),
        disk: disks.as_ref().map(|p| *p.stats()),
    }
}

/// One re-replication in transfer: its remaining components (network
/// flow, source disk read, destination disk write), where it is headed,
/// and the latest component completion seen so far.
#[derive(Debug, Clone, Copy)]
struct InFlightRepair {
    xfer: TransferParts,
    block: BlockId,
    dest: ServerId,
}

/// Starts the 256 MB re-replication transfer for `block` when its
/// throttle slot releases: picks the destination (reserving nothing —
/// space is re-checked when the transfer lands), prefers a same-rack
/// source, and schedules whichever components are modeled — a fabric
/// flow, and/or a source-disk read plus destination-disk write. The
/// block stays at its reduced replica count until every component has
/// finished and [`land_repair`] runs, so the repair window is set by
/// the slowest of the three rates.
#[allow(clippy::too_many_arguments)]
fn start_repair_transfer(
    dc: &Datacenter,
    placer: &Placer<'_>,
    store: &mut BlockStore,
    rng: &mut rand::rngs::StdRng,
    fabric: &mut Option<Fabric>,
    disks: &mut Option<DiskPool>,
    in_flight: &mut HashMap<u64, InFlightRepair>,
    next_rid: &mut u64,
    in_flight_blocks: &mut HashMap<u64, u32>,
    block: BlockId,
    replication: usize,
    too_late: &mut u64,
    heap: &mut BinaryHeap<QueuedRepair>,
    pipeline: &mut RepairPipeline,
    now: SimTime,
) {
    let count = store.replica_count(block);
    if count == 0 {
        *too_late += 1;
        return;
    }
    let streaming = *in_flight_blocks.get(&block.0).unwrap_or(&0) as usize;
    if count + streaming >= replication {
        // Durable plus in-flight copies already cover the target; a
        // landing transfer re-queues if one of them fails, so launching
        // a phantom duplicate here would only burn bandwidth.
        return;
    }
    let existing: Vec<u32> = store.replicas(block).to_vec();
    let Some(dest) = placer.place_repair(rng, store, &existing, None) else {
        // No destination (cluster full): retry after a detection delay.
        let at = pipeline.schedule(now);
        heap.push(QueuedRepair { at, block });
        return;
    };
    let src = crate::repair::repair_source(dc, &existing, dest);
    let rid = *next_rid;
    *next_rid += 1;
    let mut parts = 0u32;
    if let Some(f) = fabric.as_mut() {
        f.schedule_flow(now, src, dest, BLOCK_BYTES, rid);
        parts += 1;
    }
    if let Some(p) = disks.as_mut() {
        p.schedule_stream(now, src, IoDir::Read, BLOCK_BYTES, rid);
        p.schedule_stream(now, dest, IoDir::Write, BLOCK_BYTES, rid);
        parts += 2;
    }
    in_flight.insert(
        rid,
        InFlightRepair {
            xfer: TransferParts::new(parts, now),
            block,
            dest,
        },
    );
    *in_flight_blocks.entry(block.0).or_insert(0) += 1;
}

/// Completes a repair flow: the new replica becomes durable now, unless
/// the block died in flight, the destination filled up, or a concurrent
/// repair already satisfied it.
#[allow(clippy::too_many_arguments)]
fn land_repair(
    store: &mut BlockStore,
    in_flight_blocks: &mut HashMap<u64, u32>,
    block: BlockId,
    dest: ServerId,
    dest_destroyed: bool,
    replication: usize,
    repairs: &mut u64,
    too_late: &mut u64,
    heap: &mut BinaryHeap<QueuedRepair>,
    pipeline: &mut RepairPipeline,
    now: SimTime,
) {
    // This flow is no longer in flight, whatever happens below.
    if let Some(n) = in_flight_blocks.get_mut(&block.0) {
        *n = n.saturating_sub(1);
        if *n == 0 {
            in_flight_blocks.remove(&block.0);
        }
    }
    let streaming = *in_flight_blocks.get(&block.0).unwrap_or(&0) as usize;
    let count = store.replica_count(block);
    if count == 0 {
        // Every source died while the transfer was in flight; the copy
        // cannot have finished. (A partial-source failure would restart
        // from a survivor; we fold that into the completed transfer.)
        *too_late += 1;
        return;
    }
    if count >= replication {
        return; // concurrently satisfied
    }
    if dest_destroyed || !store.has_space(dest) || store.replicas(block).contains(&dest.0) {
        // The destination died, filled up, or grabbed this very block
        // while the transfer ran; re-queue through the throttle unless
        // a sibling flow is still inbound to cover the gap.
        if count + streaming < replication {
            let at = pipeline.schedule(now);
            heap.push(QueuedRepair { at, block });
        }
        return;
    }
    store.add_replica(block, dest);
    *repairs += 1;
    // Still short, counting copies still inbound? Queue another.
    if store.replica_count(block) + streaming < replication {
        let at = pipeline.schedule(now);
        heap.push(QueuedRepair { at, block });
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_repair(
    placer: &Placer<'_>,
    store: &mut BlockStore,
    rng: &mut rand::rngs::StdRng,
    block: BlockId,
    replication: usize,
    repairs: &mut u64,
    too_late: &mut u64,
    heap: &mut BinaryHeap<QueuedRepair>,
    pipeline: &mut RepairPipeline,
    now: SimTime,
) {
    let count = store.replica_count(block);
    if count == 0 {
        *too_late += 1;
        return;
    }
    if count >= replication {
        return; // already fully replicated (duplicate repair entries)
    }
    let existing: Vec<u32> = store.replicas(block).to_vec();
    if let Some(dest) = placer.place_repair(rng, store, &existing, None) {
        store.add_replica(block, dest);
        *repairs += 1;
        // Still short? (More than one replica was lost.) Queue another.
        if store.replica_count(block) < replication {
            let at = pipeline.schedule(now);
            heap.push(QueuedRepair { at, block });
        }
    } else {
        // No destination (cluster full): retry after a detection delay.
        let at = pipeline.schedule(now);
        heap.push(QueuedRepair { at, block });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_trace::datacenter::DatacenterProfile;

    fn dc(scale: f64) -> Datacenter {
        Datacenter::generate(&DatacenterProfile::dc(3).scaled(scale), 23)
    }

    fn run(policy: PlacementPolicy, replication: usize, months: usize) -> DurabilityResult {
        let dc = dc(0.02);
        let mut cfg = DurabilityConfig::paper(policy, replication, 5);
        cfg.months = months;
        simulate_durability(&dc, &cfg)
    }

    #[test]
    fn blocks_are_created_to_fill_target() {
        let dc = dc(0.02);
        let cfg = DurabilityConfig::paper(PlacementPolicy::Stock, 3, 1);
        let result = simulate_durability(&dc, &cfg);
        let expected = dc.total_harvest_blocks() / 2 / 3;
        assert!(
            result.n_blocks as f64 > expected as f64 * 0.95,
            "created {} of expected {expected}",
            result.n_blocks
        );
    }

    #[test]
    fn reimages_happen_and_repairs_run() {
        let r = run(PlacementPolicy::Stock, 3, 3);
        assert!(r.reimages > 0);
        assert!(r.repairs > 0);
    }

    #[test]
    fn history_placement_loses_fewer_blocks_than_stock() {
        // DC-3 has the paper's highest reimage rate; three months of a
        // small cluster is enough for Stock to lose blocks.
        let stock = run(PlacementPolicy::Stock, 3, 6);
        let hist = run(PlacementPolicy::History, 3, 6);
        assert!(
            stock.lost_blocks > 0,
            "expected Stock losses in a high-reimage DC"
        );
        assert!(
            hist.lost_blocks * 5 < stock.lost_blocks.max(1),
            "HDFS-H ({}) not clearly better than Stock ({})",
            hist.lost_blocks,
            stock.lost_blocks
        );
    }

    #[test]
    fn four_way_replication_is_more_durable() {
        let r3 = run(PlacementPolicy::Stock, 3, 6);
        let r4 = run(PlacementPolicy::Stock, 4, 6);
        assert!(
            r4.lost_blocks <= r3.lost_blocks,
            "R=4 ({}) lost more than R=3 ({})",
            r4.lost_blocks,
            r3.lost_blocks
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(PlacementPolicy::History, 3, 2);
        let b = run(PlacementPolicy::History, 3, 2);
        assert_eq!(a.lost_blocks, b.lost_blocks);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.n_blocks, b.n_blocks);
    }

    #[test]
    fn lost_percent_is_consistent() {
        let r = run(PlacementPolicy::Stock, 3, 3);
        let expect = r.lost_blocks as f64 / r.n_blocks as f64 * 100.0;
        assert!((r.lost_percent - expect).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_constrained_repair_cannot_beat_instant_repair() {
        let dc = dc(0.02);
        let mut off = DurabilityConfig::paper(PlacementPolicy::Stock, 3, 5);
        off.months = 4;
        let mut on = off.clone();
        // A slow fabric (1 GbE, 8:1 oversubscribed) stretches every
        // repair window by seconds plus contention, while staying above
        // the throttle's aggregate demand so the backlog is bounded.
        on.network = Some(NetworkConfig {
            nic_gbps: 1.0,
            oversubscription: 8.0,
            ..NetworkConfig::datacenter()
        });
        let r_off = simulate_durability(&dc, &off);
        let r_on = simulate_durability(&dc, &on);
        assert!(r_on.repairs > 0, "no repairs landed through the fabric");
        assert!(r_on.lost_blocks > 0, "DC-3 over 4 months must lose blocks");
        // The fabric delays each repair by seconds against a 10-minute
        // detection window, while placement RNG divergence between the
        // modes adds ±1% noise — so assert the networked loss stays in a
        // band around the instant-transfer loss instead of a strict
        // inequality the model does not guarantee per seed.
        let ratio = r_on.lost_blocks as f64 / r_off.lost_blocks.max(1) as f64;
        assert!(
            (0.8..=1.5).contains(&ratio),
            "networked loss ratio {ratio:.2} out of band: on {} off {}",
            r_on.lost_blocks,
            r_off.lost_blocks
        );
    }

    #[test]
    fn networked_durability_is_deterministic() {
        let dc = dc(0.02);
        let mut cfg = DurabilityConfig::paper(PlacementPolicy::History, 3, 5);
        cfg.months = 2;
        cfg.network = Some(NetworkConfig::datacenter());
        let a = simulate_durability(&dc, &cfg);
        let b = simulate_durability(&dc, &cfg);
        assert_eq!(a.lost_blocks, b.lost_blocks);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.repairs_too_late, b.repairs_too_late);
    }

    #[test]
    fn disk_constrained_repair_cannot_beat_instant_repair() {
        // Disks stretch every repair window by the destination write
        // (~2.1 s for 256 MB at 120 MB/s) against a 10-minute detection
        // delay; loss stays in a band around the instant-transfer loss
        // (same argument as the network test above: the delay is real
        // but small, and placement RNG streams are identical because the
        // disk model draws no randomness).
        let dc = dc(0.02);
        let mut off = DurabilityConfig::paper(PlacementPolicy::Stock, 3, 5);
        off.months = 4;
        let mut on = off.clone();
        on.disk = Some(DiskConfig::datacenter());
        let r_off = simulate_durability(&dc, &off);
        let r_on = simulate_durability(&dc, &on);
        assert!(r_on.repairs > 0, "no repairs landed through the disks");
        assert!(r_on.lost_blocks > 0, "DC-3 over 4 months must lose blocks");
        let ratio = r_on.lost_blocks as f64 / r_off.lost_blocks.max(1) as f64;
        assert!(
            (0.8..=1.5).contains(&ratio),
            "disked loss ratio {ratio:.2} out of band: on {} off {}",
            r_on.lost_blocks,
            r_off.lost_blocks
        );
    }

    #[test]
    fn network_and_disk_compose_deterministically() {
        let dc = dc(0.02);
        let mut cfg = DurabilityConfig::paper(PlacementPolicy::History, 3, 5);
        cfg.months = 2;
        cfg.network = Some(NetworkConfig::datacenter());
        cfg.disk = Some(DiskConfig::datacenter());
        let a = simulate_durability(&dc, &cfg);
        let b = simulate_durability(&dc, &cfg);
        assert!(a.repairs > 0, "no repairs with both models on");
        assert_eq!(a.lost_blocks, b.lost_blocks);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.repairs_too_late, b.repairs_too_late);
    }
}
