//! Replica placement policies.
//!
//! * **Stock** — HDFS's default: first replica on the writer, second in
//!   the writer's rack, third in a remote rack, extras anywhere (§5.1).
//!   Oblivious to tenants, utilization, and reimaging.
//! * **PrimaryAware** — stock placement that additionally skips servers
//!   whose primary is currently busy (NN-H "stops using it as a
//!   destination for new replicas", §5.4) but without smart placement.
//! * **History** — Algorithm 2: replicas go to distinct rows and columns
//!   of the 3×3 (reimage × peak-utilization) grid, never two in one
//!   environment, with the row/column memory forgotten every three
//!   replicas.
//!
//! The production deployment initially treated the constraints as "soft"
//! (§7, lesson 3), preferring space over diversity; both modes are
//! implemented and the soft mode reports when it relaxed a constraint.

use harvest_cluster::{Datacenter, ServerId};
use harvest_sim::dist;
use rand::{Rng, RngExt};

use crate::grid::{Cell, Grid2D};
use crate::store::BlockStore;

/// Which placement policy the name node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Stock HDFS: local + rack-local + remote-rack.
    Stock,
    /// Stock rule, but busy servers are not used as destinations.
    PrimaryAware,
    /// Algorithm 2 (HDFS-H).
    History,
}

impl PlacementPolicy {
    /// All policies in the paper's comparison order.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::Stock,
        PlacementPolicy::PrimaryAware,
        PlacementPolicy::History,
    ];

    /// The paper's name for the system.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::Stock => "HDFS-Stock",
            PlacementPolicy::PrimaryAware => "HDFS-PT",
            PlacementPolicy::History => "HDFS-H",
        }
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The locations chosen for a block, plus whether any Algorithm 2
/// constraint had to be relaxed (soft mode only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// One server per replica, in placement order.
    pub servers: Vec<ServerId>,
    /// Whether a row/column/environment constraint was relaxed.
    pub relaxed: bool,
}

/// How many random probes each selection step attempts before concluding
/// a candidate set is exhausted.
const PROBES: usize = 24;

/// A replica placer bound to one datacenter and policy.
#[derive(Debug, Clone)]
pub struct Placer<'a> {
    dc: &'a Datacenter,
    policy: PlacementPolicy,
    grid: Option<Grid2D>,
    rack_servers: Vec<Vec<ServerId>>,
    soft: bool,
}

impl<'a> Placer<'a> {
    /// Creates a placer; builds the 3×3 grid when the policy needs it.
    pub fn new(dc: &'a Datacenter, policy: PlacementPolicy) -> Self {
        let grid = if policy == PlacementPolicy::History {
            Some(Grid2D::build(dc))
        } else {
            None
        };
        let mut rack_servers = vec![Vec::new(); dc.n_racks()];
        for s in &dc.servers {
            rack_servers[s.rack.0 as usize].push(s.id);
        }
        Placer {
            dc,
            policy,
            grid,
            rack_servers,
            soft: true,
        }
    }

    /// Sets whether Algorithm 2's constraints are soft (relaxable when
    /// space runs out — the initial production configuration) or hard
    /// (placement fails instead). Default: soft.
    pub fn with_soft_constraints(mut self, soft: bool) -> Self {
        self.soft = soft;
        self
    }

    /// The grid, if the policy uses one.
    pub fn grid(&self) -> Option<&Grid2D> {
        self.grid.as_ref()
    }

    /// Chooses `r` replica locations for a new block created by `writer`.
    ///
    /// `busy[s]` marks servers currently denying accesses (pass `None`
    /// when modelling placement without live utilization, e.g. the
    /// durability simulation). Returns `None` when no valid placement
    /// exists under the policy (hard-constraint mode or a full cluster).
    pub fn place_new<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        store: &BlockStore,
        writer: ServerId,
        r: usize,
        busy: Option<&[bool]>,
    ) -> Option<Placement> {
        assert!(r >= 1, "replication factor must be at least 1");
        match self.policy {
            PlacementPolicy::Stock | PlacementPolicy::PrimaryAware => {
                self.place_stock(rng, store, writer, r, busy)
            }
            PlacementPolicy::History => self.place_history(rng, store, writer, r, busy),
        }
    }

    /// Chooses a destination for one re-replicated replica of a block
    /// whose surviving copies sit on `existing`.
    pub fn place_repair<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        store: &BlockStore,
        existing: &[u32],
        busy: Option<&[bool]>,
    ) -> Option<ServerId> {
        match self.policy {
            PlacementPolicy::Stock | PlacementPolicy::PrimaryAware => {
                // Stock re-replication: any non-busy server with space not
                // already holding the block.
                self.random_server(rng, store, busy, |sid| !existing.contains(&sid.0))
            }
            PlacementPolicy::History => {
                let grid = self.grid.as_ref().expect("history placer has a grid");
                // Constrain against the replicas of the current round: the
                // last `existing.len() % 3` placements (a full round has no
                // active row/column constraints), plus every environment.
                let in_round = existing.len() % 3;
                let mut cons = Constraints::default();
                for &s in existing {
                    cons.envs.push(self.dc.tenant_of(ServerId(s)).environment);
                }
                for &s in existing.iter().rev().take(in_round) {
                    let cell = grid.cell_of(store.tenant_of(ServerId(s)));
                    cons.rows.push(cell.row);
                    cons.cols.push(cell.col);
                }
                self.pick_history(rng, store, busy, &mut cons, existing)
                    .map(|(sid, _)| sid)
            }
        }
    }

    // ----- stock / primary-aware -----

    fn place_stock<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        store: &BlockStore,
        writer: ServerId,
        r: usize,
        busy: Option<&[bool]>,
    ) -> Option<Placement> {
        let mut chosen: Vec<ServerId> = Vec::with_capacity(r);
        let ok = |placer: &Self, sid: ServerId, chosen: &[ServerId]| {
            store.has_space(sid) && !chosen.contains(&sid) && !placer.is_busy(sid, busy)
        };

        // Replica 1: the writer, or any server if the writer is unusable.
        if ok(self, writer, &chosen) {
            chosen.push(writer);
        } else {
            chosen.push(self.random_server(rng, store, busy, |_| true)?);
        }

        // Replica 2: same rack as the first replica.
        if r >= 2 {
            let rack = self.dc.server(chosen[0]).rack.0 as usize;
            let local = &self.rack_servers[rack];
            let pick = (0..PROBES).find_map(|_| {
                let sid = local[rng.random_range(0..local.len())];
                ok(self, sid, &chosen).then_some(sid)
            });
            match pick {
                Some(sid) => chosen.push(sid),
                // Rack full: fall back to any server (stock behaviour).
                None => {
                    chosen.push(self.random_server(rng, store, busy, |sid| !chosen.contains(&sid))?)
                }
            }
        }

        // Replicas 3+: remote racks.
        while chosen.len() < r {
            let home_rack = self.dc.server(chosen[0]).rack;
            let pick = self.random_server(rng, store, busy, |sid| {
                !chosen.contains(&sid) && self.dc.server(sid).rack != home_rack
            });
            match pick {
                Some(sid) => chosen.push(sid),
                None => {
                    // No remote-rack option: relax to any distinct server.
                    let sid = self.random_server(rng, store, busy, |sid| !chosen.contains(&sid))?;
                    chosen.push(sid);
                }
            }
        }

        Some(Placement {
            servers: chosen,
            relaxed: false,
        })
    }

    // ----- history (Algorithm 2) -----

    fn place_history<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        store: &BlockStore,
        writer: ServerId,
        r: usize,
        busy: Option<&[bool]>,
    ) -> Option<Placement> {
        let grid = self.grid.as_ref().expect("history placer has a grid");
        let mut chosen: Vec<ServerId> = Vec::with_capacity(r);
        let mut chosen_raw: Vec<u32> = Vec::with_capacity(r);
        let mut relaxed = false;
        let mut cons = Constraints::default();

        // Lines 6-7: replica 1 goes to the writer (locality), consuming
        // the writer's cell.
        let first = if store.has_space(writer) && !self.is_busy(writer, busy) {
            writer
        } else {
            // Writer unusable: pick any server of the writer's cell, or
            // anywhere as a last resort.
            let cell = grid.cell_of(self.dc.server(writer).tenant);
            self.pick_in_cell(rng, store, busy, cell, &cons, &chosen_raw)
                .or_else(|| {
                    relaxed = true;
                    self.random_server(rng, store, busy, |_| true)
                })?
        };
        let first_cell = grid.cell_of(store.tenant_of(first));
        cons.rows.push(first_cell.row);
        cons.cols.push(first_cell.col);
        cons.envs.push(self.dc.tenant_of(first).environment);
        chosen_raw.push(first.0);
        chosen.push(first);

        // Lines 8-18: remaining replicas.
        for placed in 1..r {
            // Line 15-17: forget rows/columns every three replicas.
            if placed % 3 == 0 {
                cons.rows.clear();
                cons.cols.clear();
            }
            match self.pick_history(rng, store, busy, &mut cons, &chosen_raw) {
                Some((sid, was_relaxed)) => {
                    relaxed |= was_relaxed;
                    chosen_raw.push(sid.0);
                    chosen.push(sid);
                }
                None => return None,
            }
        }

        Some(Placement {
            servers: chosen,
            relaxed,
        })
    }

    /// Picks one server per Algorithm 2 lines 9-14, updating the
    /// constraints. Returns the server and whether constraints were
    /// relaxed to find it.
    fn pick_history<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        store: &BlockStore,
        busy: Option<&[bool]>,
        cons: &mut Constraints,
        already: &[u32],
    ) -> Option<(ServerId, bool)> {
        // Strict pass: row, column, and environment constraints.
        let mut cells: Vec<Cell> = Grid2D::cells()
            .filter(|c| !cons.rows.contains(&c.row) && !cons.cols.contains(&c.col))
            .collect();
        dist::shuffle(rng, &mut cells);
        for cell in &cells {
            if let Some(sid) = self.pick_in_cell(rng, store, busy, *cell, cons, already) {
                cons.rows.push(cell.row);
                cons.cols.push(cell.col);
                cons.envs.push(self.dc.tenant_of(sid).environment);
                return Some((sid, false));
            }
        }

        if !self.soft {
            return None;
        }

        // Soft relaxation 1: ignore rows/columns, keep the environment
        // constraint (the paper's production system prioritized this
        // order: environments are the strongest correlation).
        let mut all: Vec<Cell> = Grid2D::cells().collect();
        dist::shuffle(rng, &mut all);
        for cell in &all {
            if let Some(sid) = self.pick_in_cell(rng, store, busy, *cell, cons, already) {
                cons.envs.push(self.dc.tenant_of(sid).environment);
                return Some((sid, true));
            }
        }

        // Soft relaxation 2: any server with space ("promote space
        // utilization over diversity").
        let sid = self.random_server(rng, store, busy, |sid| !already.contains(&sid.0))?;
        cons.envs.push(self.dc.tenant_of(sid).environment);
        Some((sid, true))
    }

    /// Random tenant of `cell` honoring the environment constraint, then
    /// a random server of that tenant with space.
    fn pick_in_cell<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        store: &BlockStore,
        busy: Option<&[bool]>,
        cell: Cell,
        cons: &Constraints,
        already: &[u32],
    ) -> Option<ServerId> {
        let grid = self.grid.as_ref().expect("history placer has a grid");
        let members = grid.members(cell);
        if members.is_empty() {
            return None;
        }
        for _ in 0..PROBES {
            let tid = members[rng.random_range(0..members.len())];
            let tenant = self.dc.tenant(tid);
            if cons.envs.contains(&tenant.environment) || store.tenant_free(tid) == 0 {
                continue;
            }
            let n = tenant.n_servers();
            for _ in 0..PROBES {
                let sid = ServerId(tenant.server_range.start + rng.random_range(0..n) as u32);
                if store.has_space(sid) && !already.contains(&sid.0) && !self.is_busy(sid, busy) {
                    return Some(sid);
                }
            }
        }
        None
    }

    // ----- helpers -----

    fn is_busy(&self, sid: ServerId, busy: Option<&[bool]>) -> bool {
        match (self.policy, busy) {
            (PlacementPolicy::Stock, _) => false, // stock is oblivious
            (_, Some(mask)) => mask[sid.0 as usize],
            (_, None) => false,
        }
    }

    fn random_server<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        store: &BlockStore,
        busy: Option<&[bool]>,
        extra: impl Fn(ServerId) -> bool,
    ) -> Option<ServerId> {
        let n = self.dc.n_servers();
        for _ in 0..PROBES * 4 {
            let sid = ServerId(rng.random_range(0..n) as u32);
            if store.has_space(sid) && !self.is_busy(sid, busy) && extra(sid) {
                return Some(sid);
            }
        }
        None
    }
}

#[derive(Debug, Default, Clone)]
struct Constraints {
    rows: Vec<u8>,
    cols: Vec<u8>,
    envs: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim::rng::stream_rng;
    use harvest_trace::datacenter::DatacenterProfile;

    fn dc() -> Datacenter {
        Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.05), 13)
    }

    fn cells_of(placer: &Placer<'_>, store: &BlockStore, servers: &[ServerId]) -> Vec<Cell> {
        servers
            .iter()
            .map(|&s| placer.grid().unwrap().cell_of(store.tenant_of(s)))
            .collect()
    }

    #[test]
    fn stock_follows_rack_rule() {
        let dc = dc();
        let store = BlockStore::new(&dc);
        let placer = Placer::new(&dc, PlacementPolicy::Stock);
        let mut rng = stream_rng(1, "stock");
        let writer = ServerId(0);
        for _ in 0..100 {
            let p = placer
                .place_new(&mut rng, &store, writer, 3, None)
                .expect("placement");
            assert_eq!(p.servers.len(), 3);
            assert_eq!(p.servers[0], writer);
            assert_eq!(dc.server(p.servers[1]).rack, dc.server(writer).rack);
            assert_ne!(dc.server(p.servers[2]).rack, dc.server(writer).rack);
            // No duplicates.
            let mut s = p.servers.clone();
            s.dedup();
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn primary_aware_skips_busy_servers() {
        let dc = dc();
        let store = BlockStore::new(&dc);
        let placer = Placer::new(&dc, PlacementPolicy::PrimaryAware);
        let mut rng = stream_rng(2, "pt");
        // Mark the writer's whole rack busy.
        let mut busy = vec![false; dc.n_servers()];
        let writer = ServerId(0);
        for s in &dc.servers {
            if s.rack == dc.server(writer).rack {
                busy[s.id.0 as usize] = true;
            }
        }
        let p = placer
            .place_new(&mut rng, &store, writer, 3, Some(&busy))
            .expect("placement");
        for &sid in &p.servers {
            assert!(!busy[sid.0 as usize], "placed on busy server {sid}");
        }
    }

    #[test]
    fn stock_ignores_busy_mask() {
        let dc = dc();
        let store = BlockStore::new(&dc);
        let placer = Placer::new(&dc, PlacementPolicy::Stock);
        let mut rng = stream_rng(3, "stock2");
        let busy = vec![true; dc.n_servers()];
        // Stock doesn't know about business; placement still succeeds.
        let p = placer.place_new(&mut rng, &store, ServerId(0), 3, Some(&busy));
        assert!(p.is_some());
    }

    #[test]
    fn history_respects_rows_columns_environments() {
        let dc = dc();
        let store = BlockStore::new(&dc);
        let placer = Placer::new(&dc, PlacementPolicy::History).with_soft_constraints(false);
        let mut rng = stream_rng(4, "hist");
        for w in 0..50u32 {
            let writer = ServerId(w % dc.n_servers() as u32);
            let Some(p) = placer.place_new(&mut rng, &store, writer, 3, None) else {
                continue; // hard mode may legitimately fail for some writers
            };
            assert!(!p.relaxed);
            let cells = cells_of(&placer, &store, &p.servers);
            for i in 0..cells.len() {
                for j in i + 1..cells.len() {
                    assert_ne!(cells[i].row, cells[j].row, "row reused");
                    assert_ne!(cells[i].col, cells[j].col, "column reused");
                }
            }
            let envs: Vec<usize> = p
                .servers
                .iter()
                .map(|&s| dc.tenant_of(s).environment)
                .collect();
            let mut dedup = envs.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), envs.len(), "environment reused");
        }
    }

    #[test]
    fn history_first_replica_is_local() {
        let dc = dc();
        let store = BlockStore::new(&dc);
        let placer = Placer::new(&dc, PlacementPolicy::History);
        let mut rng = stream_rng(5, "hist2");
        let writer = ServerId(7);
        let p = placer
            .place_new(&mut rng, &store, writer, 3, None)
            .expect("placement");
        assert_eq!(p.servers[0], writer);
    }

    #[test]
    fn history_four_replicas_resets_round() {
        let dc = dc();
        let store = BlockStore::new(&dc);
        let placer = Placer::new(&dc, PlacementPolicy::History);
        let mut rng = stream_rng(6, "hist3");
        let p = placer
            .place_new(&mut rng, &store, ServerId(3), 4, None)
            .expect("4-way placement");
        assert_eq!(p.servers.len(), 4);
        // First three replicas form a full round (distinct rows/cols);
        // the fourth starts a new round and may reuse a row or column,
        // but never an environment.
        let envs: Vec<usize> = p
            .servers
            .iter()
            .map(|&s| dc.tenant_of(s).environment)
            .collect();
        let mut dedup = envs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), envs.len(), "environment reused across rounds");
    }

    #[test]
    fn history_repair_avoids_existing_environments() {
        let dc = dc();
        let mut store = BlockStore::new(&dc);
        let placer = Placer::new(&dc, PlacementPolicy::History);
        let mut rng = stream_rng(7, "repair");
        let p = placer
            .place_new(&mut rng, &store, ServerId(0), 3, None)
            .expect("placement");
        let b = store.create_block(&p.servers);
        // Lose one replica, repair it.
        store.reimage_server(p.servers[1]);
        let existing: Vec<u32> = store.replicas(b).to_vec();
        for _ in 0..20 {
            let dest = placer
                .place_repair(&mut rng, &store, &existing, None)
                .expect("repair destination");
            let dest_env = dc.tenant_of(dest).environment;
            for &s in &existing {
                assert_ne!(
                    dc.tenant_of(ServerId(s)).environment,
                    dest_env,
                    "repair reused an environment"
                );
            }
        }
    }

    #[test]
    fn soft_mode_relaxes_when_cluster_nearly_full() {
        // A tiny datacenter where strict constraints quickly become
        // unsatisfiable.
        let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.003), 17);
        let mut store = BlockStore::new(&dc);
        let soft = Placer::new(&dc, PlacementPolicy::History);
        let hard = Placer::new(&dc, PlacementPolicy::History).with_soft_constraints(false);
        let mut rng = stream_rng(8, "soft");
        let mut soft_any = false;
        let mut hard_failed = false;
        for i in 0..2_000 {
            let writer = ServerId((i % dc.n_servers()) as u32);
            if let Some(p) = soft.place_new(&mut rng, &store, writer, 3, None) {
                soft_any |= p.relaxed;
                store.create_block(&p.servers);
            }
            if hard.place_new(&mut rng, &store, writer, 3, None).is_none() {
                hard_failed = true;
            }
        }
        assert!(
            soft_any || hard_failed,
            "expected constraint pressure in a tiny cluster"
        );
    }

    #[test]
    fn labels() {
        assert_eq!(PlacementPolicy::Stock.to_string(), "HDFS-Stock");
        assert_eq!(PlacementPolicy::PrimaryAware.to_string(), "HDFS-PT");
        assert_eq!(PlacementPolicy::History.to_string(), "HDFS-H");
    }
}
