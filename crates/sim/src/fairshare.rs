//! Analytic max-min fair sharing for a single saturated resource.
//!
//! Progressive filling (the `net::fabric` / `disk::pool` reference
//! algorithm) recomputes every flow's rate whenever any flow starts or
//! finishes, which costs O(component) per event and turns a fleet-wide
//! reimage storm — every flow in one connected component — quadratic.
//! But when a component is *single-bottleneck* (all flows cross one
//! common saturated link), max-min fair sharing degenerates to an
//! equal split of that link, and the whole trajectory can be tracked
//! analytically in O(log n) per event. This module implements that
//! engine; `net::fabric` routes provably single-bottleneck components
//! through it and `disk::pool` (whose channels are single-bottleneck
//! by construction) adopts it wholesale.
//!
//! # The virtual fair-work clock
//!
//! [`FairShare`] maintains `v`, the cumulative *work per flow* the
//! resource has delivered since the group was created: while `n` flows
//! share capacity `c`, every flow progresses at rate `c / n`, so `v`
//! advances by `(c / n) · dt` across any interval without membership
//! or capacity changes. A flow entering with `r` bytes remaining is
//! assigned the constant key `v_entry + r`; it completes exactly when
//! the clock reaches its key. Keys never change after entry, so the
//! next completion is always the minimum key — a binary heap gives
//! O(log n) insert/extract, and each start/finish event only advances
//! the clock, touches the heap, and recomputes `rate = c / n`.
//!
//! # Exactness and tolerance
//!
//! The per-flow rate is computed as `capacity / n as f64` — the very
//! same floating-point operation progressive filling performs on its
//! first (and, for a single-bottleneck component, only) iteration, so
//! rates agree **bitwise** with the filling reference. Completion
//! times re-associate the arithmetic: filling folds `(r − a) − b − …`
//! across reshares while the clock computes `r − (a + b + …)`, so the
//! two schedules can differ by a few ulps (≈1e-16 relative). Simulated
//! time is integer milliseconds and `SimDuration::from_secs_f64`
//! rounds to the nearest millisecond, so the drift virtually never
//! moves a completion across a millisecond boundary; trajectories with
//! at most one clock-accumulation step between a flow's entry and its
//! completion are exact. The oracle property tests pin rates bitwise
//! and completion schedules at full `SimTime` resolution.
//!
//! Ties (equal keys) complete in ascending flow id, matching the
//! reference's ascending-id event pushes and the event queue's FIFO
//! tie-break.

use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Which fair-sharing engine a fabric or pool uses.
///
/// `Auto` (the default) routes provably single-bottleneck components
/// through the analytic engine and falls back to progressive filling
/// everywhere else, so it allocates exactly what `Filling` would.
/// `Analytic` is `Auto` under a different name — the classifier still
/// gates admission, because forcing the analytic engine onto a
/// multi-bottleneck component would *change* the allocation, and the
/// engines are required to agree. `Filling` disables the analytic
/// path entirely (the A/B baseline; `ReshareScope::Global` implies it,
/// since the global reference *is* progressive filling).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SharingMode {
    /// Classifier-gated analytic fast path, filling fallback (default).
    #[default]
    Auto,
    /// Same engine selection as `Auto`; named for explicit A/B runs.
    Analytic,
    /// Progressive filling only — the reference allocator.
    Filling,
}

impl SharingMode {
    /// Parses a `--sharing` argument. Accepts `auto`, `analytic`,
    /// `filling`.
    pub fn parse(s: &str) -> Option<SharingMode> {
        match s {
            "auto" => Some(SharingMode::Auto),
            "analytic" => Some(SharingMode::Analytic),
            "filling" => Some(SharingMode::Filling),
            _ => None,
        }
    }

    /// The canonical flag spelling, for help text and reports.
    pub fn name(self) -> &'static str {
        match self {
            SharingMode::Auto => "auto",
            SharingMode::Analytic => "analytic",
            SharingMode::Filling => "filling",
        }
    }

    /// Whether the analytic engine may serve components at all.
    pub fn analytic_allowed(self) -> bool {
        !matches!(self, SharingMode::Filling)
    }
}

/// A member's heap entry: (key bits, id). Keys are non-negative finite
/// `f64`, for which IEEE-754 bit patterns order identically to the
/// values — so a plain `u64` tuple gives numeric order with ascending
/// id as the tie-break, no `PartialOrd` wrapper needed.
type HeapEntry = Reverse<(u64, u64)>;

/// Analytic fair-share engine for one saturated resource.
///
/// All time-dependent operations take the current simulation time and
/// advance the virtual clock first, so callers never pre-advance.
/// Stale heap entries (from removed members) are discarded lazily on
/// [`FairShare::peek`]/[`FairShare::pop`]; each entry is popped at
/// most once, keeping every operation amortized O(log n).
#[derive(Clone, Debug)]
pub struct FairShare {
    capacity: f64,
    /// Current per-flow rate: `capacity / members.len()`, `0.0` when
    /// empty or capacity is zero.
    rate: f64,
    /// Virtual fair-work clock: work delivered per flow since `new`.
    v: f64,
    /// Simulation time at which `v` was last brought current.
    last: SimTime,
    /// id → completion key (`v` at entry + remaining work at entry).
    members: BTreeMap<u64, f64>,
    heap: BinaryHeap<HeapEntry>,
}

impl FairShare {
    /// Creates an empty engine over a resource of `capacity`
    /// work-units per second, with the clock anchored at `now`.
    pub fn new(capacity: f64, now: SimTime) -> FairShare {
        FairShare {
            capacity,
            rate: 0.0,
            v: 0.0,
            last: now,
            members: BTreeMap::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Number of member flows.
    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// True when no flows are enrolled.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The current per-flow rate (work-units per second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The resource capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Advances the virtual clock to `now`. Idempotent; a no-op when
    /// time has not moved or no flow is enrolled.
    pub fn advance(&mut self, now: SimTime) {
        if now > self.last {
            if self.rate > 0.0 {
                self.v += self.rate * now.since(self.last).as_secs_f64();
            }
            self.last = now;
        }
    }

    fn recompute_rate(&mut self) {
        self.rate = if self.members.is_empty() || self.capacity <= 0.0 {
            0.0
        } else {
            // The same f64 division progressive filling performs when
            // it splits an untouched link among its flows — bitwise
            // agreement with the reference hinges on this expression.
            self.capacity / self.members.len() as f64
        };
    }

    /// Enrolls flow `id` with `remaining` work-units left. The flow
    /// must not already be a member.
    pub fn insert(&mut self, now: SimTime, id: u64, remaining: f64) {
        self.advance(now);
        let key = self.v + remaining.max(0.0);
        let prev = self.members.insert(id, key);
        debug_assert!(prev.is_none(), "flow {id} enrolled twice");
        self.heap.push(Reverse((key.to_bits(), id)));
        self.recompute_rate();
    }

    /// Removes flow `id`, returning its remaining work (exact under
    /// the engine's own accounting, clamped at zero). Returns `None`
    /// if the flow is not a member.
    pub fn remove(&mut self, now: SimTime, id: u64) -> Option<f64> {
        self.advance(now);
        let key = self.members.remove(&id)?;
        self.recompute_rate();
        Some((key - self.v).max(0.0))
    }

    /// Changes the resource capacity (uplink degrade, throttle
    /// transition). The clock is advanced first so work already
    /// delivered is settled at the old rate.
    pub fn set_capacity(&mut self, now: SimTime, capacity: f64) {
        self.advance(now);
        self.capacity = capacity;
        self.recompute_rate();
    }

    /// The next completion: `(id, seconds from "now")`, where "now" is
    /// the last time the clock was advanced. Returns `None` when empty
    /// or when the rate is zero (parked resource).
    pub fn peek(&mut self, now: SimTime) -> Option<(u64, f64)> {
        self.advance(now);
        if self.rate <= 0.0 {
            return None;
        }
        while let Some(&Reverse((key_bits, id))) = self.heap.peek() {
            match self.members.get(&id) {
                Some(key) if key.to_bits() == key_bits => {
                    let eta = (f64::from_bits(key_bits) - self.v).max(0.0) / self.rate;
                    return Some((id, eta));
                }
                _ => {
                    self.heap.pop();
                }
            }
        }
        None
    }

    /// Pops the next completion, removing the flow. Must agree with
    /// the last [`FairShare::peek`].
    pub fn pop(&mut self, now: SimTime) -> Option<u64> {
        let (id, _) = self.peek(now)?;
        self.heap.pop();
        self.members.remove(&id);
        self.recompute_rate();
        Some(id)
    }

    /// Remaining work of flow `id` under the clock's current position.
    pub fn remaining_of(&self, id: u64) -> Option<f64> {
        self.members.get(&id).map(|key| (key - self.v).max(0.0))
    }

    /// All members in ascending id order as `(id, remaining)`, for
    /// migrating state back to progressive filling exactly.
    pub fn members(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.members
            .iter()
            .map(|(&id, &key)| (id, (key - self.v).max(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn sharing_mode_parses_and_round_trips() {
        for mode in [
            SharingMode::Auto,
            SharingMode::Analytic,
            SharingMode::Filling,
        ] {
            assert_eq!(SharingMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(SharingMode::parse("fair"), None);
        assert_eq!(SharingMode::default(), SharingMode::Auto);
        assert!(SharingMode::Auto.analytic_allowed());
        assert!(SharingMode::Analytic.analytic_allowed());
        assert!(!SharingMode::Filling.analytic_allowed());
    }

    #[test]
    fn rate_is_the_reference_division_bitwise() {
        let mut fs = FairShare::new(6.25e9, t(0));
        for id in 0..7u64 {
            fs.insert(t(0), id, 1e8);
            let n = fs.n();
            assert_eq!(fs.rate().to_bits(), (6.25e9 / n as f64).to_bits());
        }
    }

    #[test]
    fn two_equal_flows_complete_together_in_id_order() {
        let mut fs = FairShare::new(10.0, t(0));
        fs.insert(t(0), 7, 20.0);
        fs.insert(t(0), 3, 20.0);
        // Two flows, rate 5 each: both keys are 20, ties pop ascending.
        let (id, eta) = fs.peek(t(0)).unwrap();
        assert_eq!((id, eta), (3, 4.0));
        assert_eq!(fs.pop(t(4_000)), Some(3));
        // Lone survivor now runs at full capacity; its key was fixed at
        // entry so it also completes at t=4s (clock hit 20 for both).
        let (id, eta) = fs.peek(t(4_000)).unwrap();
        assert_eq!(id, 7);
        assert_eq!(eta, 0.0);
    }

    #[test]
    fn late_joiner_shares_from_entry_onward() {
        let mut fs = FairShare::new(10.0, t(0));
        fs.insert(t(0), 1, 10.0);
        // At t=0.5s flow 1 has delivered 5 units; flow 2 joins with 5.
        fs.insert(t(500), 2, 5.0);
        assert_eq!(fs.remaining_of(1), Some(5.0));
        assert_eq!(fs.remaining_of(2), Some(5.0));
        // Both now at rate 5: both finish 1s later, flow 1 first (tie,
        // lower id).
        let (id, eta) = fs.peek(t(500)).unwrap();
        assert_eq!((id, eta), (1, 1.0));
        assert_eq!(fs.pop(t(1_500)), Some(1));
        assert_eq!(fs.pop(t(1_500)), Some(2));
        assert!(fs.is_empty());
        assert_eq!(fs.rate(), 0.0);
    }

    #[test]
    fn remove_returns_exact_remaining_and_respeeds_survivors() {
        let mut fs = FairShare::new(8.0, t(0));
        fs.insert(t(0), 1, 16.0);
        fs.insert(t(0), 2, 16.0);
        // 1 second at rate 4: both have 12 left.
        assert_eq!(fs.remove(t(1_000), 1), Some(12.0));
        assert_eq!(fs.rate(), 8.0);
        // Survivor finishes its 12 units at full rate: 1.5s more.
        let (id, eta) = fs.peek(t(1_000)).unwrap();
        assert_eq!((id, eta), (2, 1.5));
        assert_eq!(fs.remove(t(1_000), 9), None);
    }

    #[test]
    fn capacity_change_settles_work_at_the_old_rate() {
        let mut fs = FairShare::new(10.0, t(0));
        fs.insert(t(0), 1, 10.0);
        fs.set_capacity(t(500), 2.0);
        // 5 delivered in the first half-second, 5 left at rate 2.
        assert_eq!(fs.remaining_of(1), Some(5.0));
        let (_, eta) = fs.peek(t(500)).unwrap();
        assert_eq!(eta, 2.5);
        // Zero capacity parks the engine: no completion to predict.
        fs.set_capacity(t(600), 0.0);
        assert_eq!(fs.peek(t(700)), None);
        assert_eq!(fs.remaining_of(1), Some(4.8));
        fs.set_capacity(t(1_000), 4.8);
        let (id, eta) = fs.peek(t(1_000)).unwrap();
        assert_eq!((id, eta), (1, 1.0));
    }

    #[test]
    fn members_iterate_ascending_with_live_remaining() {
        let mut fs = FairShare::new(6.0, t(0));
        fs.insert(t(0), 5, 9.0);
        fs.insert(t(0), 2, 3.0);
        fs.insert(t(0), 8, 6.0);
        // 1 second at rate 2 each.
        fs.advance(t(1_000));
        let snap: Vec<(u64, f64)> = fs.members().collect();
        assert_eq!(snap, vec![(2, 1.0), (5, 7.0), (8, 4.0)]);
    }

    #[test]
    fn stale_heap_entries_are_skipped() {
        let mut fs = FairShare::new(4.0, t(0));
        fs.insert(t(0), 1, 4.0);
        fs.insert(t(0), 2, 8.0);
        fs.remove(t(0), 1);
        let (id, _) = fs.peek(t(0)).unwrap();
        assert_eq!(id, 2);
        // Re-enroll id 1 with a different key: old entry must not win.
        fs.insert(t(0), 1, 100.0);
        let (id, _) = fs.peek(t(0)).unwrap();
        assert_eq!(id, 2);
    }
}
