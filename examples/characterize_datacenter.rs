//! Characterize a datacenter the way §3 of the paper does: classify
//! every tenant's utilization trace with the FFT pipeline and summarize
//! its reimaging behaviour.
//!
//! ```sh
//! cargo run --release --example characterize_datacenter -- [DC_ID]
//! ```

use harvest::prelude::*;
use harvest::signal::classify::{classify, ClassifierConfig};
use harvest::signal::spectrum::{dominant_period_samples, spectral_flatness};
use harvest::sim::rng::indexed_rng;
use harvest::trace::reimage::{per_server_monthly_rates, tenant_monthly_rate};
use harvest::trace::{SAMPLES_PER_DAY, SAMPLES_PER_MONTH};

fn main() {
    let dc_id: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(9);
    let seed = 42;
    let profile = DatacenterProfile::dc(dc_id).scaled(0.1);
    let tenants = profile.sample_tenants(seed);
    println!(
        "{}: {} tenants (scaled-down profile)\n",
        profile.name(),
        tenants.len()
    );

    let classifier = ClassifierConfig::default();
    let mut counts = [0usize; 3];
    let mut server_counts = [0usize; 3];

    println!("== utilization patterns (FFT classification) ==");
    for (i, t) in tenants.iter().enumerate() {
        let mut rng = indexed_rng(seed, "example-trace", i as u64);
        let trace = t.util.generate(&mut rng, SAMPLES_PER_MONTH);
        let pattern = classify(trace.values(), &classifier);
        let slot = match pattern {
            UtilizationPattern::Periodic => 0,
            UtilizationPattern::Constant => 1,
            UtilizationPattern::Unpredictable => 2,
        };
        counts[slot] += 1;
        server_counts[slot] += t.n_servers;
        if i < 8 {
            let period = dominant_period_samples(trace.values())
                .map(|p| format!("{:.1}d", p / SAMPLES_PER_DAY as f64))
                .unwrap_or_else(|| "-".into());
            println!(
                "  {:<12} {:>13}  mean {:>4.0}%  peak {:>4.0}%  dominant period {:>6}  flatness {:.2}",
                t.name,
                pattern.to_string(),
                trace.mean() * 100.0,
                trace.peak() * 100.0,
                period,
                spectral_flatness(trace.values()),
            );
        }
    }
    let total_servers: usize = tenants.iter().map(|t| t.n_servers).sum();
    println!("  ... ({} tenants total)\n", tenants.len());
    for (slot, name) in ["periodic", "constant", "unpredictable"].iter().enumerate() {
        println!(
            "  {name:>13}: {:>5.1}% of tenants, {:>5.1}% of servers",
            counts[slot] as f64 / tenants.len() as f64 * 100.0,
            server_counts[slot] as f64 / total_servers as f64 * 100.0,
        );
    }

    println!("\n== reimaging behaviour (12 simulated months) ==");
    let mut all_server_rates = Vec::new();
    for (i, t) in tenants.iter().enumerate() {
        let mut rng = indexed_rng(seed, "example-reimage", i as u64);
        let (events, _) = t.reimage.generate(&mut rng, t.n_servers, 12);
        all_server_rates.extend(per_server_monthly_rates(&events, t.n_servers, 12));
        if i < 4 {
            println!(
                "  {:<12} {:>6.2} reimages/server/month ({} events on {} servers)",
                t.name,
                tenant_monthly_rate(&events, t.n_servers, 12),
                events.len(),
                t.n_servers,
            );
        }
    }
    let below_one = all_server_rates.iter().filter(|&&r| r <= 1.0).count();
    println!(
        "  ... fleet: {:.1}% of servers at <=1 reimage/month (paper: >=90%)",
        below_one as f64 / all_server_rates.len() as f64 * 100.0
    );
}
