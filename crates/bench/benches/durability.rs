//! Benchmark for the Figure 15 durability simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_cluster::Datacenter;
use harvest_dfs::durability::{simulate_durability, DurabilityConfig};
use harvest_dfs::placement::PlacementPolicy;
use harvest_trace::datacenter::DatacenterProfile;
use std::hint::black_box;

fn bench_durability(c: &mut Criterion) {
    let dc = Datacenter::generate(&DatacenterProfile::dc(3).scaled(0.02), 42);
    let mut group = c.benchmark_group("fig15_durability_6_months");
    group.sample_size(10);
    for policy in [PlacementPolicy::Stock, PlacementPolicy::History] {
        group.bench_function(policy.label(), |b| {
            b.iter(|| {
                let mut cfg = DurabilityConfig::paper(policy, 3, 7);
                cfg.months = 6;
                black_box(simulate_durability(black_box(&dc), &cfg))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_durability
}
criterion_main!(benches);
