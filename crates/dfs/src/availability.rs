//! The availability simulation (Figure 16).
//!
//! A block access fails when *every* replica sits on a server whose
//! primary CPU utilization exceeds the busy threshold (2/3 — §6.4:
//! "accesses cannot proceed if CPU utilization is higher than 66%").
//! Placement diversity across peak-utilization rows is what keeps at
//! least one replica reachable as utilization scales up.
//!
//! With a [`NetworkConfig`], accesses additionally pay transfer latency:
//! a read served by the block's first replica is local and free, while a
//! busy first replica forces a *remote* read from the nearest available
//! copy — in-rack or across the oversubscribed core — which is the
//! latency penalty hiding inside Figure 16's busy-server story.
//!
//! With a [`DiskConfig`], the story deepens: every read pays disk
//! service time at its source, the source's primary tenant competes for
//! that disk through the configured util→demand mapping, and a replica
//! whose disk the isolation manager has throttled (§6) cannot serve
//! secondary reads at all — so "busy local replica" stops being a CPU
//! coin flip and becomes an emergent property of modeled primary I/O.

use harvest_cluster::reserve::is_busy;
use harvest_cluster::{Datacenter, ServerId, UtilizationView};
use harvest_disk::{DiskConfig, MIN_SERVE_FRACTION};
use harvest_net::{NetworkConfig, Topology};
use harvest_signal::classify::UtilizationPattern;
use harvest_sim::fault::{FaultKind, FaultPlan};
use harvest_sim::metrics::Histogram;
use harvest_sim::rng::stream_rng;
use harvest_sim::{dist, SimDuration, SimTime};
use rand::RngExt;

use crate::placement::{PlacementPolicy, Placer};
use crate::store::{BlockId, BlockStore, BLOCK_BYTES};

/// Availability-simulation parameters.
#[derive(Debug, Clone)]
pub struct AvailabilityConfig {
    /// Placement policy under test.
    pub policy: PlacementPolicy,
    /// Replicas per block.
    pub replication: usize,
    /// Fraction of harvestable space filled with blocks.
    pub fill_fraction: f64,
    /// Simulated span (the paper uses one month).
    pub span: SimDuration,
    /// Mean block accesses per second across the cluster.
    pub accesses_per_second: f64,
    /// Master seed.
    pub seed: u64,
    /// When set, successful reads are charged their network transfer
    /// latency over this fabric (`None` keeps reads free, as the seed
    /// model did).
    pub network: Option<NetworkConfig>,
    /// When set, reads also pay disk service time at their source, and
    /// a replica whose disk the isolation manager is throttling (its
    /// primary is doing substantial I/O) cannot serve at all. `None`
    /// keeps disks free and infinitely fast.
    pub disk: Option<DiskConfig>,
    /// Injected faults. A crashed or powered-off server cannot serve
    /// any replica until it restarts, and a failed disk takes its
    /// replicas offline for the rest of the span (the availability
    /// model has no repair process). Uplink and disk-brown-out events
    /// are ignored here: this simulation samples a tick grid rather
    /// than routing individual transfers, so only whole-server
    /// reachability matters. [`FaultPlan::none`] leaves every result
    /// bitwise identical to a build without the fault machinery.
    pub faults: FaultPlan,
}

impl AvailabilityConfig {
    /// The paper's one-month setup.
    pub fn paper(policy: PlacementPolicy, replication: usize, seed: u64) -> Self {
        AvailabilityConfig {
            policy,
            replication,
            fill_fraction: 0.5,
            span: SimDuration::from_days(30),
            accesses_per_second: 10.0,
            seed,
            network: None,
            disk: None,
            faults: FaultPlan::none(),
        }
    }
}

/// Outcome of an availability simulation.
#[derive(Debug, Clone)]
pub struct AvailabilityResult {
    /// Blocks placed.
    pub n_blocks: u64,
    /// Total accesses attempted.
    pub accesses: u64,
    /// Accesses that found every replica busy.
    pub failed: u64,
    /// Percentage of failed accesses (Figure 16's y-axis).
    pub failed_percent: f64,
    /// Mean fleet utilization of the view (Figure 16's x-axis).
    pub mean_utilization: f64,
    /// Reads forced off the block's first (local) replica because its
    /// server was busy — CPU-busy, or disk-throttled with the disk model
    /// on (0 with both models off).
    pub forced_remote_reads: u64,
    /// Mean read latency in milliseconds: network transfer plus disk
    /// service, whichever models are on (0 with both off).
    pub mean_read_ms: f64,
    /// 99th-percentile read latency in milliseconds (0 with both models
    /// off).
    pub p99_read_ms: f64,
    /// Accesses that failed *only* because every CPU-available replica
    /// sat behind a throttled disk (0 with the disk model off) — the
    /// unavailability the seed model could not see.
    pub disk_only_failures: u64,
    /// Server-ticks spent fault-down (crashed, powered off, or past a
    /// disk failure) — 0 without an armed fault plan.
    pub fault_down_ticks: u64,
}

/// Runs the availability simulation.
pub fn simulate_availability(
    dc: &Datacenter,
    view: &UtilizationView,
    cfg: &AvailabilityConfig,
) -> AvailabilityResult {
    assert!(cfg.replication >= 1, "replication must be at least 1");
    let placer = Placer::new(dc, cfg.policy);
    let mut store = BlockStore::new(dc);
    let mut rng = stream_rng(cfg.seed, "availability");
    let n_servers = dc.n_servers();

    // Per-server fault-down intervals, empty without an armed plan —
    // the mask merge below is then a no-op and the trajectory matches
    // the fault-free build bit for bit.
    let down = if cfg.faults.is_none() {
        Vec::new()
    } else {
        fault_down_intervals(dc, &cfg.faults, SimTime::ZERO + cfg.span)
    };
    let down_at = |now: SimTime, busy: &mut [bool]| -> u64 {
        let mut n = 0u64;
        for &(start, end, server) in &down {
            if start <= now && now < end {
                busy[server as usize] = true;
                n += 1;
            }
        }
        n
    };

    // Place blocks with the busy mask of time zero (creation-time
    // awareness for PT/H; Stock ignores the mask internally).
    let mut busy0 = busy_mask(dc, view, SimTime::ZERO);
    down_at(SimTime::ZERO, &mut busy0);
    let capacity = dc.total_harvest_blocks();
    let target = ((capacity as f64 * cfg.fill_fraction) / cfg.replication as f64) as u64;
    let mut n_blocks = 0u64;
    for _ in 0..target {
        let writer = ServerId(rng.random_range(0..n_servers) as u32);
        match placer.place_new(&mut rng, &store, writer, cfg.replication, Some(&busy0)) {
            Some(p) => {
                store.create_block(&p.servers);
                n_blocks += 1;
            }
            None => break,
        }
    }

    // Replay a month of accesses on the two-minute utilization grid.
    let topo = cfg
        .network
        .as_ref()
        .map(|net| Topology::from_datacenter(dc, net));
    // With the disk model on, each server's primary disk demand follows
    // its tenant's class and CPU utilization.
    let patterns: Vec<UtilizationPattern> = if cfg.disk.is_some() {
        dc.servers
            .iter()
            .map(|s| dc.tenant(s.tenant).pattern)
            .collect()
    } else {
        Vec::new()
    };
    let tick = harvest_trace::SAMPLE_INTERVAL;
    let accesses_per_tick = cfg.accesses_per_second * tick.as_secs_f64();
    let n_ticks = cfg.span.div_duration(tick);
    let mut accesses = 0u64;
    let mut failed = 0u64;
    let mut forced_remote = 0u64;
    let mut disk_only = 0u64;
    let mut fault_down_ticks = 0u64;
    // A month of accesses is tens of millions of samples; a fixed-bin
    // histogram gives the mean and p99 the result reports in O(bins)
    // memory instead of storing every latency. Its ceiling is the
    // fabric's worst-case idle transfer plus the slowest disk read a
    // replica is still allowed to serve (plus slack), so no
    // configuration — however slow — can clamp the reported p99.
    let net_ceiling = topo
        .as_ref()
        .map(|t| t.max_idle_transfer_secs(BLOCK_BYTES) * 1_000.0);
    let disk_ceiling = cfg.disk.as_ref().map(|d| {
        (BLOCK_BYTES as f64 / (d.read_bytes_per_sec() * MIN_SERVE_FRACTION) + d.seek_ms / 1_000.0)
            * 1_000.0
    });
    let ceiling_ms = match (net_ceiling, disk_ceiling) {
        (None, None) => 1_000.0,
        (n, d) => (n.unwrap_or(0.0) + d.unwrap_or(0.0)) * 1.01,
    };
    let mut latencies = Histogram::new(0.0, ceiling_ms, 2_000);
    let mut latency_sum = 0.0;
    let mut served_tracked = 0u64;
    for k in 0..n_ticks {
        let now = SimTime::ZERO + tick.mul_f64(k as f64);
        let utils: Vec<f64> = (0..dc.n_servers())
            .map(|s| view.server_util(ServerId(s as u32), now))
            .collect();
        let mut busy: Vec<bool> = utils.iter().map(|&u| is_busy(u)).collect();
        fault_down_ticks += down_at(now, &mut busy);
        let busy = busy;
        // A replica's disk service time for a block read, or `None` when
        // the isolation manager has its secondary I/O throttled below a
        // usable share (the replica cannot serve).
        let disk_ms = |s: usize| -> Option<f64> {
            match cfg.disk.as_ref() {
                None => Some(0.0),
                Some(d) => {
                    let demand = d.primary.demand_fraction(patterns[s], utils[s]);
                    d.read_service_secs(demand, BLOCK_BYTES)
                        .map(|t| t * 1_000.0)
                }
            }
        };
        let n_acc = dist::poisson(&mut rng, accesses_per_tick);
        // Degenerate but reachable on tiny clusters under a hostile
        // creation-time busy mask: not a single block could be placed.
        // Every access then fails instead of panicking on an empty draw.
        if n_blocks == 0 {
            accesses += n_acc;
            failed += n_acc;
            continue;
        }
        for _ in 0..n_acc {
            let block = BlockId(rng.random_range(0..n_blocks));
            accesses += 1;
            let replicas = store.replicas(block);
            let cpu_available = replicas.iter().any(|&s| !busy[s as usize]);
            // A replica serves when its CPU is below the busy threshold
            // *and* (with the disk model) its disk will take secondary
            // reads.
            let service_of = |s: u32| -> Option<f64> {
                if busy[s as usize] {
                    return None;
                }
                disk_ms(s as usize)
            };
            if !replicas.iter().any(|&s| service_of(s).is_some()) {
                failed += 1;
                if cpu_available {
                    disk_only += 1;
                }
                continue;
            }
            // The read is served. Charge what the enabled models price:
            // the first replica is the writer-local copy the consuming
            // task was scheduled next to; a busy local server forces the
            // read to the cheapest serving copy across the network.
            if topo.is_none() && cfg.disk.is_none() {
                continue;
            }
            let local = ServerId(replicas[0]);
            let net_ms = |s: ServerId| -> f64 {
                topo.as_ref()
                    .map(|t| t.idle_transfer_secs(s, local, BLOCK_BYTES) * 1_000.0)
                    .unwrap_or(0.0)
            };
            let ms = match service_of(replicas[0]) {
                Some(local_disk_ms) => local_disk_ms,
                None => {
                    forced_remote += 1;
                    replicas
                        .iter()
                        .filter_map(|&s| Some(service_of(s)? + net_ms(ServerId(s))))
                        .fold(f64::MAX, f64::min)
                }
            };
            latencies.push(ms);
            latency_sum += ms;
            served_tracked += 1;
        }
    }

    AvailabilityResult {
        n_blocks,
        accesses,
        failed,
        failed_percent: if accesses == 0 {
            0.0
        } else {
            failed as f64 / accesses as f64 * 100.0
        },
        mean_utilization: view.mean_fleet_util(),
        forced_remote_reads: forced_remote,
        mean_read_ms: if served_tracked == 0 {
            0.0
        } else {
            latency_sum / served_tracked as f64
        },
        p99_read_ms: latencies.quantile(0.99).unwrap_or(0.0),
        disk_only_failures: disk_only,
        fault_down_ticks,
    }
}

/// Expands a fault plan into `(start, end, server)` down intervals: a
/// crash (or rack power loss) opens an interval that the matching
/// restart closes, and a disk failure keeps the server's replicas
/// offline through the end of the span. Uplink and brown-out events do
/// not produce intervals (see [`AvailabilityConfig::faults`]).
fn fault_down_intervals(
    dc: &Datacenter,
    plan: &FaultPlan,
    span_end: SimTime,
) -> Vec<(SimTime, SimTime, u32)> {
    let n = dc.n_servers() as u32;
    // Per-server (time, down?) edges, in plan order (already sorted).
    let mut edges: Vec<(SimTime, bool, u32)> = Vec::new();
    for ev in plan.events.iter().filter(|e| e.at < span_end) {
        match ev.kind {
            FaultKind::ServerCrash { server } if server < n => {
                edges.push((ev.at, true, server));
            }
            FaultKind::ServerRestart { server } if server < n => {
                edges.push((ev.at, false, server));
            }
            FaultKind::RackPowerLoss { rack } => {
                for s in dc.servers_in_rack(rack) {
                    edges.push((ev.at, true, s));
                }
            }
            FaultKind::RackPowerRestore { rack } => {
                for s in dc.servers_in_rack(rack) {
                    edges.push((ev.at, false, s));
                }
            }
            FaultKind::DiskFail { server } if server < n => {
                edges.push((ev.at, true, server));
            }
            _ => {}
        }
    }
    let mut open: std::collections::HashMap<u32, SimTime> = std::collections::HashMap::new();
    let mut intervals = Vec::new();
    for (at, goes_down, server) in edges {
        if goes_down {
            open.entry(server).or_insert(at);
        } else if let Some(start) = open.remove(&server) {
            intervals.push((start, at, server));
        }
    }
    let mut dangling: Vec<(u32, SimTime)> = open.into_iter().collect();
    dangling.sort_unstable();
    for (server, start) in dangling {
        intervals.push((start, span_end, server));
    }
    intervals
}

/// The busy mask at an instant: true for servers denying accesses.
pub fn busy_mask(dc: &Datacenter, view: &UtilizationView, now: SimTime) -> Vec<bool> {
    (0..dc.n_servers())
        .map(|s| is_busy(view.server_util(ServerId(s as u32), now)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_trace::datacenter::DatacenterProfile;
    use harvest_trace::scaling::{calibrate, ScalingKind};

    fn setup(target_util: f64) -> (Datacenter, UtilizationView) {
        let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 31);
        let traces: Vec<_> = dc.tenants.iter().map(|t| &t.trace).collect();
        let factor = calibrate(&traces, ScalingKind::Linear, target_util);
        let view = UtilizationView::scaled(&dc, ScalingKind::Linear, factor);
        (dc, view)
    }

    fn run(policy: PlacementPolicy, util: f64, replication: usize) -> AvailabilityResult {
        let (dc, view) = setup(util);
        let mut cfg = AvailabilityConfig::paper(policy, replication, 7);
        cfg.span = SimDuration::from_days(3);
        cfg.accesses_per_second = 5.0;
        simulate_availability(&dc, &view, &cfg)
    }

    #[test]
    fn low_utilization_has_negligible_failures() {
        // Figure 16: ~0% failed accesses at low utilization. A handful of
        // accesses out of a million can still land on a transiently busy
        // replica set, so assert a negligible *rate* rather than exactly
        // zero (the exact count is RNG-stream dependent).
        for policy in PlacementPolicy::ALL {
            let r = run(policy, 0.25, 3);
            assert!(
                r.failed_percent < 0.01,
                "{policy} failed {}% of accesses at 25% util",
                r.failed_percent
            );
        }
    }

    #[test]
    fn zero_placed_blocks_fails_every_access_without_panicking() {
        // fill_fraction 0 forces the degenerate no-blocks store; the
        // access replay must count failures, not panic on an empty draw.
        let (dc, view) = setup(0.3);
        let mut cfg = AvailabilityConfig::paper(PlacementPolicy::Stock, 3, 7);
        cfg.span = SimDuration::from_hours(6);
        cfg.fill_fraction = 0.0;
        let r = simulate_availability(&dc, &view, &cfg);
        assert_eq!(r.n_blocks, 0);
        assert!(r.accesses > 0);
        assert_eq!(r.failed, r.accesses);
        assert_eq!(r.failed_percent, 100.0);
    }

    #[test]
    fn high_utilization_fails_stock_first() {
        let stock = run(PlacementPolicy::Stock, 0.55, 3);
        let hist = run(PlacementPolicy::History, 0.55, 3);
        assert!(
            hist.failed_percent <= stock.failed_percent,
            "HDFS-H ({}) worse than Stock ({})",
            hist.failed_percent,
            stock.failed_percent
        );
    }

    #[test]
    fn extra_replication_reduces_failures() {
        let r3 = run(PlacementPolicy::Stock, 0.6, 3);
        let r4 = run(PlacementPolicy::Stock, 0.6, 4);
        assert!(
            r4.failed_percent <= r3.failed_percent,
            "R=4 ({}) worse than R=3 ({})",
            r4.failed_percent,
            r3.failed_percent
        );
    }

    #[test]
    fn accesses_follow_configured_rate() {
        let r = run(PlacementPolicy::Stock, 0.4, 3);
        let expected = 5.0 * 3.0 * 86_400.0;
        let ratio = r.accesses as f64 / expected;
        assert!((0.95..1.05).contains(&ratio), "accesses off: {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(PlacementPolicy::History, 0.5, 3);
        let b = run(PlacementPolicy::History, 0.5, 3);
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.accesses, b.accesses);
    }

    fn run_with_network(policy: PlacementPolicy, util: f64) -> AvailabilityResult {
        let (dc, view) = setup(util);
        let mut cfg = AvailabilityConfig::paper(policy, 3, 7);
        cfg.span = SimDuration::from_days(2);
        cfg.accesses_per_second = 5.0;
        cfg.network = Some(NetworkConfig::datacenter());
        simulate_availability(&dc, &view, &cfg)
    }

    #[test]
    fn network_off_reads_are_free() {
        let r = run(PlacementPolicy::Stock, 0.55, 3);
        assert_eq!(r.forced_remote_reads, 0);
        assert_eq!(r.mean_read_ms, 0.0);
        assert_eq!(r.p99_read_ms, 0.0);
    }

    #[test]
    fn busy_local_replicas_force_paid_remote_reads() {
        let r = run_with_network(PlacementPolicy::Stock, 0.55);
        assert!(r.forced_remote_reads > 0, "no remote reads at 55% util");
        assert!(r.mean_read_ms > 0.0);
        // A forced remote read moves a 256 MB block: at least ~0.2 s on
        // an otherwise-idle 10 GbE path.
        assert!(r.p99_read_ms == 0.0 || r.p99_read_ms >= 200.0);
    }

    #[test]
    fn utilization_scales_the_remote_read_penalty() {
        let low = run_with_network(PlacementPolicy::Stock, 0.3);
        let high = run_with_network(PlacementPolicy::Stock, 0.6);
        assert!(
            high.forced_remote_reads > low.forced_remote_reads,
            "busier fleet forced fewer remote reads? {} vs {}",
            high.forced_remote_reads,
            low.forced_remote_reads
        );
        assert!(high.mean_read_ms >= low.mean_read_ms);
    }

    fn run_with_disk(util: f64, disk: DiskConfig, net: bool) -> AvailabilityResult {
        let (dc, view) = setup(util);
        let mut cfg = AvailabilityConfig::paper(PlacementPolicy::Stock, 3, 7);
        cfg.span = SimDuration::from_days(2);
        cfg.accesses_per_second = 5.0;
        cfg.network = net.then(NetworkConfig::datacenter);
        cfg.disk = Some(disk);
        simulate_availability(&dc, &view, &cfg)
    }

    #[test]
    fn disk_off_sees_no_disk_failures() {
        let r = run_with_network(PlacementPolicy::Stock, 0.55);
        assert_eq!(r.disk_only_failures, 0);
    }

    #[test]
    fn disk_service_time_prices_every_read() {
        // Disk on, network off: even local reads pay the platter. A
        // 256 MB block at 160 MB/s is at least 1.6 s.
        let r = run_with_disk(0.3, DiskConfig::datacenter(), false);
        assert!(r.mean_read_ms >= 1_600.0, "mean {} ms", r.mean_read_ms);
        assert!(r.p99_read_ms >= r.mean_read_ms * 0.5);
    }

    #[test]
    fn throttled_disks_create_emergent_unavailability() {
        // At high utilization many primaries' disk demand crosses the
        // isolation threshold; their replicas cannot serve secondary
        // reads even when their CPUs could, so the disk model both
        // forces extra remote reads and fails accesses the CPU-only
        // model would have served.
        let without = run_with_network(PlacementPolicy::Stock, 0.6);
        let with = run_with_disk(0.6, DiskConfig::datacenter(), true);
        assert!(
            with.disk_only_failures > 0,
            "no disk-only failures at 60% util"
        );
        assert!(
            with.failed >= without.failed,
            "disk model reduced failures? {} vs {}",
            with.failed,
            without.failed
        );
        // Locally served reads can only shrink: a local replica now has
        // to pass the disk check too. (Some would-be remote reads fail
        // outright instead, so compare the two pushed-off-local sums.)
        assert!(
            with.forced_remote_reads + with.failed >= without.forced_remote_reads + without.failed,
            "disk model served more reads locally? {}+{} vs {}+{}",
            with.forced_remote_reads,
            with.failed,
            without.forced_remote_reads,
            without.failed
        );
    }

    #[test]
    fn fair_share_disks_serve_slowly_instead_of_failing() {
        // Without an isolation manager the same demand merely slows
        // reads down: fewer disk-only failures, higher tail latency per
        // served read than the throttled config (which refuses the
        // reads it would serve slowest).
        let throttled = run_with_disk(0.6, DiskConfig::datacenter(), true);
        let fair = run_with_disk(0.6, DiskConfig::fair_share(), true);
        assert!(fair.disk_only_failures <= throttled.disk_only_failures);
        assert!(fair.mean_read_ms > 0.0);
    }

    #[test]
    fn armed_plan_with_no_reachable_events_matches_fault_free() {
        // Oracle: an armed plan whose only event is past the span must
        // not perturb a single counter.
        let (dc, view) = setup(0.5);
        let mut base = AvailabilityConfig::paper(PlacementPolicy::History, 3, 7);
        base.span = SimDuration::from_days(2);
        base.accesses_per_second = 5.0;
        base.network = Some(NetworkConfig::datacenter());
        let mut armed = base.clone();
        armed.faults = FaultPlan::with_events(vec![harvest_sim::fault::FaultEvent {
            at: SimTime::ZERO + SimDuration::from_days(365),
            kind: FaultKind::ServerCrash { server: 0 },
        }]);
        let a = simulate_availability(&dc, &view, &base);
        let b = simulate_availability(&dc, &view, &armed);
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.forced_remote_reads, b.forced_remote_reads);
        assert_eq!(a.mean_read_ms, b.mean_read_ms);
        assert_eq!(a.p99_read_ms, b.p99_read_ms);
        assert_eq!(b.fault_down_ticks, 0);
    }

    #[test]
    fn rack_loss_degrades_availability() {
        // Powering a rack off for half the span makes every access to a
        // block fully resident there fail — strictly more failures than
        // the fault-free run, visible as fault-down server-ticks.
        let (dc, view) = setup(0.5);
        let mut cfg = AvailabilityConfig::paper(PlacementPolicy::Stock, 3, 7);
        cfg.span = SimDuration::from_days(2);
        cfg.accesses_per_second = 5.0;
        let clean = simulate_availability(&dc, &view, &cfg);
        let mut faulted = cfg.clone();
        faulted.faults = FaultPlan::with_events(vec![
            harvest_sim::fault::FaultEvent {
                at: SimTime::ZERO + SimDuration::from_hours(2),
                kind: FaultKind::RackPowerLoss { rack: 0 },
            },
            harvest_sim::fault::FaultEvent {
                at: SimTime::ZERO + SimDuration::from_hours(26),
                kind: FaultKind::RackPowerRestore { rack: 0 },
            },
        ]);
        let f = simulate_availability(&dc, &view, &faulted);
        assert!(f.fault_down_ticks > 0, "no fault-down ticks recorded");
        assert!(
            f.failed > clean.failed,
            "rack loss did not degrade availability: {} vs {}",
            f.failed,
            clean.failed
        );
    }

    #[test]
    fn faulted_availability_is_deterministic() {
        let (dc, view) = setup(0.5);
        let mut cfg = AvailabilityConfig::paper(PlacementPolicy::Stock, 3, 7);
        cfg.span = SimDuration::from_days(2);
        cfg.accesses_per_second = 5.0;
        cfg.faults = FaultPlan::with_events(vec![harvest_sim::fault::FaultEvent {
            at: SimTime::ZERO + SimDuration::from_hours(2),
            kind: FaultKind::DiskFail { server: 3 },
        }]);
        let a = simulate_availability(&dc, &view, &cfg);
        let b = simulate_availability(&dc, &view, &cfg);
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.fault_down_ticks, b.fault_down_ticks);
    }

    #[test]
    fn disk_model_is_deterministic() {
        let a = run_with_disk(0.5, DiskConfig::datacenter(), true);
        let b = run_with_disk(0.5, DiskConfig::datacenter(), true);
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.disk_only_failures, b.disk_only_failures);
        assert_eq!(a.mean_read_ms, b.mean_read_ms);
        assert_eq!(a.p99_read_ms, b.p99_read_ms);
    }
}
