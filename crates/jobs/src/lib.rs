//! Batch jobs as DAGs: the Tez-side substrate.
//!
//! Tez "provides an AM that executes complex jobs as DAGs" (§5.1). This
//! crate models those jobs and everything Tez-H needs from them:
//!
//! * [`dag`] — job DAGs of stages (mappers/reducers) with task counts and
//!   durations;
//! * [`estimate`] — the breadth-first max-concurrent-resources estimate
//!   of Algorithm 1 line 4 (Figure 7's example evaluates to 469);
//! * [`length`] — short/medium/long job typing from the last run
//!   (Algorithm 1 line 3, thresholds 173 s and 433 s on the testbed);
//! * [`tpcds`] — a 52-query TPC-DS-like workload with query 19 matching
//!   Figure 7;
//! * [`workload`] — Poisson job arrivals (§6.1: mean 300 s);
//! * [`exec`] — the per-job execution state machine the Application
//!   Master drives (ready/running/killed/finished tasks);
//! * [`shuffle`] — deterministic inter-stage shuffle volumes, the bytes
//!   the `harvest-net` fabric carries between dependent stages.

pub mod dag;
pub mod estimate;
pub mod exec;
pub mod length;
pub mod shuffle;
pub mod tpcds;
pub mod workload;

pub use dag::{DagJob, Stage, StageId};
pub use estimate::max_concurrent_tasks;
pub use exec::JobExecution;
pub use length::{JobLength, LengthThresholds};
