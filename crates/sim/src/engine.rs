//! Deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue keyed on [`SimTime`] with FIFO
//! tie-breaking: two events scheduled for the same instant pop in the order
//! they were pushed. This makes every simulation in the workspace replay
//! bit-identically for a fixed seed, which the paper's "five runs per
//! point" methodology depends on.
//!
//! Events can be cancelled: [`EventQueue::push_keyed`] returns an
//! [`EventKey`] that [`EventQueue::cancel`] later revokes. Cancellation
//! is lazy — the heap entry becomes a tombstone — but the queue keeps
//! two invariants that make tombstones invisible to callers: the heap
//! top is always a live event (tombstones are purged off the top after
//! every `cancel` and `pop`, so [`EventQueue::peek_time`] is exact), and
//! the heap is compacted whenever tombstones outnumber live events.
//! This is what lets re-predicting simulators (the `harvest-net` fabric,
//! the `harvest-disk` pool) revoke superseded completion events instead
//! of accumulating O(re-shares × population) stale entries.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// A handle to a pushed event, for [`EventQueue::cancel`]. Keys are
/// unique over the queue's lifetime (never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

/// Compaction threshold: rebuild the heap once it holds more than this
/// many tombstones *and* tombstones outnumber live events.
const COMPACT_MIN_TOMBSTONES: usize = 64;

/// A scheduled event: the payload `E` plus its firing time and a sequence
/// number used for FIFO tie-breaking.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use harvest_sim::engine::EventQueue;
/// use harvest_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(1), "first");
/// q.push(SimTime::from_secs(1), "second");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Sequence numbers of heap entries that have not been cancelled.
    /// `heap.len() - live.len()` is the current tombstone count.
    live: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    /// Cancels of keys that had already fired or been cancelled —
    /// no-ops, but counted so fault-driven mass cancellation (which
    /// often double-cancels through independent abort paths) stays
    /// observable.
    dead_cancels: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            dead_cancels: 0,
        }
    }

    /// Creates an empty queue with capacity for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            live: HashSet::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            dead_cancels: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release builds the event fires "now" (the clock never runs
    /// backwards).
    pub fn push(&mut self, time: SimTime, event: E) {
        self.push_keyed(time, event);
    }

    /// Schedules `event` to fire at `time` and returns a key that
    /// [`EventQueue::cancel`] can later revoke. Same past-scheduling
    /// rules as [`EventQueue::push`].
    pub fn push_keyed(&mut self, time: SimTime, event: E) -> EventKey {
        debug_assert!(
            time >= self.now,
            "event scheduled in the past: {time} < {now}",
            now = self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Scheduled { time, seq, event });
        EventKey(seq)
    }

    /// Revokes a pending event so it never pops. Returns `true` if the
    /// event was still pending; `false` if it already fired (or was
    /// already cancelled), in which case nothing changes.
    ///
    /// Cancellation is O(1) amortized: the heap entry becomes a
    /// tombstone, tombstones are swept off the heap top eagerly, and the
    /// whole heap is compacted once tombstones outnumber live events.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if !self.live.remove(&key.0) {
            self.dead_cancels += 1;
            return false;
        }
        self.purge_top();
        let tombstones = self.heap.len() - self.live.len();
        if tombstones > COMPACT_MIN_TOMBSTONES && tombstones > self.live.len() {
            let mut entries = std::mem::take(&mut self.heap).into_vec();
            entries.retain(|s| self.live.contains(&s.seq));
            self.heap = BinaryHeap::from(entries);
        }
        true
    }

    /// Drops cancelled entries from the top of the heap, restoring the
    /// invariant that `heap.peek()` is a live event (or the heap is
    /// empty). Called after every `cancel` and `pop`.
    fn purge_top(&mut self) {
        while let Some(s) = self.heap.peek() {
            if self.live.contains(&s.seq) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Pops the earliest live event, advancing the clock to its firing
    /// time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.live.remove(&s.seq);
        self.purge_top();
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Returns the firing time of the next live event without popping
    /// it (cancelled events are never visible here).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// The current simulated time (the firing time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of heap entries, counting not-yet-collected tombstones —
    /// the physical queue size (the metric callers track as
    /// `peak_queue_len`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of pending (live, uncancelled) events.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Number of cancelled entries still occupying the heap.
    pub fn n_stale(&self) -> usize {
        self.heap.len() - self.live.len()
    }

    /// Number of [`EventQueue::cancel`] calls that found nothing to
    /// cancel (the key had already fired or already been cancelled).
    pub fn n_dead_cancels(&self) -> u64 {
        self.dead_cancels
    }

    /// Whether no events are pending. (The heap holds a tombstone only
    /// below a live event, so an empty heap means no live events too.)
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(30), 3);
        q.push(SimTime::from_secs(10), 1);
        q.push(SimTime::from_secs(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_break() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_secs(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        q.push(SimTime::from_secs(1), ());
        let (t1, _) = q.pop().unwrap();
        assert_eq!(q.now(), t1);
        let (t2, _) = q.pop().unwrap();
        assert!(t2 >= t1);
        assert_eq!(q.now(), t2);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "a");
        let (t, _) = q.pop().unwrap();
        // Schedule relative to current time, as simulation handlers do.
        q.push(t + SimDuration::from_secs(5), "b");
        q.push(t + SimDuration::from_secs(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(42)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancelled_events_never_pop() {
        let mut q = EventQueue::new();
        let _a = q.push_keyed(SimTime::from_secs(1), "a");
        let b = q.push_keyed(SimTime::from_secs(2), "b");
        let _c = q.push_keyed(SimTime::from_secs(3), "c");
        assert!(q.cancel(b));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "c"]);
    }

    #[test]
    fn cancelling_the_top_keeps_peek_exact() {
        let mut q = EventQueue::new();
        let a = q.push_keyed(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(5), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert!(q.cancel(a));
        // The tombstone was purged off the top: peek sees the live event.
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.n_stale(), 0);
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        let mut q = EventQueue::new();
        let a = q.push_keyed(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(!q.cancel(a), "cancelling a fired event must return false");
        assert!(!q.cancel(a), "double cancel must stay false");
        assert!(q.is_empty());
    }

    #[test]
    fn dead_cancels_are_counted() {
        let mut q = EventQueue::new();
        let a = q.push_keyed(SimTime::from_secs(1), "a");
        let b = q.push_keyed(SimTime::from_secs(2), "b");
        assert_eq!(q.n_dead_cancels(), 0);
        // Cancel-after-fire counts.
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(!q.cancel(a));
        assert_eq!(q.n_dead_cancels(), 1);
        // A live cancel does not count...
        assert!(q.cancel(b));
        assert_eq!(q.n_dead_cancels(), 1);
        // ...but double-cancelling the same key does.
        assert!(!q.cancel(b));
        assert!(!q.cancel(b));
        assert_eq!(q.n_dead_cancels(), 3);
        // Dead cancels never resurrect or drop anything.
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancelling_everything_empties_the_heap() {
        let mut q = EventQueue::new();
        let keys: Vec<EventKey> = (0..10)
            .map(|i| q.push_keyed(SimTime::from_secs(i), i))
            .collect();
        for k in keys {
            assert!(q.cancel(k));
        }
        assert!(q.is_empty());
        assert_eq!(q.live_len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn compaction_bounds_tombstones() {
        let mut q = EventQueue::new();
        // One long-lived event pins the heap bottom; churn many
        // cancellations under it (cancelled entries are never the top,
        // so only compaction can collect them).
        q.push(SimTime::from_secs(1), u64::MAX);
        let mut cancelled = 0usize;
        for i in 0..10_000u64 {
            let k = q.push_keyed(SimTime::from_secs(1_000 + i), i);
            assert!(q.cancel(k));
            cancelled += 1;
            assert!(
                q.n_stale() <= COMPACT_MIN_TOMBSTONES + 1,
                "tombstones {} after {cancelled} cancels",
                q.n_stale()
            );
        }
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.pop().unwrap().1, u64::MAX);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancellation_preserves_fifo_of_survivors() {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for i in 0..50u64 {
            keys.push(q.push_keyed(SimTime::from_secs(7), i));
        }
        for (i, k) in keys.iter().enumerate() {
            if i % 3 != 1 {
                q.cancel(*k);
            }
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let expect: Vec<u64> = (0..50).filter(|i| i % 3 == 1).collect();
        assert_eq!(popped, expect);
    }
}
