//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--full] [--net] [--disk] [--full-sweep] [--seed N] [EXPERIMENT...]
//!
//!   EXPERIMENT    fig1..fig8, fig10..fig16, micro, or "all" (default)
//!   --full        bigger clusters, more runs (slower, tighter bands)
//!   --net         run over the harvest-net fabric (repair, remote
//!                 reads, and shuffles pay for bandwidth)
//!   --disk        run over the harvest-disk model (the same bytes pay
//!                 for platter bandwidth too; composes with --net)
//!   --full-sweep  run the scheduling simulations with full-fleet tick
//!                 sweeps instead of the change-driven default — the
//!                 bitwise-identical reference mode (slower; for
//!                 validation)
//!   --seed N      master seed (default 42)
//! ```

use std::process::ExitCode;

use harvest_core::{run_experiment, Scale, ALL_EXPERIMENTS};

fn main() -> ExitCode {
    // Collect flags first, apply them to the scale afterwards, so flag
    // order never matters (`--seed 7 --full` must keep seed 7).
    let mut full = false;
    let mut net = false;
    let mut disk = false;
    let mut full_sweep = false;
    let mut seed = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--net" => net = true,
            "--disk" => disk = true,
            "--full-sweep" => full_sweep = true,
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = Some(s),
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: repro [--full] [--net] [--disk] [--full-sweep] [--seed N] \
                     [EXPERIMENT...]"
                );
                println!("experiments: {} all", ALL_EXPERIMENTS.join(" "));
                return ExitCode::SUCCESS;
            }
            other => experiments.push(other.to_string()),
        }
    }
    let mut scale = if full { Scale::full() } else { Scale::quick() };
    if net {
        scale.network = Some(harvest_net::NetworkConfig::datacenter());
    }
    if disk {
        scale.disk = Some(harvest_disk::DiskConfig::datacenter());
    }
    if full_sweep {
        scale.tick_sweep = harvest_sched::TickSweep::Full;
    }
    if let Some(seed) = seed {
        scale.seed = seed;
    }
    // Validate every experiment name before expanding "all" or running
    // anything: a typo anywhere in the list (including a mistyped flag,
    // which parses as a name) must not cost the hour of experiments
    // around it.
    let unknown: Vec<&String> = experiments
        .iter()
        .filter(|e| *e != "all" && !ALL_EXPERIMENTS.contains(&e.as_str()))
        .collect();
    if !unknown.is_empty() {
        for e in unknown {
            eprintln!("error: unknown experiment '{e}'");
        }
        eprintln!("valid experiments: {} all", ALL_EXPERIMENTS.join(" "));
        return ExitCode::FAILURE;
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    for id in &experiments {
        let started = std::time::Instant::now();
        match run_experiment(id, &scale) {
            Ok(report) => {
                println!("{report}");
                eprintln!("[{id} took {:.1}s]", started.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
