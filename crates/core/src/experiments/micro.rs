//! §6.2 performance microbenchmarks.
//!
//! "For task scheduling, clustering takes on average 2 minutes for the
//! primary tenants of DC-9, when running single-threaded. … The
//! clustering produces 23 classes (13 periodic, 5 constant, and 5
//! unpredictable) for DC-9. For this datacenter, class selection takes
//! less than 1 msec on average. For data placement, clustering and class
//! selection take on average 2.55 msecs per new block (0.81 msecs in
//! HDFS-Stock)."

use std::time::Instant;

use harvest_cluster::{Datacenter, ServerId, UtilizationView};
use harvest_dfs::placement::{PlacementPolicy, Placer};
use harvest_dfs::store::BlockStore;
use harvest_jobs::length::JobLength;
use harvest_sched::classes::ClusteringService;
use harvest_sched::headroom::RankingWeights;
use harvest_sched::select::select_classes;
use harvest_signal::classify::UtilizationPattern;
use harvest_sim::rng::stream_rng;
use harvest_trace::datacenter::DatacenterProfile;
use rand::RngExt;

use crate::report::{num, Table};
use crate::scale::Scale;

/// §6.2 microbenchmarks: clustering, class selection, and per-block
/// placement timings for a DC-9-like input. With a live `rec` this is
/// also the observability showcase: it replays a recorded scheduling
/// run (network + disks on), a recorded reimage storm, and a profiled
/// `par_map` sweep, so one `repro micro --trace-out` run exercises
/// every subsystem's track. The showcase prints nothing and does not
/// touch the report.
pub fn micro(scale: &Scale, rec: &mut harvest_sim::obs::Recorder) -> String {
    let profile = DatacenterProfile::dc(9).scaled(scale.dc_scale.max(0.1));
    let dc = Datacenter::generate(&profile, scale.seed);
    let view = UtilizationView::unscaled(&dc);

    let mut table = Table::new(
        format!(
            "§6.2 microbenchmarks (DC-9 at {} tenants / {} servers)",
            dc.n_tenants(),
            dc.n_servers()
        ),
        &["operation", "measured", "paper (full DC-9)"],
    );

    // Clustering (the daily, off-critical-path job).
    let t0 = Instant::now();
    let svc = ClusteringService::build(&dc, scale.seed);
    let clustering = t0.elapsed();
    table.row(&[
        "scheduling clustering (total)".into(),
        format!("{:.1} ms", clustering.as_secs_f64() * 1e3),
        "~2 minutes".into(),
    ]);
    let classes = format!(
        "{} classes ({} periodic, {} constant, {} unpredictable)",
        svc.class_count(),
        svc.count_by_pattern(UtilizationPattern::Periodic),
        svc.count_by_pattern(UtilizationPattern::Constant),
        svc.count_by_pattern(UtilizationPattern::Unpredictable),
    );
    table.row(&[
        "clustering output".into(),
        classes,
        "23 classes (13 periodic, 5 constant, 5 unpredictable)".into(),
    ]);

    // Class selection (Algorithm 1).
    let mut rng = stream_rng(scale.seed, "micro-select");
    let utils: Vec<f64> = svc
        .classes()
        .iter()
        .map(|c| {
            let mut sum = 0.0;
            let mut n = 0usize;
            for &tid in &c.tenants {
                let t = dc.tenant(tid);
                sum += view.tenant_util(tid, harvest_sim::SimTime::ZERO) * t.n_servers() as f64;
                n += t.n_servers();
            }
            sum / n.max(1) as f64
        })
        .collect();
    let weights = RankingWeights::paper();
    let iters = 10_000;
    let t0 = Instant::now();
    for i in 0..iters {
        let length = match i % 3 {
            0 => JobLength::Short,
            1 => JobLength::Medium,
            _ => JobLength::Long,
        };
        let _ = select_classes(&mut rng, &svc, &weights, length, 64, &utils);
    }
    let select_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    table.row(&[
        "class selection (per job)".into(),
        format!("{} us", num(select_us, 1)),
        "< 1 ms".into(),
    ]);

    // Replica placement per new block: HDFS-H vs HDFS-Stock.
    for (policy, paper) in [
        (PlacementPolicy::History, "2.55 ms/block"),
        (PlacementPolicy::Stock, "0.81 ms/block"),
    ] {
        let placer = Placer::new(&dc, policy);
        let mut store = BlockStore::new(&dc);
        let mut rng = stream_rng(scale.seed, "micro-place");
        let blocks = 20_000u32;
        let t0 = Instant::now();
        for _ in 0..blocks {
            let writer = ServerId(rng.random_range(0..dc.n_servers()) as u32);
            if let Some(p) = placer.place_new(&mut rng, &store, writer, 3, None) {
                store.create_block(&p.servers);
            }
        }
        let per_block_us = t0.elapsed().as_secs_f64() * 1e6 / blocks as f64;
        table.row(&[
            format!("{policy} placement (per block)"),
            format!("{} us", num(per_block_us, 2)),
            paper.into(),
        ]);
    }

    table.note("absolute times differ (language, hardware, cluster size); the shape to check is clustering >> placement > selection, and HDFS-H placement costing a small constant factor over Stock");

    if rec.is_on() {
        record_showcase(scale, rec);
    }

    table.render()
}

/// Feeds the recorder one representative run of every instrumented
/// subsystem: a scheduling simulation with the fabric and disks on
/// (tick spans, flow and stream lifetimes, re-share sizes, per-stage
/// wait states), a reimage storm (repair spans and wait states), a
/// search-server run (per-request wait states), and a profiled
/// [`par_map_profiled`] sweep (wall-time worker tracks). Only runs
/// when recording is on — the microbenchmark report never depends on
/// it.
fn record_showcase(scale: &Scale, rec: &mut harvest_sim::obs::Recorder) {
    use harvest_jobs::tpcds::{scale_job, tpcds_suite};
    use harvest_jobs::workload::Workload;
    use harvest_sched::policy::SchedPolicy;
    use harvest_sched::sim::{SchedSim, SchedSimConfig};
    use harvest_sim::par::par_map_profiled;
    use harvest_sim::SimDuration;

    let network = scale
        .network
        .unwrap_or_else(harvest_net::NetworkConfig::datacenter);
    let disk = scale
        .disk
        .unwrap_or_else(harvest_disk::DiskConfig::datacenter);

    // A small recorded scheduling run: every tick, flow, and stream
    // lands on its subsystem's sim-time track.
    let profile = DatacenterProfile::dc(9).scaled(0.02);
    let dc = Datacenter::generate(&profile, scale.seed);
    let view = UtilizationView::unscaled(&dc);
    let suite: Vec<_> = tpcds_suite()
        .iter()
        .map(|q| scale_job(q, 16.0, 1.0))
        .collect();
    let mut wl_rng = stream_rng(scale.seed, "micro-obs-wl");
    let horizon = SimDuration::from_hours(1);
    let workload = Workload::poisson(&mut wl_rng, suite, SimDuration::from_secs(900), horizon);
    let mut cfg = SchedSimConfig::testbed(SchedPolicy::PrimaryAware, scale.seed);
    cfg.horizon = horizon;
    cfg.drain = SimDuration::from_hours(2);
    cfg.network = Some(network);
    cfg.disk = Some(disk);
    cfg.sharing = scale.sharing;
    cfg.sweep = scale.tick_sweep;
    let _ = SchedSim::new(&dc, &view, &workload, cfg).run_recorded(rec);

    // A recorded reimage storm: repair spans plus the fabric and disk
    // contention the converging re-replications cause.
    let tenant = dc
        .tenants
        .iter()
        .max_by_key(|t| t.n_servers())
        .expect("dc has tenants")
        .id;
    let mut storm = harvest_dfs::repair::StormConfig::new(tenant, scale.seed);
    storm.fill_fraction = 0.15;
    storm.network = Some(network);
    storm.disk = Some(disk);
    storm.sharing = scale.sharing;
    storm.max_repair_streams = Some(64);
    let _ = harvest_dfs::repair::simulate_reimage_storm_recorded(&dc, &storm, rec);

    // A recorded search-server run: per-request queued/running wait
    // states on the `service/request` state track.
    let server = harvest_service::lucene::SearchServer::lucene_like();
    let _ = server.run_recorded(0.9, 2_000, scale.seed, rec);

    // A profiled parallel sweep: per-worker busy/idle wall-time tracks.
    let queries = tpcds_suite();
    let (_, profiles) = par_map_profiled(scale.jobs, &queries, |q| q.critical_path());
    rec.record_worker_profiles("micro", &profiles);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_runs_and_reports() {
        let mut s = Scale::quick();
        s.dc_scale = 0.05;
        let out = micro(&s, &mut harvest_sim::obs::Recorder::off());
        assert!(out.contains("class selection"));
        assert!(out.contains("HDFS-H"));
        assert!(out.contains("HDFS-Stock"));
    }

    #[test]
    fn recorded_micro_covers_every_subsystem() {
        let mut s = Scale::quick();
        s.dc_scale = 0.05;
        s.jobs = 2;
        let mut rec = harvest_sim::obs::Recorder::new("micro-test");
        let out = micro(&s, &mut rec);
        // The report's *shape* is unchanged by recording (its timing
        // cells vary run to run, so byte-comparison lives in the
        // determinism suite over the deterministic fig reports).
        assert!(out.contains("class selection"));
        let trace = rec.chrome_trace_json();
        for track in ["\"sched\"", "\"fabric\"", "\"disk\"", "\"dfs\"", "micro/w0"] {
            assert!(trace.contains(track), "trace lacks {track} track");
        }
        for states in [
            "sched/stage",
            "fabric/flow",
            "disk/stream",
            "dfs/repair",
            "service/request",
        ] {
            assert!(trace.contains(states), "trace lacks {states} state track");
        }
        assert!(rec.counter_value("sched/tasks_started").is_some());
        assert!(rec.counter_value("dfs/repairs").is_some());
    }
}
