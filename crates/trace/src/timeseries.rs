//! Regularly-sampled utilization time series.

use harvest_sim::{SimDuration, SimTime};

/// A utilization trace sampled on a fixed interval.
///
/// Values are fractions in `[0, 1]`. Lookups past the end wrap around, so
/// a one-month trace can drive a simulation of any length (the paper's
/// durability simulations run for a year against monthly utilization
/// patterns).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    interval: SimDuration,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or `interval` is zero.
    pub fn new(interval: SimDuration, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "time series needs at least one sample");
        assert!(
            interval > SimDuration::ZERO,
            "time series interval must be positive"
        );
        TimeSeries { interval, values }
    }

    /// Creates a constant series of `len` samples.
    pub fn constant(interval: SimDuration, level: f64, len: usize) -> Self {
        TimeSeries::new(interval, vec![level; len])
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty (never true for a constructed series).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the raw samples (used by the scaling functions).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The sample covering instant `t`, wrapping past the end.
    pub fn at(&self, t: SimTime) -> f64 {
        let idx = (t.as_millis() / self.interval.as_millis()) as usize;
        self.values[idx % self.values.len()]
    }

    /// The sample at index `i`, wrapping.
    pub fn at_index(&self, i: usize) -> f64 {
        self.values[i % self.values.len()]
    }

    /// The sample at slot `slot` (a slot is one interval), wrapping —
    /// identical to [`TimeSeries::at`] for any instant inside the slot.
    pub fn at_slot(&self, slot: u64) -> f64 {
        self.values[(slot % self.values.len() as u64) as usize]
    }

    /// Whether the sample at `slot` differs (bitwise) from the sample at
    /// the previous slot. Slot 0 always counts as changed — there is no
    /// previous sample to match. Lets playback callers skip work for
    /// series that sat still across a sampling boundary.
    pub fn sample_changed(&self, slot: u64) -> bool {
        if slot == 0 {
            return true;
        }
        self.at_slot(slot).to_bits() != self.at_slot(slot - 1).to_bits()
    }

    /// The total time the series spans.
    pub fn span(&self) -> SimDuration {
        SimDuration::from_millis(self.interval.as_millis() * self.values.len() as u64)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Maximum sample.
    pub fn peak(&self) -> f64 {
        self.values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.values.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Population standard deviation of the samples.
    pub fn std_dev(&self) -> f64 {
        let mean = self.mean();
        let var =
            self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / self.values.len() as f64;
        var.sqrt()
    }

    /// Coefficient of variation (σ/μ), 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m.abs() < 1e-12 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// The `q`-quantile of the samples (`q` in `[0, 1]`), by linear
    /// interpolation.
    pub fn quantile(&self, q: f64) -> f64 {
        let mut sorted = self.values.clone();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let q = q.clamp(0.0, 1.0);
        let n = sorted.len();
        if n == 1 {
            return sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }

    /// Element-wise average of several series (the paper's "average
    /// server" of a primary tenant, §3.2).
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or lengths/intervals differ.
    pub fn average_of(series: &[&TimeSeries]) -> TimeSeries {
        assert!(!series.is_empty(), "cannot average zero series");
        let first = series[0];
        assert!(
            series
                .iter()
                .all(|s| s.len() == first.len() && s.interval == first.interval),
            "series must share length and interval"
        );
        let n = series.len() as f64;
        let values = (0..first.len())
            .map(|i| series.iter().map(|s| s.values[i]).sum::<f64>() / n)
            .collect();
        TimeSeries::new(first.interval, values)
    }

    /// Returns a copy transformed sample-wise by `f`, clamped to `[0, 1]`.
    pub fn map_clamped(&self, f: impl Fn(f64) -> f64) -> TimeSeries {
        TimeSeries {
            interval: self.interval,
            values: self.values.iter().map(|&v| f(v).clamp(0.0, 1.0)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    #[test]
    fn basic_stats() {
        let ts = TimeSeries::new(mins(2), vec![0.2, 0.4, 0.6, 0.8]);
        assert!((ts.mean() - 0.5).abs() < 1e-12);
        assert_eq!(ts.peak(), 0.8);
        assert_eq!(ts.min(), 0.2);
        assert!(ts.std_dev() > 0.0);
        assert_eq!(ts.len(), 4);
    }

    #[test]
    fn lookup_and_wrap() {
        let ts = TimeSeries::new(mins(2), vec![0.1, 0.2, 0.3]);
        assert_eq!(ts.at(SimTime::ZERO), 0.1);
        assert_eq!(ts.at(SimTime::from_secs(121)), 0.2);
        // Wraps after 6 minutes.
        assert_eq!(ts.at(SimTime::from_secs(6 * 60)), 0.1);
        assert_eq!(ts.at_index(4), 0.2);
    }

    #[test]
    fn slot_lookup_matches_time_lookup() {
        let ts = TimeSeries::new(mins(2), vec![0.1, 0.2, 0.2, 0.4]);
        for slot in 0..10u64 {
            let t = SimTime::from_millis(slot * mins(2).as_millis() + 1);
            assert_eq!(ts.at_slot(slot).to_bits(), ts.at(t).to_bits());
        }
        assert!(ts.sample_changed(0), "slot 0 must count as changed");
        assert!(ts.sample_changed(1));
        assert!(!ts.sample_changed(2), "equal neighbours are unchanged");
        assert!(ts.sample_changed(3));
        // Wrap: slot 4 re-reads sample 0 after sample 3.
        assert!(ts.sample_changed(4));
    }

    #[test]
    fn span_and_interval() {
        let ts = TimeSeries::constant(mins(2), 0.5, 720);
        assert_eq!(ts.span(), SimDuration::from_days(1));
        assert_eq!(ts.interval(), mins(2));
    }

    #[test]
    fn quantiles() {
        let ts = TimeSeries::new(mins(1), (1..=100).map(|i| i as f64 / 100.0).collect());
        assert!((ts.quantile(0.5) - 0.505).abs() < 1e-9);
        assert_eq!(ts.quantile(0.0), 0.01);
        assert_eq!(ts.quantile(1.0), 1.0);
    }

    #[test]
    fn average_server() {
        let a = TimeSeries::new(mins(2), vec![0.0, 1.0]);
        let b = TimeSeries::new(mins(2), vec![1.0, 0.0]);
        let avg = TimeSeries::average_of(&[&a, &b]);
        assert_eq!(avg.values(), &[0.5, 0.5]);
    }

    #[test]
    fn map_clamps() {
        let ts = TimeSeries::new(mins(2), vec![0.5, 0.9]);
        let scaled = ts.map_clamped(|v| v * 2.0);
        assert_eq!(scaled.values(), &[1.0, 1.0]);
    }

    #[test]
    fn cv_of_constant_is_zero() {
        let ts = TimeSeries::constant(mins(2), 0.7, 100);
        // The mean accumulates round-off, so allow a tiny epsilon.
        assert!(ts.cv() < 1e-9, "cv {}", ts.cv());
        let zero = TimeSeries::constant(mins(2), 0.0, 100);
        assert_eq!(zero.cv(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_series_panics() {
        TimeSeries::new(mins(2), vec![]);
    }

    #[test]
    #[should_panic(expected = "share length")]
    fn average_of_mismatched_panics() {
        let a = TimeSeries::new(mins(2), vec![0.0, 1.0]);
        let b = TimeSeries::new(mins(2), vec![1.0]);
        TimeSeries::average_of(&[&a, &b]);
    }
}
