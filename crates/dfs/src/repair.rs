//! Re-replication throttling.
//!
//! §5.1: after missing heartbeats from a data node, "the NN starts to
//! re-create the corresponding replicas in other servers without
//! overloading the network (30 blocks/hour/server)". The cluster's
//! aggregate repair bandwidth is therefore proportional to its size, and
//! every lost replica waits for detection plus its place in the repair
//! pipeline — the window in which further reimages can destroy the
//! remaining copies.

use harvest_sim::{SimDuration, SimTime};

/// Repair-timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairConfig {
    /// Time before the name node notices a dead data node (missed
    /// heartbeats; HDFS's default dead-node interval is ~10 minutes).
    pub detection_delay: SimDuration,
    /// Re-replication throttle per server per hour.
    pub blocks_per_server_per_hour: f64,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            detection_delay: SimDuration::from_mins(10),
            blocks_per_server_per_hour: 30.0,
        }
    }
}

/// A cluster-wide repair pipeline: lost replicas are repaired in FIFO
/// order at the aggregate throttled rate.
#[derive(Debug, Clone)]
pub struct RepairPipeline {
    config: RepairConfig,
    /// Milliseconds of pipeline time consumed per block.
    ms_per_block: f64,
    /// When the pipeline next comes free (fractional ms for precision).
    next_free_ms: f64,
}

impl RepairPipeline {
    /// Creates a pipeline for a cluster of `n_servers`.
    ///
    /// # Panics
    ///
    /// Panics if `n_servers` is zero or the rate is non-positive.
    pub fn new(config: RepairConfig, n_servers: usize) -> Self {
        assert!(n_servers > 0, "cluster has no servers");
        assert!(
            config.blocks_per_server_per_hour > 0.0,
            "repair rate must be positive"
        );
        let blocks_per_hour = config.blocks_per_server_per_hour * n_servers as f64;
        RepairPipeline {
            config,
            ms_per_block: 3_600_000.0 / blocks_per_hour,
            next_free_ms: 0.0,
        }
    }

    /// Schedules one replica repair for a loss observed at `lost_at`.
    /// Returns when the new replica comes online.
    pub fn schedule(&mut self, lost_at: SimTime) -> SimTime {
        let earliest = (lost_at + self.config.detection_delay).as_millis() as f64;
        let start = earliest.max(self.next_free_ms);
        self.next_free_ms = start + self.ms_per_block;
        SimTime::from_millis(self.next_free_ms.ceil() as u64)
    }

    /// The configured detection delay.
    pub fn detection_delay(&self) -> SimDuration {
        self.config.detection_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_delay_applies() {
        let mut p = RepairPipeline::new(RepairConfig::default(), 1_000);
        let t = p.schedule(SimTime::from_secs(100));
        // 100 s + 600 s detection + one block of pipeline time.
        assert!(t >= SimTime::from_secs(700));
        assert!(t < SimTime::from_secs(702));
    }

    #[test]
    fn pipeline_throttles_bursts() {
        // 100 servers × 30 blocks/hour = 3000 blocks/hour.
        let mut p = RepairPipeline::new(RepairConfig::default(), 100);
        let lost_at = SimTime::from_secs(0);
        let times: Vec<SimTime> = (0..3_000).map(|_| p.schedule(lost_at)).collect();
        // The last of 3000 repairs lands about an hour after detection.
        let last = *times.last().unwrap();
        let first = times[0];
        let spread = last.since(first);
        assert!(
            (spread.as_secs_f64() - 3_600.0).abs() < 30.0,
            "3000 repairs spread over {spread} (expected ~1h)"
        );
        // Monotone.
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn idle_pipeline_does_not_accumulate_lag() {
        let mut p = RepairPipeline::new(RepairConfig::default(), 100);
        p.schedule(SimTime::from_secs(0));
        // A loss much later is not delayed by the long-idle pipeline.
        let t = p.schedule(SimTime::from_secs(86_400));
        assert!(t < SimTime::from_secs(86_400 + 605));
    }

    #[test]
    fn bigger_clusters_repair_faster() {
        let mut small = RepairPipeline::new(RepairConfig::default(), 10);
        let mut big = RepairPipeline::new(RepairConfig::default(), 10_000);
        let lost = SimTime::from_secs(0);
        let small_last = (0..1_000).map(|_| small.schedule(lost)).last().unwrap();
        let big_last = (0..1_000).map(|_| big.schedule(lost)).last().unwrap();
        assert!(big_last < small_last);
    }
}
