//! A TPC-DS-like workload: 52 Hive-style query DAGs (§6.1).
//!
//! "For the batch workloads, we run 52 different Hive queries (which
//! translate into DAGs of relational processing tasks) from the TPC-DS
//! benchmark." The real Hive plans are not redistributable, so 51 of the
//! queries are synthesized with Hive-like shapes (map fan-in, reducer
//! chains with shrinking widths, small broadcast-join mappers feeding
//! later stages). Query 19 is reconstructed exactly from Figure 7: eleven
//! vertices whose per-level concurrencies are 8, 469, 113, 126, 138, 6, 1
//! — so the breadth-first estimate is 469 concurrent containers.

use harvest_sim::rng::indexed_rng;
use harvest_sim::{dist, SimDuration};
use rand::RngExt;

use crate::dag::{stage, DagJob, Stage, StageId};

/// Number of queries in the suite.
pub const SUITE_SIZE: usize = 52;

/// The full 52-query suite, deterministically generated. `suite()[18]` is
/// query 19 (Figure 7).
pub fn tpcds_suite() -> Vec<DagJob> {
    (1..=SUITE_SIZE).map(query).collect()
}

/// TPC-DS-like query `n` (1-based).
///
/// # Panics
///
/// Panics if `n` is 0 or greater than [`SUITE_SIZE`].
pub fn query(n: usize) -> DagJob {
    assert!(
        (1..=SUITE_SIZE).contains(&n),
        "query number must be 1..={SUITE_SIZE}, got {n}"
    );
    if n == 19 {
        return query_19();
    }
    synth_query(n)
}

/// TPC-DS query 19 exactly as in Figure 7.
///
/// The DAG's BFS levels hold 8, 469, 113, 126, 138, 6, and 1 concurrent
/// tasks; [`crate::estimate::max_concurrent_tasks`] returns 469.
pub fn query_19() -> DagJob {
    DagJob::new(
        "q19",
        vec![
            // Level 0: small dimension-table mappers (8 concurrent tasks).
            stage("Mapper 1", 1, 45, vec![]),
            stage("Mapper 8", 1, 45, vec![]),
            stage("Mapper 9", 3, 40, vec![]),
            stage("Mapper 10", 2, 40, vec![]),
            stage("Mapper 11", 1, 40, vec![]),
            // Level 1: the fact-table scan, broadcast-joined against the
            // dimension mappers.
            stage("Mapper 2", 469, 60, vec![0, 1]),
            // Levels 2-6: the reducer chain, each joining one more small
            // mapper output.
            stage("Reducer 3", 113, 50, vec![5]),
            stage("Reducer 4", 126, 45, vec![6, 2]),
            stage("Reducer 5", 138, 45, vec![7, 3]),
            stage("Reducer 6", 6, 35, vec![8, 4]),
            stage("Reducer 7", 1, 30, vec![9]),
        ],
    )
}

/// Synthesizes a Hive-like DAG for query `n`, deterministic in `n`.
///
/// Queries cycle through three size classes so the suite's duration
/// distribution spans the short/medium/long thresholds: roughly a third
/// of queries have critical paths under 173 s, a third between the
/// thresholds, and a third over 433 s.
fn synth_query(n: usize) -> DagJob {
    let mut rng = indexed_rng(0x7DC5, "tpcds", n as u64);
    // Reducer-chain depth determines the critical path; durations below
    // put each class on its side of the 173 s / 433 s thresholds. Widths
    // follow the paper's capacity-matching: the aggregate demand of each
    // job type should roughly match the capacity of its preferred tenant
    // class (§4.1), so long jobs are deep but narrow (constant tenants
    // are few), medium jobs widest (periodic tenants hold the most
    // servers), and short jobs modest (unpredictable tenants are small).
    let (depth, task_secs_lo, task_secs_hi, width_lo, width_hi) = match n % 3 {
        0 => (1usize, 40u64, 70u64, 15u32, 70u32), // short: ~2 levels, 80-140 s
        1 => (3, 60, 95, 60, 240),                 // medium: ~4 levels, 240-380 s
        _ => (6, 70, 110, 15, 60),                 // long: ~7 levels, 490-770 s
    };

    let mut stages: Vec<Stage> = Vec::new();

    // Root fact-table mapper: the wide scan.
    let fact_tasks = rng.random_range(width_lo..=width_hi);
    stages.push(stage(
        "Mapper 1",
        fact_tasks,
        rng.random_range(task_secs_lo..=task_secs_hi),
        vec![],
    ));

    // 0-3 small dimension-table mappers, available for later joins.
    let n_dims = rng.random_range(0..=3usize);
    let mut dim_ids: Vec<usize> = Vec::new();
    for d in 0..n_dims {
        dim_ids.push(stages.len());
        stages.push(stage(
            format!("Mapper {}", d + 2),
            rng.random_range(1..=8),
            rng.random_range(20..=45),
            vec![],
        ));
    }

    // The reducer chain: width shrinks level by level; some levels join
    // one of the dimension mappers.
    let mut prev = 0usize; // index of the stage the next reducer consumes
    let mut width = fact_tasks;
    for r in 0..depth {
        width = ((width as f64 * dist::uniform(&mut rng, 0.25, 0.6)).round() as u32).max(1);
        if r == depth - 1 {
            width = 1; // final aggregation
        }
        let mut deps = vec![prev];
        if let Some(pos) = dim_ids.pop() {
            deps.push(pos);
        }
        prev = stages.len();
        stages.push(Stage {
            name: format!("Reducer {}", r + 1),
            tasks: width,
            task_duration: SimDuration::from_secs(rng.random_range(task_secs_lo..=task_secs_hi)),
            deps: deps.into_iter().map(StageId).collect(),
        });
    }

    DagJob::new(format!("q{n:02}"), stages)
}

/// Multiplies a job's task durations and task counts (§6.1: the simulator
/// "multiplies their lengths and container usage by a scaling factor to
/// generate enough load for our large datacenters").
pub fn scale_job(job: &DagJob, duration_factor: f64, width_factor: f64) -> DagJob {
    assert!(duration_factor > 0.0 && width_factor > 0.0);
    let stages = job
        .stages
        .iter()
        .map(|s| Stage {
            name: s.name.clone(),
            tasks: ((s.tasks as f64 * width_factor).round() as u32).max(1),
            task_duration: s.task_duration.mul_f64(duration_factor),
            deps: s.deps.clone(),
        })
        .collect();
    DagJob::new(job.name.clone(), stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::max_concurrent_tasks;
    use crate::length::LengthThresholds;

    #[test]
    fn suite_has_52_queries() {
        let suite = tpcds_suite();
        assert_eq!(suite.len(), SUITE_SIZE);
        for (i, q) in suite.iter().enumerate() {
            assert_eq!(q, &query(i + 1), "query {} not deterministic", i + 1);
        }
    }

    #[test]
    fn query_19_matches_figure_7() {
        let q = query_19();
        assert_eq!(q.n_stages(), 11);
        assert_eq!(max_concurrent_tasks(&q), 469);
        // Per-level concurrencies from the figure: 8, 469, 113, 126, 138, 6, 1.
        let levels = q.levels();
        let max_level = *levels.iter().max().unwrap();
        let mut sums = vec![0u32; max_level + 1];
        for (i, s) in q.stages.iter().enumerate() {
            sums[levels[i]] += s.tasks;
        }
        assert_eq!(sums, vec![8, 469, 113, 126, 138, 6, 1]);
    }

    #[test]
    fn suite_index_18_is_q19() {
        assert_eq!(tpcds_suite()[18], query_19());
    }

    #[test]
    fn durations_span_all_three_length_classes() {
        let t = LengthThresholds::paper_testbed();
        let mut counts = [0usize; 3];
        for q in tpcds_suite() {
            match t.classify(q.critical_path()) {
                crate::length::JobLength::Short => counts[0] += 1,
                crate::length::JobLength::Medium => counts[1] += 1,
                crate::length::JobLength::Long => counts[2] += 1,
            }
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(*c >= 10, "class {i} underrepresented: {counts:?}");
        }
    }

    #[test]
    fn all_queries_are_valid_dags() {
        for q in tpcds_suite() {
            // DagJob::new already validates; exercise derived quantities.
            assert!(q.total_tasks() >= 2);
            assert!(q.critical_path() > SimDuration::ZERO);
            assert!(max_concurrent_tasks(&q) >= 1);
            // Every query ends in a single-task aggregation.
            assert_eq!(q.stages.last().unwrap().tasks, 1);
        }
    }

    #[test]
    fn scale_job_multiplies_width_and_length() {
        let q = query_19();
        let scaled = scale_job(&q, 2.0, 0.5);
        assert_eq!(
            scaled.critical_path().as_millis(),
            q.critical_path().as_millis() * 2
        );
        let orig_m2 = &q.stages[5];
        let new_m2 = &scaled.stages[5];
        assert_eq!(new_m2.tasks, orig_m2.tasks.div_ceil(2));
        // Tiny stages never drop to zero tasks.
        assert!(scaled.stages.iter().all(|s| s.tasks >= 1));
    }

    #[test]
    #[should_panic(expected = "query number")]
    fn query_zero_panics() {
        query(0);
    }
}
