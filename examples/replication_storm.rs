//! Reimage a whole tenant and replay the recovery with the network
//! fabric on vs. off: time-to-full-durability is set by whichever is
//! scarcer, the name node's repair throttle or cross-rack bandwidth.
//!
//! ```sh
//! cargo run --release --example replication_storm
//! ```

use harvest::cluster::Datacenter;
use harvest::dfs::repair::{simulate_reimage_storm, StormConfig};
use harvest::net::NetworkConfig;
use harvest::prelude::DatacenterProfile;

fn main() {
    let seed = 42;
    let profile = DatacenterProfile::dc(9).scaled(0.03);
    let dc = Datacenter::generate(&profile, seed);
    let tenant = dc
        .tenants
        .iter()
        .max_by_key(|t| t.n_servers())
        .expect("datacenter has tenants");
    println!(
        "{}: {} servers in {} racks; reimaging tenant '{}' ({} servers) at t=0\n",
        dc.name,
        dc.n_servers(),
        dc.n_racks(),
        tenant.name,
        tenant.n_servers(),
    );

    // Two repair regimes: the paper's steady 30 blocks/hour/server
    // throttle (which hides the fabric), and the §7 lesson-2 failure
    // mode — an effectively unthrottled synchronous storm, bounded only
    // by HDFS's max-streams backpressure, where cross-rack bandwidth
    // sets the recovery time.
    for (regime, blocks_per_hour, streams) in [
        ("default throttle (30 blocks/h/server)", 30.0, None),
        (
            "unthrottled storm, 64 repair streams",
            1_000_000.0,
            Some(64),
        ),
    ] {
        println!("{regime}:");
        let mut base = StormConfig::new(tenant.id, seed);
        base.fill_fraction = 0.4;
        base.repair.blocks_per_server_per_hour = blocks_per_hour;
        base.max_repair_streams = streams;
        let mut results = Vec::new();
        for network in [None, Some(NetworkConfig::datacenter())] {
            let mut cfg = base.clone();
            cfg.network = network;
            let label = if cfg.network.is_some() {
                "fabric on "
            } else {
                "fabric off"
            };
            let r = simulate_reimage_storm(&dc, &cfg);
            println!(
                "  {label}  {:>7} replicas lost, {:>7} repairs, full durability at {} \
                 (mean transfer {:.2}s)",
                r.replicas_lost, r.repairs, r.recovered_at, r.mean_transfer_secs,
            );
            results.push(r);
        }
        let off = &results[0];
        let on = &results[1];
        let delta = on.recovered_at.since(off.recovered_at);
        println!("  -> the fabric adds {delta} to time-to-full-durability\n",);
    }
    println!("(the 30 blocks/hour throttle hides the network; remove it — the paper's");
    println!(" synchronous-heartbeat storm — and the fabric sets time-to-durability.)");
}
